//! Private release workflow on a "real" network: run all three estimators of Table 1 on the
//! CA-GrQc stand-in (or the real SNAP file if you point `KRONPRIV_DATA_DIR` at a directory
//! containing `ca-GrQc.txt`) and compare the statistical profiles of the synthetic graphs each
//! estimator produces.
//!
//! Run with:
//! ```text
//! cargo run --release --example private_release
//! ```

use kronpriv::prelude::*;
use kronpriv_estimate::KronFitOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn main() {
    let data_dir = std::env::var_os("KRONPRIV_DATA_DIR").map(PathBuf::from);
    let (original, is_real) = Dataset::CaGrQc.load_or_generate(data_dir.as_deref(), 1);
    println!(
        "CA-GrQc {}: {} nodes, {} edges",
        if is_real { "(real SNAP data)" } else { "(documented stand-in)" },
        original.node_count(),
        original.edge_count()
    );

    let mut rng = StdRng::seed_from_u64(11);
    let suite = estimate_with_all_estimators(
        &original,
        PrivacyParams::paper_default(),
        &KronFitOptions { gradient_steps: 40, ..Default::default() },
        &KronMomOptions::default(),
        &PrivateEstimatorOptions::default(),
        &mut rng,
    );
    println!("\nestimates (a, b, c):");
    println!("  KronFit  {}", suite.kronfit.theta);
    println!("  KronMom  {}", suite.kronmom.theta);
    println!("  Private  {}   (ε = 0.2, δ = 0.01)", suite.private.fit.theta);

    // Sample one synthetic graph per estimator and profile it the way Figures 1-3 do.
    let options = ProfileOptions { scree_values: 25, network_values: 100, skip_hop_plot: false };
    let original_profile = GraphProfile::compute("Original", &original, &options, &mut rng);
    println!("\nprofile comparison against the original (lower is better):");
    println!("  estimator  edge err  triangle err  degree KS  λ₁ err  clustering diff");
    for (label, fit) in
        [("KronFit", &suite.kronfit), ("KronMom", &suite.kronmom), ("Private", &suite.private.fit)]
    {
        let synthetic = sample_fast(&fit.theta, fit.k, &SamplerOptions::default(), &mut rng);
        let profile = GraphProfile::compute(label, &synthetic, &options, &mut rng);
        let cmp = ProfileComparison::between(&original_profile, &original, &profile, &synthetic);
        println!(
            "  {label:<9} {:>8.3} {:>13.3} {:>10.3} {:>7.3} {:>16.4}",
            cmp.edge_count_relative_error,
            cmp.triangle_count_relative_error,
            cmp.degree_distribution_distance,
            cmp.leading_singular_value_relative_error,
            cmp.clustering_difference,
        );
    }

    println!("\nThe private column should track the KronMom column closely — that is the");
    println!("paper's headline claim (its Table 1 and Figures 1-3).");
}
