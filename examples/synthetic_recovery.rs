//! Parameter recovery on a synthetic Kronecker graph (the last row of Table 1): generate a graph
//! from known parameters and check that all three estimators recover them.
//!
//! Run with:
//! ```text
//! cargo run --release --example synthetic_recovery
//! ```

use kronpriv::prelude::*;
use kronpriv_estimate::KronFitOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The paper's synthetic source: Θ = [0.99 0.45; 0.45 0.25], k = 14 (16,384 nodes).
    let truth = Initiator2::new(0.99, 0.45, 0.25);
    let k = 14;
    let mut rng = StdRng::seed_from_u64(99);
    let graph = sample_fast(&truth, k, &SamplerOptions::default(), &mut rng);
    println!(
        "synthetic Kronecker graph: {} nodes, {} edges, generated from Θ = {truth}",
        graph.node_count(),
        graph.edge_count()
    );

    let suite = estimate_with_all_estimators(
        &graph,
        PrivacyParams::paper_default(),
        &KronFitOptions { gradient_steps: 50, ..Default::default() },
        &KronMomOptions::default(),
        &PrivateEstimatorOptions::default(),
        &mut rng,
    );

    println!("\n               a        b        c     |Θ̂ − Θ|");
    let report = |label: &str, theta: &Initiator2| {
        println!(
            "  {label:<10} {:.4}   {:.4}   {:.4}   {:.4}",
            theta.a,
            theta.b,
            theta.c,
            theta.distance(&truth)
        );
    };
    report("truth", &truth);
    report("KronFit", &suite.kronfit.theta);
    report("KronMom", &suite.kronmom.theta);
    report("Private", &suite.private.fit.theta);

    println!("\npaper's Table 1 values for the same experiment (their own random realization):");
    let row = Dataset::SyntheticKronecker.table1_row();
    report("KronFit*", &row.kronfit);
    report("KronMom*", &row.kronmom);
    report("Private*", &row.private);
    println!("\n(*) as printed in the paper; agreement is expected in shape, not digit-for-digit,");
    println!("because the realized graph and the privacy noise differ.");
}
