//! Quickstart: privately estimate a stochastic Kronecker model of a sensitive graph and sample
//! a synthetic graph that can be shared.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use kronpriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // In a real deployment this would be the sensitive graph (e.g. a social network loaded with
    // `kronpriv_graph::io::read_edge_list`). Here a synthetic Kronecker graph plays the part so
    // the example is self-contained and we know the ground truth.
    let truth = Initiator2::new(0.99, 0.45, 0.25);
    let mut rng = StdRng::seed_from_u64(2012);
    let sensitive = sample_fast(&truth, 12, &SamplerOptions::default(), &mut rng);
    println!(
        "sensitive graph: {} nodes, {} edges (generated from Θ = {truth})",
        sensitive.node_count(),
        sensitive.edge_count()
    );

    // Release an (ε, δ)-differentially private estimate of the initiator (Algorithm 1) and a
    // synthetic graph sampled from it. Only `release.estimate.fit.theta` (and things derived
    // from it, like the synthetic graph) should ever leave the data curator's machine.
    let budget = PrivacyParams::paper_default(); // ε = 0.2, δ = 0.01, as in the paper
    let release = release_synthetic_graph(&sensitive, budget, &mut rng);
    println!("\nprivate estimate at {budget}: Θ̃ = {}", release.estimate.fit.theta);
    println!(
        "private matching statistics [E, H, Δ, T] = {:?}",
        release.estimate.private_statistics.map(|v| v.round())
    );

    // How good is the synthetic graph? Compare the statistics the paper's figures look at.
    let exact = MatchingStatistics::of_graph(&sensitive);
    let synthetic_stats = MatchingStatistics::of_graph(&release.synthetic);
    println!("\n                original   synthetic");
    println!("edges        {:>10.0}  {:>10.0}", exact.edges, synthetic_stats.edges);
    println!("hairpins     {:>10.0}  {:>10.0}", exact.hairpins, synthetic_stats.hairpins);
    println!("triangles    {:>10.0}  {:>10.0}", exact.triangles, synthetic_stats.triangles);
    println!("tripins      {:>10.0}  {:>10.0}", exact.tripins, synthetic_stats.tripins);

    println!(
        "\nrecovered vs generating parameters: |Θ̃ − Θ| = {:.4}",
        release.estimate.fit.theta.distance(&truth)
    );
}
