//! Privacy/utility trade-off: sweep the privacy budget ε and measure how far the private
//! estimate drifts from the non-private KronMom estimate on the CA-GrQc stand-in. This is the
//! "meaningful values of ε" question the paper raises in Section 4.2, made quantitative.
//!
//! Run with:
//! ```text
//! cargo run --release --example epsilon_sweep
//! ```

use kronpriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let original = Dataset::CaGrQc.generate(1);
    println!("CA-GrQc stand-in: {} nodes, {} edges", original.node_count(), original.edge_count());

    let kronmom = KronMomEstimator::default().fit_graph(&original);
    println!("non-private KronMom estimate: {}", kronmom.theta);

    let repetitions = 5;
    println!(
        "\n  ε        mean |Θ̃ − Θ̂_mom|   max |Θ̃ − Θ̂_mom|   (over {repetitions} runs, δ = 0.01)"
    );
    for epsilon in [0.05, 0.1, 0.2, 0.5, 1.0, 2.0] {
        let mut distances = Vec::new();
        for rep in 0..repetitions {
            let mut rng = StdRng::seed_from_u64(1000 + rep);
            let est = PrivateEstimator::default().fit(
                &original,
                PrivacyParams::new(epsilon, 0.01),
                &mut rng,
            );
            distances.push(est.fit.theta.distance(&kronmom.theta));
        }
        let mean = distances.iter().sum::<f64>() / distances.len() as f64;
        let max = distances.iter().cloned().fold(0.0_f64, f64::max);
        println!("  {epsilon:<7} {mean:>18.4} {max:>17.4}");
    }

    println!("\nAt the paper's ε = 0.2 the private estimate should sit within a few hundredths of");
    println!("the non-private one; utility only degrades noticeably for much smaller budgets.");
}
