#!/usr/bin/env bash
# Tier-1 verification for the kronpriv workspace, run fully offline (no crates.io access: every
# dependency is an in-workspace path dependency — see README.md).
#
#   scripts/verify.sh          # fmt --check + build (release) + tests + clippy -D warnings
#   scripts/verify.sh --quick  # additionally smoke-runs the bench harness (with the
#                              # bench_check regression guard), quickstart and the server probe
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo clippy --offline --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> kronpriv-lint (static privacy/determinism/no-feedback gate)"
# The invariant checker (crates/lint): zero unwaived findings or the build fails. Waivers
# (`// lint:allow(<rule>, reason = "...")`) are printed with their reasons for the record.
# The scan itself runs under a wall-clock budget: the v2 analyzer does whole-workspace taint
# propagation and a call-graph fixpoint, and this guard keeps that work from quietly growing
# into a multi-minute gate (the parallel file scan should keep it well under the bound).
lint_budget_s="${LINT_BUDGET_S:-30}"
lint_started="$(date +%s)"
cargo run -q --release --offline -p kronpriv-lint -- --workspace-root .
lint_elapsed="$(( $(date +%s) - lint_started ))"
echo "kronpriv-lint scan took ${lint_elapsed}s (budget: ${lint_budget_s}s)"
if (( lint_elapsed > lint_budget_s )); then
    echo "kronpriv-lint exceeded its ${lint_budget_s}s wall-clock budget" >&2
    exit 1
fi

if [[ "${1:-}" == "--quick" ]]; then
    echo "==> bench harness smoke run"
    cargo bench -q --offline -p kronpriv-bench --bench model_kernels -- --quick

    echo "==> kernel micro-benchmark matrix + regression guard (BENCH_kernels.json vs baseline)"
    # Machine-readable perf trajectory: one {kernel, nodes, threads, ns_per_op} record per
    # measurement (the min over samples — robust to background load, which only ever inflates
    # a sample), so kernel regressions across PRs show up in the checked JSON. The matrix
    # covers the counting kernels, the fitting stage (fit_multistart, isotonic_postprocess)
    # and one multi-chain KronFit ascent step (kronfit_step) at 1/2/4 threads.
    #
    # bench_check fails on >2x (override: BENCH_MAX_RATIO) per-kernel ns/op regressions
    # against the committed baseline; refresh with `cp BENCH_kernels.json BENCH_baseline.json`
    # after an intentional perf change — or after moving to a slower machine class, since the
    # baseline records absolute ns/op of whatever machine produced it. It also prints the
    # one-line "scaling 1T->4T" summary and, on hosts with >=4 hardware threads, enforces the
    # executor's scaling gates (no kernel >10% slower at 4T; smooth_sensitivity/
    # per_node_triangles >=1.5x at the ~10^5-node rows). The committed baseline predates the
    # kronpriv-obs instrumentation, so the guard's overhead gate (median 1T fresh/baseline
    # ratio <= 1.05, override: BENCH_OVERHEAD_RATIO) bounds what the always-on spans and
    # counters cost the serial compute path.
    #
    # The measure-then-check pair is retried up to 3 times: on a small shared runner a load
    # spike can inflate a whole bench run, and re-measuring filters that out — a *systematic*
    # regression (real code cost, not transient load) fails all three attempts identically.
    bench_ok=""
    for attempt in 1 2 3; do
        cargo bench -q --offline -p kronpriv-bench --bench kernels -- --quick \
            --json "$PWD/BENCH_kernels.json"
        test -s BENCH_kernels.json || { echo "BENCH_kernels.json was not written" >&2; exit 1; }
        if cargo run -q --release --offline -p kronpriv-bench --bin bench_check -- \
            --max-ratio "${BENCH_MAX_RATIO:-2.0}" \
            --overhead-ratio "${BENCH_OVERHEAD_RATIO:-1.05}"; then
            bench_ok=1
            break
        fi
        echo "bench gate attempt ${attempt}/3 failed; re-measuring" >&2
    done
    if [[ -z "$bench_ok" ]]; then
        echo "bench gate failed on 3 independent measurements — treating as a real regression" >&2
        exit 1
    fi

    echo "==> example smoke run"
    cargo run -q --release --offline --example quickstart

    echo "==> server smoke run (durable --data-dir: --probe end to end incl. the budget ledger,"
    echo "    a /metrics scrape gate, then a restart on the same dir gated by --probe-replay)"
    server_log="$(mktemp)"
    server_data="$(mktemp -d)"
    trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$server_log" "$server_data"' EXIT
    start_server() {
        target/release/kronpriv-serve --addr 127.0.0.1:0 --workers 2 --job-workers 2 \
            --data-dir "$server_data" > "$server_log" 2>&1 &
        server_pid=$!
        for _ in $(seq 1 100); do
            grep -q "^listening on " "$server_log" && break
            # A server that crashed during startup will never log its address; without this
            # check the loop used to spin its full 10 s and then fail with an empty log
            # excerpt. Detect the early exit, stop immediately and dump the log so CI
            # failures are diagnosable.
            if ! kill -0 "$server_pid" 2>/dev/null; then
                echo "kronpriv-serve exited during startup; log follows:" >&2
                cat "$server_log" >&2
                exit 1
            fi
            sleep 0.1
        done
        server_addr="$(sed -n 's#^listening on http://##p' "$server_log" | head -1)"
        if [[ -z "$server_addr" ]]; then
            echo "server never reported its address:" >&2
            cat "$server_log" >&2
            exit 1
        fi
    }
    start_server
    target/release/kronpriv-serve --probe "$server_addr"
    # The scrape gate: after real traffic, every line of the live /metrics exposition must
    # validate (the binary exits non-zero on the first malformed line).
    target/release/kronpriv-serve --metrics "$server_addr"
    # The access log must have logged the traffic just driven, as structured JSON lines.
    grep -q '"log":"access".*"path":"/metrics"' "$server_log" || {
        echo "no structured access-log line for the /metrics scrape; log follows:" >&2
        cat "$server_log" >&2
        exit 1
    }
    kill "$server_pid"
    wait "$server_pid" 2>/dev/null || true
    # Restart-replay gate: a fresh process on the same --data-dir must replay the datasets,
    # their spent privacy ledgers (still refusing over-budget draws) and the finished jobs.
    start_server
    target/release/kronpriv-serve --probe-replay "$server_addr"
    kill "$server_pid"
    wait "$server_pid" 2>/dev/null || true
    trap - EXIT
    rm -rf "$server_log" "$server_data"
fi

echo "verify: OK"
