#!/usr/bin/env bash
# Tier-1 verification for the kronpriv workspace, run fully offline (no crates.io access: every
# dependency is an in-workspace path dependency — see README.md).
#
#   scripts/verify.sh          # build (release) + tests + clippy -D warnings
#   scripts/verify.sh --quick  # additionally smoke-runs the bench harness and quickstart
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo clippy --offline --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

if [[ "${1:-}" == "--quick" ]]; then
    echo "==> bench harness smoke run"
    cargo bench -q --offline -p kronpriv-bench --bench model_kernels -- --quick
    echo "==> example smoke run"
    cargo run -q --release --offline --example quickstart
fi

echo "verify: OK"
