//! CI bench-regression guard: compares a fresh `BENCH_kernels.json` against the committed
//! `BENCH_baseline.json` and fails (exit 1) when any kernel's ns/op regressed by more than the
//! allowed ratio.
//!
//! Invoked as `cargo run -p kronpriv-bench --bin bench_check` (the source lives in `scripts/`,
//! next to `verify.sh`, which wires it into the `--quick` CI job right after the kernel bench
//! writes the fresh records). Records are matched on `(kernel, nodes, threads)`; fresh records
//! with no baseline entry pass with a note (refresh the baseline to start guarding them), and
//! baseline entries that disappeared are reported so stale baselines are visible.
//!
//! Usage:
//!
//! ```text
//! bench_check [--baseline PATH] [--fresh PATH] [--max-ratio R]
//! ```
//!
//! Defaults: `BENCH_baseline.json`, `BENCH_kernels.json`, ratio 2.0. To refresh the baseline
//! after an intentional change, run the quick kernel bench and copy the fresh records:
//! `cp BENCH_kernels.json BENCH_baseline.json`.

use kronpriv_json::impl_json_struct;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One measurement row of `BENCH_kernels.json` / `BENCH_baseline.json`.
#[derive(Debug, Clone, PartialEq)]
struct BenchRecord {
    kernel: String,
    nodes: f64,
    threads: f64,
    ns_per_op: f64,
}

impl_json_struct!(BenchRecord { kernel, nodes, threads, ns_per_op });

/// The match key: a kernel measured at a given input size and thread count.
fn key(r: &BenchRecord) -> (String, u64, u64) {
    (r.kernel.clone(), r.nodes as u64, r.threads as u64)
}

fn load(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    kronpriv_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let flag =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let baseline_path = flag("--baseline").unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let fresh_path = flag("--fresh").unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let max_ratio: f64 = match flag("--max-ratio").map(|r| r.parse()) {
        None => 2.0,
        Some(Ok(r)) if r > 1.0 => r,
        Some(_) => {
            eprintln!("--max-ratio: expected a number > 1");
            return ExitCode::FAILURE;
        }
    };

    let (baseline, fresh) = match (load(&baseline_path), load(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_check: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let baseline_by_key: BTreeMap<_, f64> =
        baseline.iter().map(|r| (key(r), r.ns_per_op)).collect();
    let fresh_keys: Vec<_> = fresh.iter().map(key).collect();

    println!(
        "{:<24} {:>8} {:>8} {:>14} {:>14} {:>7}  status",
        "kernel", "nodes", "threads", "baseline ns", "fresh ns", "ratio"
    );
    let mut regressions = 0usize;
    let mut unguarded = 0usize;
    for r in &fresh {
        match baseline_by_key.get(&key(r)) {
            Some(&base) => {
                // A baseline of 0 ns would make every ratio infinite; treat sub-ns baselines
                // as 1 ns (the harness never reports 0 for real kernels).
                let ratio = r.ns_per_op / base.max(1.0);
                let regressed = ratio > max_ratio;
                if regressed {
                    regressions += 1;
                }
                println!(
                    "{:<24} {:>8} {:>8} {:>14.0} {:>14.0} {:>6.2}x  {}",
                    r.kernel,
                    r.nodes as u64,
                    r.threads as u64,
                    base,
                    r.ns_per_op,
                    ratio,
                    if regressed { "REGRESSED" } else { "ok" }
                );
            }
            None => {
                unguarded += 1;
                println!(
                    "{:<24} {:>8} {:>8} {:>14} {:>14.0} {:>7}  new (no baseline)",
                    r.kernel, r.nodes as u64, r.threads as u64, "-", r.ns_per_op, "-"
                );
            }
        }
    }
    let stale: Vec<_> =
        baseline.iter().filter(|r| !fresh_keys.contains(&key(r))).map(key).collect();
    for (kernel, nodes, threads) in &stale {
        println!("{kernel:<24} {nodes:>8} {threads:>8} — in baseline but not measured (stale)");
    }

    if unguarded > 0 {
        println!(
            "note: {unguarded} record(s) have no baseline; refresh BENCH_baseline.json \
             (cp BENCH_kernels.json BENCH_baseline.json) to start guarding them"
        );
    }
    if regressions > 0 {
        eprintln!(
            "bench_check: {regressions} kernel(s) regressed by more than {max_ratio}x vs \
             {baseline_path}; if intentional, refresh the baseline and commit it"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_check: ok ({} records within {max_ratio}x of baseline)", fresh.len());
    ExitCode::SUCCESS
}
