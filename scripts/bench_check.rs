//! CI bench-regression guard: compares a fresh `BENCH_kernels.json` against the committed
//! `BENCH_baseline.json` and fails (exit 1) when any kernel's ns/op regressed by more than the
//! allowed ratio, then prints a one-line 1T-vs-4T scaling summary and — on hosts with at least
//! 4 hardware threads — enforces the scaling contract of the persistent executor: no kernel
//! may be slower at 4 threads than at 1 by more than 10%, and the node-partitioned counting
//! kernels (`smooth_sensitivity`, `per_node_triangles`) at the ~10^5-node scale must reach at
//! least a 1.5× speedup at 4 threads. On smaller hosts (CI runners with 1–2 cores) the
//! scaling gates are skipped with a note — a 4-worker pool time-slicing one core measures OS
//! scheduling, not the executor.
//!
//! Invoked as `cargo run -p kronpriv-bench --bin bench_check` (the source lives in `scripts/`,
//! next to `verify.sh`, which wires it into the `--quick` CI job right after the kernel bench
//! writes the fresh records). Records are matched on `(kernel, nodes, threads)`; fresh records
//! with no baseline entry pass with a note (refresh the baseline to start guarding them), and
//! baseline entries that disappeared are reported so stale baselines are visible.
//!
//! Beyond the per-kernel regression ratio, the guard enforces the **instrumentation-overhead
//! gate**: the committed baseline was captured before the `kronpriv-obs` spans and counters
//! were threaded through the kernels, so the *median* ratio of fresh-to-baseline ns/op across
//! all single-threaded records bounds what observability costs the compute path. The median
//! (not the max) is gated because individual micro-bench cells jitter by more than the 5%
//! budget on shared CI hosts; a systematic cost shows up in the median, noise does not.
//! On top of that, the gate is **load-normalized**: the matrix brackets its run with two
//! `calibration`/`calibration_end` cells — a fixed pure-CPU workload with no kernel code and
//! no instrumentation — whose fresh-vs-baseline ratios measure only how fast the host is
//! running right now relative to when the baseline was captured. Dividing every 1-thread
//! ratio by the larger of the two cancels host-load drift (shared runners wander ±10% over
//! minutes, which would otherwise swamp a 5% budget) while leaving a real instrumentation
//! cost fully visible.
//!
//! Usage:
//!
//! ```text
//! bench_check [--baseline PATH] [--fresh PATH] [--max-ratio R] [--overhead-ratio R]
//! ```
//!
//! Defaults: `BENCH_baseline.json`, `BENCH_kernels.json`, ratio 2.0, overhead ratio 1.05
//! (override the latter default with the `BENCH_OVERHEAD_RATIO` environment variable). To
//! refresh the baseline after an intentional change, run the quick kernel bench and copy the
//! fresh records: `cp BENCH_kernels.json BENCH_baseline.json`.

use kronpriv_json::impl_json_struct;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One measurement row of `BENCH_kernels.json` / `BENCH_baseline.json`.
#[derive(Debug, Clone, PartialEq)]
struct BenchRecord {
    kernel: String,
    nodes: f64,
    threads: f64,
    ns_per_op: f64,
}

impl_json_struct!(BenchRecord { kernel, nodes, threads, ns_per_op });

/// The match key: a kernel measured at a given input size and thread count.
fn key(r: &BenchRecord) -> (String, u64, u64) {
    (r.kernel.clone(), r.nodes as u64, r.threads as u64)
}

fn load(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    kronpriv_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let flag =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let baseline_path = flag("--baseline").unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let fresh_path = flag("--fresh").unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let max_ratio: f64 = match flag("--max-ratio").map(|r| r.parse()) {
        None => 2.0,
        Some(Ok(r)) if r > 1.0 => r,
        Some(_) => {
            eprintln!("--max-ratio: expected a number > 1");
            return ExitCode::FAILURE;
        }
    };
    let overhead_default = std::env::var("BENCH_OVERHEAD_RATIO")
        .ok()
        .and_then(|r| r.parse::<f64>().ok())
        .filter(|r| *r > 1.0)
        .unwrap_or(1.05);
    let overhead_ratio: f64 = match flag("--overhead-ratio").map(|r| r.parse()) {
        None => overhead_default,
        Some(Ok(r)) if r > 1.0 => r,
        Some(_) => {
            eprintln!("--overhead-ratio: expected a number > 1");
            return ExitCode::FAILURE;
        }
    };

    let (baseline, fresh) = match (load(&baseline_path), load(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_check: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let baseline_by_key: BTreeMap<_, f64> =
        baseline.iter().map(|r| (key(r), r.ns_per_op)).collect();
    let fresh_keys: Vec<_> = fresh.iter().map(key).collect();

    println!(
        "{:<24} {:>8} {:>8} {:>14} {:>14} {:>7}  status",
        "kernel", "nodes", "threads", "baseline ns", "fresh ns", "ratio"
    );
    let mut regressions = 0usize;
    let mut unguarded = 0usize;
    for r in &fresh {
        match baseline_by_key.get(&key(r)) {
            Some(&base) => {
                // A baseline of 0 ns would make every ratio infinite; treat sub-ns baselines
                // as 1 ns (the harness never reports 0 for real kernels). The calibration
                // cell measures the host, not a kernel — report it, never gate on it.
                let ratio = r.ns_per_op / base.max(1.0);
                let regressed = ratio > max_ratio && !r.kernel.starts_with("calibration");
                if regressed {
                    regressions += 1;
                }
                println!(
                    "{:<24} {:>8} {:>8} {:>14.0} {:>14.0} {:>6.2}x  {}",
                    r.kernel,
                    r.nodes as u64,
                    r.threads as u64,
                    base,
                    r.ns_per_op,
                    ratio,
                    if regressed { "REGRESSED" } else { "ok" }
                );
            }
            None => {
                unguarded += 1;
                println!(
                    "{:<24} {:>8} {:>8} {:>14} {:>14.0} {:>7}  new (no baseline)",
                    r.kernel, r.nodes as u64, r.threads as u64, "-", r.ns_per_op, "-"
                );
            }
        }
    }
    let stale: Vec<_> =
        baseline.iter().filter(|r| !fresh_keys.contains(&key(r))).map(key).collect();
    for (kernel, nodes, threads) in &stale {
        println!("{kernel:<24} {nodes:>8} {threads:>8} — in baseline but not measured (stale)");
    }

    if unguarded > 0 {
        println!(
            "note: {unguarded} record(s) have no baseline; refresh BENCH_baseline.json \
             (cp BENCH_kernels.json BENCH_baseline.json) to start guarding them"
        );
    }

    // Instrumentation-overhead gate: the median fresh/baseline ratio across the 1-thread
    // records, divided by the calibration cell's ratio (pure host-speed drift), bounds what
    // the always-on spans and counters cost the serial compute path.
    // Two calibration cells bracket the matrix (first and last); normalizing by the *larger*
    // of their fresh/baseline ratios means load arriving at any point during the run is
    // caught by whichever sample saw it. Instrumentation cannot hide behind this: the
    // calibration loop carries none, so its ratio moves only with the host.
    let calibration_ratio = |cell: &str| {
        let ns = |records: &[BenchRecord]| {
            records
                .iter()
                .find(|r| r.kernel == cell && r.threads as u64 == 1)
                .map(|r| r.ns_per_op.max(1.0))
        };
        match (ns(&fresh), ns(&baseline)) {
            (Some(f), Some(b)) => Some(f / b),
            _ => None,
        }
    };
    let load_scale = ["calibration", "calibration_end"]
        .iter()
        .filter_map(|cell| calibration_ratio(cell))
        .fold(f64::NAN, f64::max);
    let load_scale = if load_scale.is_finite() {
        load_scale
    } else {
        println!("note: no shared calibration cell — overhead gate is not load-normalized");
        1.0
    };
    let mut one_thread_ratios: Vec<f64> = fresh
        .iter()
        .filter(|r| r.threads as u64 == 1 && !r.kernel.starts_with("calibration"))
        .filter_map(|r| {
            baseline_by_key.get(&key(r)).map(|&base| r.ns_per_op / base.max(1.0) / load_scale)
        })
        .collect();
    let mut overhead_failure = false;
    if one_thread_ratios.is_empty() {
        println!("note: overhead gate skipped — no 1-thread records shared with the baseline");
    } else {
        one_thread_ratios.sort_by(|a, b| a.total_cmp(b));
        let median = one_thread_ratios[one_thread_ratios.len() / 2];
        println!(
            "instrumentation overhead: median 1T ratio {median:.3}x over {} record(s), \
             load-normalized by {load_scale:.3}x (limit {overhead_ratio:.2}x)",
            one_thread_ratios.len()
        );
        if median > overhead_ratio {
            overhead_failure = true;
            eprintln!(
                "bench_check: single-threaded kernels run a median {:.1}% slower than the \
                 pre-instrumentation baseline after load normalization (budget: {:.1}%) — \
                 observability must stay off the hot path",
                (median - 1.0) * 100.0,
                (overhead_ratio - 1.0) * 100.0
            );
        }
    }

    // 1T-vs-4T scaling: summary line always, hard gates only where 4 workers can actually run
    // in parallel.
    let mut t1: BTreeMap<(String, u64), f64> = BTreeMap::new();
    let mut t4: BTreeMap<(String, u64), f64> = BTreeMap::new();
    for r in &fresh {
        let cell = (r.kernel.clone(), r.nodes as u64);
        match r.threads as u64 {
            1 => {
                t1.insert(cell, r.ns_per_op);
            }
            4 => {
                t4.insert(cell, r.ns_per_op);
            }
            _ => {}
        }
    }
    let speedups: Vec<((String, u64), f64)> = t1
        .iter()
        .filter_map(|(cell, &one)| t4.get(cell).map(|&four| (cell.clone(), one / four.max(1.0))))
        .collect();
    let summary: Vec<String> =
        speedups.iter().map(|((kernel, nodes), s)| format!("{kernel}@{nodes} {s:.2}x")).collect();
    println!("scaling 1T->4T: {}", summary.join(", "));

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut scaling_failures = 0usize;
    if cores >= 4 {
        for ((kernel, nodes), speedup) in &speedups {
            if *speedup < 1.0 / 1.10 {
                scaling_failures += 1;
                eprintln!(
                    "bench_check: {kernel}@{nodes} is {:.0}% slower at 4T than 1T \
                     (limit: 10%)",
                    (1.0 / speedup - 1.0) * 100.0
                );
            }
            let gated_kernel = kernel == "smooth_sensitivity" || kernel == "per_node_triangles";
            if gated_kernel && *nodes >= 100_000 && *speedup < 1.5 {
                scaling_failures += 1;
                eprintln!(
                    "bench_check: {kernel}@{nodes} reaches only {speedup:.2}x at 4T vs 1T \
                     (required: >=1.5x at the ~10^5-node scale)"
                );
            }
        }
    } else if !speedups.is_empty() {
        println!(
            "note: scaling gates skipped — host has {cores} hardware thread(s), \
             a 4-worker pool cannot run in parallel here"
        );
    }

    if scaling_failures > 0 {
        eprintln!("bench_check: {scaling_failures} scaling gate(s) failed on a {cores}-core host");
        return ExitCode::FAILURE;
    }
    if regressions > 0 {
        eprintln!(
            "bench_check: {regressions} kernel(s) regressed by more than {max_ratio}x vs \
             {baseline_path}; if intentional, refresh the baseline and commit it"
        );
        return ExitCode::FAILURE;
    }
    if overhead_failure {
        return ExitCode::FAILURE;
    }
    println!(
        "bench_check: ok ({} records within {max_ratio}x of baseline, \
         median 1T overhead within {overhead_ratio:.2}x)",
        fresh.len()
    );
    ExitCode::SUCCESS
}
