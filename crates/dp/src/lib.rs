//! `kronpriv-dp` — the differential-privacy toolkit used by the private SKG estimator.
//!
//! The paper's Algorithm 1 needs four private quantities: the edge count `Ẽ`, hairpin count `H̃`
//! and tripin count `T̃` (all derived from a private degree sequence, Fact 4.6) and the triangle
//! count `Δ̃` (released through the smooth-sensitivity mechanism of Nissim et al., Theorem 4.8).
//! This crate implements the building blocks:
//!
//! * [`laplace`] — the Laplace distribution and the global-sensitivity Laplace mechanism of
//!   Dwork et al. (Theorem 4.5),
//! * [`budget`] — `(ε, δ)` privacy parameters, splitting, and sequential composition
//!   (Theorem 4.9),
//! * [`degree`] — Hay et al.'s differentially private sorted degree sequence: Laplace noise with
//!   global sensitivity 2, followed by constrained-inference post-processing (isotonic
//!   regression), plus the `Ẽ/H̃/T̃` derivation,
//! * [`smooth`] — local sensitivity, `β`-smooth sensitivity of the triangle count, and the
//!   `(ε, δ)` triangle-count release.
//!
//! Everything is deterministic given the caller-supplied RNG, so experiments are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod degree;
pub mod laplace;
pub mod smooth;

pub use budget::{ParamError, PrivacyParams};
pub use degree::{
    isotonic_increasing_par, private_degree_sequence, private_degree_sequence_par,
    PrivateDegreeSequence,
};
pub use laplace::{laplace_mechanism, sample_laplace, LaplaceNoise};
pub use smooth::{
    private_triangle_count, private_triangle_count_par, smooth_sensitivity_triangles,
    smooth_sensitivity_triangles_par, triangle_local_sensitivity, triangle_local_sensitivity_par,
    PrivateTriangleCount,
};
