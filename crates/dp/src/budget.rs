//! Privacy parameters, budget splitting and sequential composition.
//!
//! Definition 4.2 of the paper is `(ε, δ)`-edge differential privacy; Theorem 4.9 (sequential
//! composition) says that running `ℓ` mechanisms that are each `(ε, δ)`-DP on the same graph is
//! `(ℓε, ℓδ)`-DP. Algorithm 1 splits its total budget as `ε/2` for the degree sequence and
//! `(ε/2, δ)` for the triangle count, so the whole estimator is `(ε, δ)`-DP by composition
//! (Theorem 4.10 states the sum as `(2·(ε/2), δ)`).

use kronpriv_json::impl_json_struct;

/// A rejected `(ε, δ)` parameter pair, carrying the offending value.
///
/// Returned by [`PrivacyParams::try_new`]; the `Display` rendering is the exact message the
/// panicking [`PrivacyParams::new`] uses, so callers that migrate from `new` to `try_new` keep
/// their diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamError {
    /// `ε` was not a finite positive number.
    NonPositiveEpsilon(
        /// The rejected `ε` value.
        f64,
    ),
    /// `δ` was outside `[0, 1)` (or not finite).
    DeltaOutOfRange(
        /// The rejected `δ` value.
        f64,
    ),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::NonPositiveEpsilon(e) => {
                write!(f, "epsilon must be positive, got {e}")
            }
            ParamError::DeltaOutOfRange(d) => write!(f, "delta must be in [0,1), got {d}"),
        }
    }
}

impl std::error::Error for ParamError {}

/// An `(ε, δ)` differential-privacy guarantee (or budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyParams {
    /// The multiplicative privacy-loss bound `ε`.
    pub epsilon: f64,
    /// The additive slack `δ` (0 for pure DP).
    pub delta: f64,
}

impl_json_struct!(PrivacyParams { epsilon, delta });

impl PrivacyParams {
    /// Creates a parameter pair, validating `ε > 0` and `δ ∈ [0, 1)`.
    ///
    /// # Panics
    /// Panics on invalid parameters. Use [`PrivacyParams::try_new`] to handle untrusted input
    /// (e.g. network requests) without panicking.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        match Self::try_new(epsilon, delta) {
            Ok(params) => params,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: validates `ε > 0` (finite) and `δ ∈ [0, 1)` and reports which
    /// parameter was rejected instead of panicking. This is the entry point for untrusted
    /// parameters — the HTTP server turns the error into a 400 response.
    pub fn try_new(epsilon: f64, delta: f64) -> Result<Self, ParamError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(ParamError::NonPositiveEpsilon(epsilon));
        }
        if !(0.0..1.0).contains(&delta) {
            return Err(ParamError::DeltaOutOfRange(delta));
        }
        Ok(PrivacyParams { epsilon, delta })
    }

    /// Pure `ε`-differential privacy (`δ = 0`).
    pub fn pure(epsilon: f64) -> Self {
        Self::new(epsilon, 0.0)
    }

    /// The paper's experimental setting: `ε = 0.2`, `δ = 0.01` (Table 1 caption).
    pub fn paper_default() -> Self {
        Self::new(0.2, 0.01)
    }

    /// Splits the `ε` budget into `parts` equal shares, keeping `δ` intact on each share.
    ///
    /// This mirrors Algorithm 1, which spends `ε/2` on the degree sequence and `ε/2` on the
    /// triangle count. The δ handling is conservative: the paper's Theorem 4.10 charges δ only
    /// to the triangle release, and [`PrivacyParams::split_with_delta_on_last`] reproduces that
    /// accounting exactly.
    ///
    /// # Panics
    /// Panics if `parts == 0`.
    pub fn split_evenly(&self, parts: usize) -> Vec<PrivacyParams> {
        assert!(parts > 0, "cannot split a budget into zero parts");
        (0..parts)
            .map(|_| PrivacyParams { epsilon: self.epsilon / parts as f64, delta: self.delta })
            .collect()
    }

    /// Splits the `ε` budget evenly into `parts` shares where only the *last* share carries the
    /// `δ` slack; the others are pure-DP. This is the exact accounting of Algorithm 1.
    pub fn split_with_delta_on_last(&self, parts: usize) -> Vec<PrivacyParams> {
        assert!(parts > 0, "cannot split a budget into zero parts");
        (0..parts)
            .map(|i| PrivacyParams {
                epsilon: self.epsilon / parts as f64,
                delta: if i + 1 == parts { self.delta } else { 0.0 },
            })
            .collect()
    }

    /// Sequential composition (Theorem 4.9): the guarantee obtained by running all the given
    /// mechanisms on the same graph. Epsilons and deltas add.
    pub fn compose(parts: &[PrivacyParams]) -> PrivacyParams {
        let epsilon: f64 = parts.iter().map(|p| p.epsilon).sum();
        let delta: f64 = parts.iter().map(|p| p.delta).sum();
        PrivacyParams { epsilon, delta: delta.min(1.0 - f64::EPSILON) }
    }

    /// The guarantee with respect to `k`-edge neighbours (Hay et al.): an algorithm that is
    /// `(ε, δ)`-DP for 1-edge neighbours is `(kε, kδ)`-DP for `k`-edge neighbours.
    pub fn k_edge(&self, k: usize) -> PrivacyParams {
        PrivacyParams {
            epsilon: self.epsilon * k as f64,
            delta: (self.delta * k as f64).min(1.0 - f64::EPSILON),
        }
    }
}

impl std::fmt::Display for PrivacyParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.delta == 0.0 {
            write!(f, "ε={}", self.epsilon)
        } else {
            write!(f, "(ε={}, δ={})", self.epsilon, self.delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn new_accepts_the_paper_setting() {
        let p = PrivacyParams::paper_default();
        assert_eq!(p.epsilon, 0.2);
        assert_eq!(p.delta, 0.01);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_is_rejected() {
        let _ = PrivacyParams::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "delta must be in [0,1)")]
    fn delta_of_one_is_rejected() {
        let _ = PrivacyParams::new(1.0, 1.0);
    }

    #[test]
    fn try_new_reports_the_offending_parameter() {
        assert_eq!(PrivacyParams::try_new(0.2, 0.01), Ok(PrivacyParams::paper_default()));
        assert_eq!(PrivacyParams::try_new(0.0, 0.01), Err(ParamError::NonPositiveEpsilon(0.0)));
        // NaN payloads are never equal to themselves, so match on the variant instead.
        assert!(matches!(
            PrivacyParams::try_new(f64::NAN, 0.0),
            Err(ParamError::NonPositiveEpsilon(e)) if e.is_nan()
        ));
        assert!(matches!(
            PrivacyParams::try_new(1.0, f64::NAN),
            Err(ParamError::DeltaOutOfRange(d)) if d.is_nan()
        ));
        assert_eq!(PrivacyParams::try_new(1.0, 1.0), Err(ParamError::DeltaOutOfRange(1.0)));
        assert_eq!(PrivacyParams::try_new(1.0, -0.1), Err(ParamError::DeltaOutOfRange(-0.1)));
        assert_eq!(
            PrivacyParams::try_new(-3.0, 0.0).unwrap_err().to_string(),
            "epsilon must be positive, got -3"
        );
        assert_eq!(
            PrivacyParams::try_new(1.0, 2.0).unwrap_err().to_string(),
            "delta must be in [0,1), got 2"
        );
    }

    #[test]
    fn pure_has_zero_delta() {
        assert_eq!(PrivacyParams::pure(0.5).delta, 0.0);
    }

    #[test]
    fn even_split_preserves_total_epsilon() {
        let p = PrivacyParams::new(1.0, 0.01);
        let parts = p.split_evenly(4);
        assert_eq!(parts.len(), 4);
        let total: f64 = parts.iter().map(|q| q.epsilon).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(parts.iter().all(|q| q.delta == 0.01));
    }

    #[test]
    fn delta_on_last_split_matches_algorithm_one_accounting() {
        let p = PrivacyParams::new(0.2, 0.01);
        let parts = p.split_with_delta_on_last(2);
        assert_eq!(parts[0], PrivacyParams::new(0.1, 0.0));
        assert_eq!(parts[1], PrivacyParams::new(0.1, 0.01));
        // Composing the shares recovers the original budget (Theorem 4.10).
        let composed = PrivacyParams::compose(&parts);
        assert!((composed.epsilon - 0.2).abs() < 1e-12);
        assert!((composed.delta - 0.01).abs() < 1e-12);
    }

    #[test]
    fn composition_sums_epsilons_and_deltas() {
        let composed = PrivacyParams::compose(&[
            PrivacyParams::new(0.1, 0.0),
            PrivacyParams::new(0.2, 0.001),
            PrivacyParams::new(0.3, 0.002),
        ]);
        assert!((composed.epsilon - 0.6).abs() < 1e-12);
        assert!((composed.delta - 0.003).abs() < 1e-12);
    }

    #[test]
    fn k_edge_scales_both_parameters() {
        let p = PrivacyParams::new(0.2, 0.001).k_edge(3);
        assert!((p.epsilon - 0.6).abs() < 1e-12);
        assert!((p.delta - 0.003).abs() < 1e-12);
    }

    #[test]
    fn display_renders_pure_and_approximate_forms() {
        assert_eq!(format!("{}", PrivacyParams::pure(0.5)), "ε=0.5");
        assert_eq!(format!("{}", PrivacyParams::new(0.2, 0.01)), "(ε=0.2, δ=0.01)");
    }

    // Former proptest property, now a deterministic seeded loop.
    #[test]
    fn splitting_then_composing_is_the_identity() {
        let mut rng = StdRng::seed_from_u64(0xD9_7001);
        for _ in 0..256 {
            let epsilon = rng.gen_range(0.01..5.0);
            let delta = rng.gen_range(0.0..0.5);
            let parts = rng.gen_range(1..10usize);
            let p = PrivacyParams::new(epsilon, delta);
            let composed = PrivacyParams::compose(&p.split_with_delta_on_last(parts));
            assert!((composed.epsilon - epsilon).abs() < 1e-9);
            assert!((composed.delta - delta).abs() < 1e-9);
        }
    }
}
