//! Smooth sensitivity of the triangle count and the `(ε, δ)` triangle release
//! (Nissim, Raskhodnikova, Smith, STOC 2007; Section 4.1 of the paper).
//!
//! Adding or removing the edge `{i, j}` changes the number of triangles by exactly `a_ij`, the
//! number of common neighbours of `i` and `j`, so the *local sensitivity* of `Δ` is
//! `LS_Δ(G) = max_{ij} a_ij` (Definition 4.3). The global sensitivity is `n − 2`, far too large
//! to add as Laplace noise, which is why the paper uses the smooth-sensitivity framework:
//!
//! * the local sensitivity at distance `s` is
//!   `A(s)(G) = max_{ij} c_ij(s)` with `c_ij(s) = min(a_ij + ⌊(s + min(s, b_ij)) / 2⌋, n − 2)`,
//!   where `b_ij` counts nodes adjacent to exactly one of `i`, `j` (converting such a node into
//!   a common neighbour costs one edge change; creating a fresh common neighbour costs two),
//! * the `β`-smooth sensitivity is `SS_β(G) = max_{s ≥ 0} e^{−βs} A(s)(G)` (Definition 4.7),
//! * Theorem 4.8: releasing `Δ + (2·S/ε)·Lap(1)` is `(ε, δ)`-DP whenever `S` is a `β`-smooth
//!   upper bound on `LS_Δ` and `β ≤ ε / (2 ln(2/δ))`.
//!
//! Two computations are provided. [`smooth_sensitivity_triangles_exact`] evaluates the NRS
//! formula over all node pairs — exact but quadratic, used on small graphs and in tests.
//! [`smooth_sensitivity_triangles`] uses the relaxation `c_ij(s) ≤ min(a_ij + s, n − 2)`, whose
//! pair-maximum depends only on `max_{ij} a_ij`; the result is still a valid `β`-smooth upper
//! bound on the local sensitivity (so the privacy guarantee is intact) but is computable in
//! wedge-enumeration time, which is what makes the 2^14-node experiments feasible. The
//! relaxation can only make the released value *noisier*, never less private, and the tests
//! quantify how close the two are on realistic graphs.

use crate::budget::PrivacyParams;
use crate::laplace::LaplaceNoise;
use kronpriv_graph::counts::{common_neighbor_count, exclusive_neighbor_count, triangle_count_par};
use kronpriv_graph::Graph;
use kronpriv_json::impl_json_struct_redacted;
use kronpriv_par::{Executor, Work};
use rand::Rng;

/// Left endpoints (`i` below) per work chunk for the node-partitioned local-sensitivity kernel.
/// Fixed — never derived from the thread count — so the `max`-merge is over the same chunk set
/// for any [`Executor`]; sized so one chunk carries enough wedge work to amortize a pool
/// handoff.
const NODE_CHUNK: usize = 256;

/// Left endpoints per chunk for the quadratic exact kernel, whose per-endpoint cost (`n` pair
/// evaluations, each scanning the distance-`s` curve) is orders of magnitude higher than the
/// wedge kernel's — so much smaller chunks keep the dynamic claiming balanced.
const EXACT_PAIR_CHUNK: usize = 64;

/// Cost hint for one left endpoint of the wedge kernel: a two-hop scan, roughly the squared
/// average degree in neighbour-list steps. A pure function of the graph shape, as the
/// executor's sequential cutoff requires.
fn wedge_work(g: &Graph) -> Work {
    let n = g.node_count().max(1) as u64;
    let avg_degree = (2 * g.edge_count() as u64).div_ceil(n);
    Work::per_item_ns(2 * avg_degree * avg_degree)
}

/// Cost hint for one left endpoint of the quadratic exact kernel: `n` pair evaluations, each a
/// neighbour intersection plus a distance-curve scan.
fn exact_pair_work(g: &Graph) -> Work {
    Work::per_item_ns(200 * g.node_count() as u64)
}

/// Local sensitivity of the triangle count: the largest number of common neighbours over all
/// node pairs, computed by wedge enumeration in `O(Σ_v d_v²)` time and `O(n)` memory.
pub fn triangle_local_sensitivity(g: &Graph) -> usize {
    triangle_local_sensitivity_par(g, &Executor::sequential())
}

/// [`triangle_local_sensitivity`] on `exec`'s compute threads.
///
/// Node-partitioned: each participant owns one `O(n)` counter/marker scratch pair and, for
/// every left endpoint `i` in its chunks, accumulates `a_ij` for all `j > i` by walking the
/// two-hop neighbourhood of `i` (`i — v — j` wedges). This replaces the old wedge-pair
/// `HashMap` — which held one entry per wedge pair, `O(Σ_v d_v²)` memory, ~50M entries for a
/// single degree-10⁴ hub — with `threads × O(n)` memory total. The merge is an integer `max`,
/// so the result is identical for any thread count.
pub fn triangle_local_sensitivity_par(g: &Graph, exec: &Executor) -> usize {
    let n = g.node_count();
    let (best, _, _) = exec.fold_reduce(
        n,
        NODE_CHUNK,
        wedge_work(g),
        // (running max, common-neighbour counters indexed by j, touched-j list for cheap reset).
        || (0usize, vec![0u32; n], Vec::<u32>::new()),
        |(best, counts, touched), left_endpoints| {
            for i in left_endpoints {
                let i = i as u32;
                for &v in g.neighbors(i) {
                    let two_hop = g.neighbors(v);
                    // Neighbour lists are sorted: skip straight to the j > i suffix so each
                    // unordered pair {i, j} is counted from its smaller endpoint only.
                    let start = two_hop.partition_point(|&j| j <= i);
                    for &j in &two_hop[start..] {
                        if counts[j as usize] == 0 {
                            touched.push(j);
                        }
                        counts[j as usize] += 1;
                    }
                }
                for &j in touched.iter() {
                    *best = (*best).max(counts[j as usize] as usize);
                    counts[j as usize] = 0;
                }
                touched.clear();
            }
        },
        |a, b| if a.0 >= b.0 { a } else { b },
    );
    best
}

/// The exact local sensitivity of `Δ` at distance `s` (the quantity `A(s)(G)` above), evaluated
/// by scanning all node pairs. Quadratic in the node count — intended for small graphs and for
/// validating the fast upper bound.
pub fn local_sensitivity_at_distance(g: &Graph, s: usize) -> usize {
    let n = g.node_count();
    if n < 2 {
        return 0;
    }
    let cap = n - 2;
    let mut best = 0usize;
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            let a = common_neighbor_count(g, i, j);
            let b = exclusive_neighbor_count(g, i, j);
            let c = (a + (s + s.min(b)) / 2).min(cap);
            best = best.max(c);
        }
    }
    best
}

/// Exact `β`-smooth sensitivity of the triangle count (maximum of `e^{−βs} A(s)` over `s`).
/// Quadratic in the node count; see [`smooth_sensitivity_triangles`] for the scalable variant.
///
/// # Panics
/// Panics if `beta <= 0`.
pub fn smooth_sensitivity_triangles_exact(g: &Graph, beta: f64) -> f64 {
    smooth_sensitivity_triangles_exact_par(g, beta, &Executor::sequential())
}

/// [`smooth_sensitivity_triangles_exact`] on `exec`'s compute threads, partitioned over
/// the smaller pair endpoint. The merge is an exact `f64::max`, so the result is bit-identical
/// for any thread count.
///
/// # Panics
/// Panics if `beta <= 0`.
pub fn smooth_sensitivity_triangles_exact_par(g: &Graph, beta: f64, exec: &Executor) -> f64 {
    assert!(beta > 0.0, "beta must be positive");
    let n = g.node_count();
    if n < 3 {
        return 0.0;
    }
    let cap = (n - 2) as f64;
    exec.map_reduce(
        n,
        EXACT_PAIR_CHUNK,
        exact_pair_work(g),
        |left_endpoints| {
            let mut best = 0.0f64;
            for i in left_endpoints {
                let i = i as u32;
                for j in (i + 1)..n as u32 {
                    let a = common_neighbor_count(g, i, j) as f64;
                    let b = exclusive_neighbor_count(g, i, j) as f64;
                    best = best.max(pair_smooth_contribution(a, b, cap, beta));
                }
            }
            best
        },
        |acc: f64, chunk_best| acc.max(chunk_best),
        0.0,
    )
}

/// `max_s e^{−βs} c_ij(s)` for one pair with common count `a` and exclusive count `b`.
fn pair_smooth_contribution(a: f64, b: f64, cap: f64, beta: f64) -> f64 {
    // c(s) saturates at the cap once a + (s + min(s, b))/2 >= cap; beyond that the exponential
    // decay only shrinks the product, so it is enough to scan s up to that point.
    let saturation = if cap <= a { 0 } else { (2.0 * (cap - a)).ceil() as usize + 2 };
    let mut best = 0.0f64;
    for s in 0..=saturation {
        let sf = s as f64;
        let c = (a + (sf + sf.min(b)) / 2.0).floor().min(cap);
        best = best.max((-beta * sf).exp() * c);
        if c >= cap {
            break;
        }
    }
    best
}

/// Scalable `β`-smooth **upper bound** on the local sensitivity of the triangle count, based on
/// the relaxation `c_ij(s) ≤ min(LS_Δ(G) + s, n − 2)`.
///
/// The returned value `S` satisfies both requirements of Theorem 4.8 — `S ≥ LS_Δ(G)` and
/// `S(G) ≤ e^β S(G')` for edge-neighbouring graphs — so using it in place of the exact smooth
/// sensitivity preserves `(ε, δ)`-differential privacy and only costs some extra noise.
///
/// # Panics
/// Panics if `beta <= 0`.
pub fn smooth_sensitivity_triangles(g: &Graph, beta: f64) -> f64 {
    smooth_sensitivity_triangles_par(g, beta, &Executor::sequential())
}

/// [`smooth_sensitivity_triangles`] with the local-sensitivity kernel run on
/// `exec`'s compute threads (see [`triangle_local_sensitivity_par`]); the closed-form
/// maximisation over `s` happens once on the calling thread. Identical for any thread count.
///
/// # Panics
/// Panics if `beta <= 0`.
pub fn smooth_sensitivity_triangles_par(g: &Graph, beta: f64, exec: &Executor) -> f64 {
    assert!(beta > 0.0, "beta must be positive");
    let n = g.node_count();
    if n < 3 {
        return 0.0;
    }
    let cap = (n - 2) as f64;
    let ls = triangle_local_sensitivity_par(g, exec) as f64;
    // Maximise e^{-beta s} * min(ls + s, cap) over integer s >= 0. The unconstrained maximiser
    // of e^{-beta s}(ls + s) is s* = 1/beta - ls; check the integers around it and the
    // saturation point.
    let mut candidates = vec![0.0f64, (cap - ls).max(0.0)];
    let unconstrained = (1.0 / beta - ls).max(0.0);
    candidates.push(unconstrained.floor());
    candidates.push(unconstrained.ceil());
    let mut best = 0.0f64;
    for s in candidates {
        let c = (ls + s).min(cap);
        best = best.max((-beta * s).exp() * c);
    }
    best
}

/// The output of the `(ε, δ)` private triangle-count mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivateTriangleCount {
    /// The released (noisy) triangle count. May be negative for very small graphs/budgets;
    /// consumers that need a non-negative count should clamp.
    pub value: f64,
    /// The exact triangle count — **never serialized** (redacted block below); retained in
    /// memory for experiment bookkeeping only. Parsed values hold `NAN` here.
    pub exact: f64,
    /// The smooth-sensitivity value used to scale the noise.
    pub smooth_sensitivity: f64,
    /// The smoothing parameter `β = ε / (2 ln(2/δ))`.
    pub beta: f64,
    /// The privacy guarantee spent producing this release.
    pub params: PrivacyParams,
}

impl_json_struct_redacted!(PrivateTriangleCount {
    released: { value, smooth_sensitivity, beta, params },
    redacted: { exact: f64::NAN },
});

/// Releases an `(ε, δ)`-differentially private triangle count of `g` using the smooth-sensitivity
/// mechanism (Theorem 4.8): `Δ̃ = Δ + (2·SS_β/ε)·Lap(1)` with `β = ε / (2 ln(2/δ))`.
///
/// When `exact` is true the exact quadratic smooth sensitivity is used; otherwise the scalable
/// upper bound is used (the default in Algorithm 1 runs on graphs with thousands of nodes).
///
/// # Panics
/// Panics if `params.delta == 0` (pure DP is impossible for smooth-sensitivity noise with
/// Laplace tails) or the graph has fewer than 3 nodes with a non-zero budget.
// lint:sanitizer
pub fn private_triangle_count<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    exact: bool,
    rng: &mut R,
) -> PrivateTriangleCount {
    private_triangle_count_par(g, params, exact, rng, &Executor::sequential())
}

/// [`private_triangle_count`] with the triangle-count and sensitivity kernels run on
/// `exec`'s compute threads. All parallel reductions are exact, and the single Laplace
/// draw happens on the calling thread, so the release is byte-identical for any thread count
/// given the same RNG state.
///
/// # Panics
/// Panics if `params.delta == 0` (pure DP is impossible for smooth-sensitivity noise with
/// Laplace tails).
// lint:sanitizer
pub fn private_triangle_count_par<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    exact: bool,
    rng: &mut R,
    exec: &Executor,
) -> PrivateTriangleCount {
    assert!(params.delta > 0.0, "the smooth-sensitivity triangle release requires delta > 0");
    let beta = params.epsilon / (2.0 * (2.0 / params.delta).ln());
    let ss = {
        let _span = kronpriv_obs::stage_span("smooth_sensitivity");
        if exact {
            smooth_sensitivity_triangles_exact_par(g, beta, exec)
        } else {
            smooth_sensitivity_triangles_par(g, beta, exec)
        }
    };
    let exact_count = {
        let _span = kronpriv_obs::stage_span("triangle_count");
        triangle_count_par(g, exec) as f64
    };
    let noise = LaplaceNoise::new(1.0);
    let value = exact_count + 2.0 * ss / params.epsilon * noise.sample(rng);
    PrivateTriangleCount { value, exact: exact_count, smooth_sensitivity: ss, beta, params }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_graph::counts::max_common_neighbors;
    use kronpriv_graph::generators::{erdos_renyi_gnp, preferential_attachment};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn complete_graph(n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        Graph::from_edges(n, edges)
    }

    #[test]
    fn local_sensitivity_of_complete_graph_is_n_minus_two() {
        assert_eq!(triangle_local_sensitivity(&complete_graph(7)), 5);
    }

    #[test]
    fn local_sensitivity_of_triangle_free_graph() {
        // A star has exactly one common neighbour (the hub) for every pair of leaves.
        let star = Graph::from_edges(6, (1..6u32).map(|v| (0, v)));
        assert_eq!(triangle_local_sensitivity(&star), 1);
        // A single edge has no common neighbours anywhere.
        let edge = Graph::from_edges(2, vec![(0, 1)]);
        assert_eq!(triangle_local_sensitivity(&edge), 0);
    }

    #[test]
    fn fast_local_sensitivity_matches_quadratic_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..5 {
            let g = erdos_renyi_gnp(40, 0.1 + 0.05 * seed as f64, &mut rng);
            assert_eq!(triangle_local_sensitivity(&g), max_common_neighbors(&g), "seed {seed}");
        }
    }

    #[test]
    fn star_of_stars_matches_quadratic_reference() {
        // A hub adjacent to 15 mid-tier nodes and all of their leaves (6 each): the pair
        // (hub, mid_i) shares mid_i's leaves, so the local sensitivity is exactly 6. Small
        // enough (hub degree 105) for the O(n²) reference; the hub-heavy scale regression —
        // where the old wedge-pair HashMap blew up quadratically — is pinned end to end in
        // tests/parallel_consistency.rs.
        let (mids, leaves) = (15u32, 6u32);
        let mut edges = Vec::new();
        let mut next = mids + 1;
        for mid in 1..=mids {
            edges.push((0, mid));
            for _ in 0..leaves {
                edges.push((mid, next));
                edges.push((0, next));
                next += 1;
            }
        }
        let g = Graph::from_edges(1 + mids as usize + (mids * leaves) as usize, edges);
        assert_eq!(triangle_local_sensitivity(&g), leaves as usize);
        assert_eq!(triangle_local_sensitivity(&g), max_common_neighbors(&g));
    }

    #[test]
    fn parallel_sensitivity_kernels_are_bit_identical_across_thread_counts() {
        // 400 nodes ⇒ 7 exact-kernel chunks: enough that the exact kernel genuinely spawns
        // threads (the wedge kernel's parallel path is exercised at scale in
        // tests/parallel_consistency.rs) while the O(n²·n) exact scan stays debug-build fast.
        let mut rng = StdRng::seed_from_u64(0x9A_7001);
        let g = preferential_attachment(400, 4, &mut rng);
        let beta = 0.05;
        let ls = triangle_local_sensitivity(&g);
        let ss = smooth_sensitivity_triangles(&g, beta);
        let ss_exact = smooth_sensitivity_triangles_exact(&g, beta);
        for threads in [1, 2, 8] {
            let exec = Executor::new(threads);
            assert_eq!(triangle_local_sensitivity_par(&g, &exec), ls, "threads {threads}");
            assert_eq!(
                smooth_sensitivity_triangles_par(&g, beta, &exec).to_bits(),
                ss.to_bits(),
                "threads {threads}"
            );
            assert_eq!(
                smooth_sensitivity_triangles_exact_par(&g, beta, &exec).to_bits(),
                ss_exact.to_bits(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn local_sensitivity_at_distance_zero_is_plain_local_sensitivity() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi_gnp(30, 0.15, &mut rng);
        assert_eq!(local_sensitivity_at_distance(&g, 0), triangle_local_sensitivity(&g));
    }

    #[test]
    fn local_sensitivity_at_distance_is_monotone_and_capped() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi_gnp(25, 0.2, &mut rng);
        let n = g.node_count();
        let mut prev = 0;
        for s in 0..60 {
            let a = local_sensitivity_at_distance(&g, s);
            assert!(a >= prev, "A(s) must be non-decreasing");
            assert!(a <= n - 2);
            prev = a;
        }
        assert_eq!(local_sensitivity_at_distance(&g, 10 * n), n - 2);
    }

    #[test]
    fn smooth_sensitivity_is_at_least_local_sensitivity() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = erdos_renyi_gnp(30, 0.2, &mut rng);
        let ls = triangle_local_sensitivity(&g) as f64;
        for beta in [0.01, 0.05, 0.2, 1.0] {
            assert!(smooth_sensitivity_triangles_exact(&g, beta) >= ls);
            assert!(smooth_sensitivity_triangles(&g, beta) >= ls);
        }
    }

    #[test]
    fn fast_bound_dominates_exact_smooth_sensitivity() {
        let mut rng = StdRng::seed_from_u64(5);
        for seed in 0..4 {
            let g = erdos_renyi_gnp(35, 0.1 + 0.05 * seed as f64, &mut rng);
            for beta in [0.02, 0.1, 0.5] {
                let exact = smooth_sensitivity_triangles_exact(&g, beta);
                let fast = smooth_sensitivity_triangles(&g, beta);
                assert!(
                    fast >= exact - 1e-9,
                    "fast bound {fast} must dominate exact {exact} (beta {beta})"
                );
                // And it should not be wildly loose on these graphs (within the distance-s cap
                // the two differ only by the floor and the b_ij term).
                assert!(fast <= 2.5 * exact + 2.0, "fast {fast} vs exact {exact}");
            }
        }
    }

    #[test]
    fn exact_smooth_sensitivity_is_beta_smooth_across_neighbors() {
        // Definition 4.7's key property: SS(G) <= e^beta * SS(G') for any edge-neighbour G'.
        let mut rng = StdRng::seed_from_u64(6);
        let g = erdos_renyi_gnp(18, 0.25, &mut rng);
        let beta = 0.3;
        let base = smooth_sensitivity_triangles_exact(&g, beta);
        // Check a handful of neighbours in both directions.
        for &(u, v) in g.edges().iter().take(5) {
            let neighbor = g.with_edge_removed(u, v);
            let other = smooth_sensitivity_triangles_exact(&neighbor, beta);
            assert!(base <= beta.exp() * other + 1e-9);
            assert!(other <= beta.exp() * base + 1e-9);
        }
        let added = g.with_edge_added(0, 1).with_edge_added(2, 3);
        // Two edges away: allow e^{2 beta}.
        let other = smooth_sensitivity_triangles_exact(&added, beta);
        assert!(other <= (2.0 * beta).exp() * base + 1e-9);
    }

    #[test]
    fn fast_bound_is_beta_smooth_across_neighbors() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = preferential_attachment(60, 3, &mut rng);
        let beta = 0.2;
        let base = smooth_sensitivity_triangles(&g, beta);
        for &(u, v) in g.edges().iter().take(8) {
            let neighbor = g.with_edge_removed(u, v);
            let other = smooth_sensitivity_triangles(&neighbor, beta);
            assert!(base <= beta.exp() * other + 1e-9, "{base} vs {other}");
            assert!(other <= beta.exp() * base + 1e-9, "{other} vs {base}");
        }
    }

    #[test]
    fn smooth_sensitivity_grows_as_beta_shrinks() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = erdos_renyi_gnp(30, 0.2, &mut rng);
        let tight = smooth_sensitivity_triangles_exact(&g, 1.0);
        let loose = smooth_sensitivity_triangles_exact(&g, 0.01);
        assert!(loose >= tight);
    }

    #[test]
    fn empty_and_tiny_graphs_have_zero_smooth_sensitivity() {
        assert_eq!(smooth_sensitivity_triangles(&Graph::empty(2), 0.1), 0.0);
        assert_eq!(smooth_sensitivity_triangles_exact(&Graph::empty(1), 0.1), 0.0);
    }

    #[test]
    fn private_triangle_count_records_budget_and_beta() {
        let g = complete_graph(10);
        let mut rng = StdRng::seed_from_u64(9);
        let params = PrivacyParams::new(0.1, 0.01);
        let rel = private_triangle_count(&g, params, true, &mut rng);
        assert_eq!(rel.params, params);
        let expected_beta = 0.1 / (2.0 * (2.0 / 0.01f64).ln());
        assert!((rel.beta - expected_beta).abs() < 1e-12);
        assert_eq!(rel.exact, 120.0);
    }

    #[test]
    fn private_triangle_count_is_accurate_with_large_budget() {
        let g = complete_graph(12);
        let mut rng = StdRng::seed_from_u64(10);
        let rel = private_triangle_count(&g, PrivacyParams::new(100.0, 0.01), true, &mut rng);
        assert!((rel.value - 220.0).abs() < 5.0, "value {}", rel.value);
    }

    #[test]
    fn private_triangle_count_noise_scales_with_smooth_sensitivity() {
        // Empirically compare the spread of the release on a high-sensitivity graph (complete)
        // versus a low-sensitivity graph (star) under the same budget.
        let dense = complete_graph(20);
        let sparse = Graph::from_edges(20, (1..20u32).map(|v| (0, v)));
        let params = PrivacyParams::new(0.5, 0.01);
        let reps = 200;
        let spread = |g: &Graph, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let vals: Vec<f64> = (0..reps)
                .map(|_| {
                    let r = private_triangle_count(g, params, true, &mut rng);
                    r.value - r.exact
                })
                .collect();
            vals.iter().map(|v| v.abs()).sum::<f64>() / reps as f64
        };
        assert!(spread(&dense, 11) > spread(&sparse, 12));
    }

    #[test]
    #[should_panic(expected = "delta > 0")]
    fn pure_dp_budget_is_rejected() {
        let g = complete_graph(5);
        let mut rng = StdRng::seed_from_u64(13);
        let _ = private_triangle_count(&g, PrivacyParams::pure(0.5), true, &mut rng);
    }

    // Former proptest property (16 cases), now a deterministic seeded loop.
    #[test]
    fn smooth_sensitivity_invariants_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(0x53_7001);
        for _ in 0..16 {
            let len = rng.gen_range(0..60usize);
            let edges: Vec<(u32, u32)> =
                (0..len).map(|_| (rng.gen_range(0..15u32), rng.gen_range(0..15u32))).collect();
            let beta = rng.gen_range(0.05..1.0);
            let g = Graph::from_edges(15, edges);
            let ls = triangle_local_sensitivity(&g) as f64;
            let exact = smooth_sensitivity_triangles_exact(&g, beta);
            let fast = smooth_sensitivity_triangles(&g, beta);
            assert!(exact + 1e-9 >= ls);
            assert!(fast + 1e-9 >= exact);
            assert!(exact <= 13.0 + 1e-9); // never exceeds n - 2
        }
    }
}
