//! Differentially private degree sequences (Hay, Li, Miklau, Jensen, ICDM 2009) and the
//! degree-derived statistics used by Algorithm 1.
//!
//! The pipeline is exactly the one the paper describes in Section 4.1:
//!
//! 1. sort the degree sequence of the graph (`dS`),
//! 2. add a vector of independent `Lap(GS/ε)` noise — the global sensitivity of the *sorted*
//!    degree sequence under single-edge change is `GS = 2` (one edge changes two degrees by one
//!    each),
//! 3. post-process the noisy sequence with *constrained inference*: project it back onto the
//!    cone of non-decreasing sequences (isotonic regression / PAVA), which removes much of the
//!    noise without consuming any additional privacy budget (post-processing is free),
//! 4. derive `Ẽ = ½ Σ d̃ᵢ`, `H̃ = ½ Σ d̃ᵢ(d̃ᵢ − 1)`, `T̃ = ⅙ Σ d̃ᵢ(d̃ᵢ − 1)(d̃ᵢ − 2)`
//!    (Fact 4.6: these are functions of the released sequence only).

use crate::budget::PrivacyParams;
use crate::laplace::LaplaceNoise;
use kronpriv_graph::Graph;
use kronpriv_json::impl_json_struct_redacted;
use kronpriv_linalg::{isotonic_increasing, IsotonicBlocks};
use kronpriv_par::{Executor, Work};
use rand::Rng;

/// Global sensitivity of the sorted degree sequence under addition/removal of one edge.
pub const DEGREE_SEQUENCE_SENSITIVITY: f64 = 2.0;

/// Fixed block length of the parallel PAVA pass. Like every `kronpriv-par` kernel the chunk
/// boundaries depend only on the input length — never on the thread count — so the projection
/// is byte-identical for 1 thread and for 64.
const ISOTONIC_CHUNK: usize = 1024;

/// The output of the private degree-sequence mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivateDegreeSequence {
    /// The released non-decreasing degree sequence `d̃` (after post-processing). Entries are
    /// real-valued and may be slightly negative around degree 0; the derived statistics clamp
    /// where appropriate.
    pub degrees: Vec<f64>,
    /// The raw noisy sequence before isotonic post-processing — **never serialized** (redacted
    /// block below); kept in memory for diagnostics/ablations only. Parsed values are empty.
    pub noisy_degrees: Vec<f64>,
    /// The privacy guarantee spent producing this release.
    pub params: PrivacyParams,
}

impl_json_struct_redacted!(PrivateDegreeSequence {
    released: { degrees, params },
    redacted: { noisy_degrees: Vec::new() },
});

impl PrivateDegreeSequence {
    /// `Ẽ`: the private estimate of the number of edges, `½ Σ d̃ᵢ`.
    pub fn edge_count(&self) -> f64 {
        0.5 * self.degrees.iter().sum::<f64>()
    }

    /// `H̃`: the private estimate of the number of hairpins (wedges), `½ Σ d̃ᵢ(d̃ᵢ − 1)`.
    pub fn hairpin_count(&self) -> f64 {
        0.5 * self.degrees.iter().map(|d| d * (d - 1.0)).sum::<f64>()
    }

    /// `T̃`: the private estimate of the number of tripins (3-stars),
    /// `⅙ Σ d̃ᵢ(d̃ᵢ − 1)(d̃ᵢ − 2)`.
    pub fn tripin_count(&self) -> f64 {
        self.degrees.iter().map(|d| d * (d - 1.0) * (d - 2.0)).sum::<f64>() / 6.0
    }

    /// L2 error of the released sequence against a reference (sorted) degree sequence; used by
    /// the accuracy experiments.
    pub fn l2_error(&self, reference: &[f64]) -> f64 {
        assert_eq!(self.degrees.len(), reference.len(), "length mismatch");
        self.degrees.iter().zip(reference).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }
}

/// Releases an `(ε, 0)`-differentially private approximation of the sorted degree sequence of
/// `g` (Hay et al.), spending the full `params.epsilon` on it.
///
/// # Panics
/// Panics if `params.epsilon` is not positive (enforced by [`PrivacyParams`]).
// lint:sanitizer
pub fn private_degree_sequence<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    rng: &mut R,
) -> PrivateDegreeSequence {
    let mut sorted: Vec<f64> = g.degrees().iter().map(|&d| d as f64).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    private_degree_sequence_from_sorted(&sorted, params, rng)
}

/// Same as [`private_degree_sequence`] but starting from an already-sorted degree vector. Useful
/// for testing the mechanism in isolation and for ablation studies on synthetic sequences.
// lint:sanitizer
pub fn private_degree_sequence_from_sorted<R: Rng + ?Sized>(
    sorted_degrees: &[f64],
    params: PrivacyParams,
    rng: &mut R,
) -> PrivateDegreeSequence {
    let noise = LaplaceNoise::new(DEGREE_SEQUENCE_SENSITIVITY / params.epsilon);
    let noisy: Vec<f64> = sorted_degrees.iter().map(|&d| d + noise.sample(rng)).collect();
    let fitted = isotonic_increasing(&noisy);
    PrivateDegreeSequence { degrees: fitted, noisy_degrees: noisy, params }
}

/// The block-parallel constrained-inference pass: the same L2 projection onto the monotone cone
/// as [`isotonic_increasing`], decomposed over fixed [`ISOTONIC_CHUNK`]-length blocks. Each
/// block's PAVA solution is computed independently (the independent descending runs inside a
/// block never interact with other blocks until the merge) and the per-block
/// [`IsotonicBlocks`] stacks are merged **in index order** on the calling thread, pooling only
/// at the seams.
///
/// Byte-identical for every thread count (fixed chunk boundaries, chunk-order merge). Against
/// the element-at-a-time [`isotonic_increasing`] pass the result can differ by float
/// associativity in the pooled means (last ulp) — the regression tests pin the two to an
/// `1e-9` band — because pooling across a seam adds pre-pooled block sums instead of summing
/// the elements one at a time.
pub fn isotonic_increasing_par(values: &[f64], exec: &Executor) -> Vec<f64> {
    exec.map_reduce(
        values.len(),
        ISOTONIC_CHUNK,
        Work::LIGHT,
        |range| IsotonicBlocks::of(&values[range]),
        |acc: IsotonicBlocks, blocks| acc.merge(blocks),
        IsotonicBlocks::new(),
    )
    .expand()
}

/// Parallel form of [`private_degree_sequence`]: identical mechanism and privacy accounting,
/// with the isotonic post-processing running on `exec` via [`isotonic_increasing_par`].
/// The release is a pure function of `(graph, params, rng)` — the thread count never changes
/// the output. This is the form Algorithm 1's estimator calls.
// lint:sanitizer
pub fn private_degree_sequence_par<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    rng: &mut R,
    exec: &Executor,
) -> PrivateDegreeSequence {
    let mut sorted: Vec<f64> = g.degrees().iter().map(|&d| d as f64).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    private_degree_sequence_from_sorted_par(&sorted, params, rng, exec)
}

/// Parallel form of [`private_degree_sequence_from_sorted`]; see
/// [`private_degree_sequence_par`].
// lint:sanitizer
pub fn private_degree_sequence_from_sorted_par<R: Rng + ?Sized>(
    sorted_degrees: &[f64],
    params: PrivacyParams,
    rng: &mut R,
    exec: &Executor,
) -> PrivateDegreeSequence {
    let noisy: Vec<f64> = {
        let _span = kronpriv_obs::stage_span("degree_laplace");
        let noise = LaplaceNoise::new(DEGREE_SEQUENCE_SENSITIVITY / params.epsilon);
        sorted_degrees.iter().map(|&d| d + noise.sample(rng)).collect()
    };
    let fitted = {
        let _span = kronpriv_obs::stage_span("isotonic");
        isotonic_increasing_par(&noisy, exec)
    };
    PrivateDegreeSequence { degrees: fitted, noisy_degrees: noisy, params }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_graph::counts::{hairpin_count, tripin_count};
    use kronpriv_graph::generators::preferential_attachment;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(leaves: usize) -> Graph {
        Graph::from_edges(leaves + 1, (1..=leaves as u32).map(|v| (0, v)))
    }

    #[test]
    fn release_has_the_same_length_as_the_degree_sequence() {
        let g = star(9);
        let mut rng = StdRng::seed_from_u64(1);
        let rel = private_degree_sequence(&g, PrivacyParams::pure(1.0), &mut rng);
        assert_eq!(rel.degrees.len(), 10);
        assert_eq!(rel.noisy_degrees.len(), 10);
    }

    #[test]
    fn released_sequence_is_non_decreasing() {
        let g = preferential_attachment(300, 3, &mut StdRng::seed_from_u64(2));
        let mut rng = StdRng::seed_from_u64(3);
        let rel = private_degree_sequence(&g, PrivacyParams::pure(0.1), &mut rng);
        assert!(rel.degrees.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn post_processing_never_hurts_l2_accuracy() {
        // The isotonic projection onto the monotone cone (which contains the true sorted
        // sequence) cannot increase the L2 distance to it — this is the core accuracy claim of
        // Hay et al.'s constrained inference.
        let g = preferential_attachment(500, 3, &mut StdRng::seed_from_u64(4));
        let mut truth: Vec<f64> = g.degrees().iter().map(|&d| d as f64).collect();
        truth.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let rel = private_degree_sequence(&g, PrivacyParams::pure(0.1), &mut rng);
            let noisy_err: f64 = rel
                .noisy_degrees
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            let fitted_err = rel.l2_error(&truth);
            assert!(
                fitted_err <= noisy_err + 1e-9,
                "seed {seed}: fitted {fitted_err} > noisy {noisy_err}"
            );
        }
    }

    #[test]
    fn large_epsilon_recovers_the_exact_statistics() {
        // With a huge budget the noise is negligible and the derived statistics must match the
        // exact degree-based counts.
        let g = preferential_attachment(200, 2, &mut StdRng::seed_from_u64(5));
        let mut rng = StdRng::seed_from_u64(6);
        let rel = private_degree_sequence(&g, PrivacyParams::pure(1e9), &mut rng);
        let degrees = g.degrees();
        assert!((rel.edge_count() - g.edge_count() as f64).abs() < 1e-3);
        assert!((rel.hairpin_count() - hairpin_count(&degrees)).abs() < 1e-2);
        assert!((rel.tripin_count() - tripin_count(&degrees)).abs() < 1e-1);
    }

    #[test]
    fn moderate_epsilon_keeps_edge_count_error_within_the_analytic_noise_level() {
        // ε = 0.1 on a 1000-node heavy-tailed graph. The edge-count estimate is half the sum of
        // n independent Lap(2/ε) perturbations (the isotonic projection preserves the sum), so
        // its standard deviation is √(2n)·(2/ε)/2; check the observed error stays within 4σ.
        let g = preferential_attachment(1000, 3, &mut StdRng::seed_from_u64(7));
        let truth = g.edge_count() as f64;
        let epsilon = 0.1;
        let sigma = (2.0 * g.node_count() as f64).sqrt() * (2.0 / epsilon) / 2.0;
        let mut rng = StdRng::seed_from_u64(8);
        let rel = private_degree_sequence(&g, PrivacyParams::pure(epsilon), &mut rng);
        let err = (rel.edge_count() - truth).abs();
        assert!(err < 4.0 * sigma, "error {err} exceeds 4 sigma ({})", 4.0 * sigma);
        // And the isotonic projection indeed preserves the degree sum.
        let noisy_sum: f64 = rel.noisy_degrees.iter().sum();
        let fitted_sum: f64 = rel.degrees.iter().sum();
        assert!((noisy_sum - fitted_sum).abs() < 1e-6);
    }

    #[test]
    fn statistics_are_exact_for_noiseless_sequences() {
        // Feeding an already-sorted integer degree sequence with enormous epsilon reproduces the
        // deterministic formulas of Fact 4.6.
        let sorted = vec![1.0, 1.0, 2.0, 3.0, 5.0];
        let mut rng = StdRng::seed_from_u64(9);
        let rel = private_degree_sequence_from_sorted(&sorted, PrivacyParams::pure(1e12), &mut rng);
        assert!((rel.edge_count() - 6.0).abs() < 1e-6);
        // H = 0.5 * (0 + 0 + 2 + 6 + 20) = 14, T = (0 + 0 + 0 + 6 + 60)/6 = 11.
        assert!((rel.hairpin_count() - 14.0).abs() < 1e-6);
        assert!((rel.tripin_count() - 11.0).abs() < 1e-6);
    }

    #[test]
    fn smaller_epsilon_means_noisier_release() {
        let g = star(50);
        let mut truth: Vec<f64> = g.degrees().iter().map(|&d| d as f64).collect();
        truth.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let reps = 30;
        let mut err_tight = 0.0;
        let mut err_loose = 0.0;
        for seed in 0..reps {
            let mut rng1 = StdRng::seed_from_u64(1000 + seed);
            let mut rng2 = StdRng::seed_from_u64(2000 + seed);
            err_tight +=
                private_degree_sequence(&g, PrivacyParams::pure(10.0), &mut rng1).l2_error(&truth);
            err_loose +=
                private_degree_sequence(&g, PrivacyParams::pure(0.05), &mut rng2).l2_error(&truth);
        }
        assert!(
            err_loose > err_tight,
            "expected more error at small epsilon: tight {err_tight} loose {err_loose}"
        );
    }

    #[test]
    fn release_is_reproducible_given_a_seed() {
        let g = star(20);
        let a =
            private_degree_sequence(&g, PrivacyParams::pure(0.5), &mut StdRng::seed_from_u64(42));
        let b =
            private_degree_sequence(&g, PrivacyParams::pure(0.5), &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_isotonic_matches_the_sequential_reference() {
        // The block-parallel pass must reproduce the element-at-a-time projection up to float
        // associativity, on inputs long enough to span several chunks with pooled runs crossing
        // the chunk seams.
        let mut rng = StdRng::seed_from_u64(11);
        let noise = LaplaceNoise::new(20.0);
        let noisy: Vec<f64> = (0..5 * ISOTONIC_CHUNK + 37)
            .map(|i| (i as f64).sqrt() + noise.sample(&mut rng))
            .collect();
        let reference = isotonic_increasing(&noisy);
        let par = isotonic_increasing_par(&noisy, &Executor::new(4));
        assert_eq!(par.len(), reference.len());
        assert!(par.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        for (i, (a, b)) in par.iter().zip(&reference).enumerate() {
            assert!((a - b).abs() < 1e-9, "index {i}: parallel {a} vs sequential {b}");
        }
        // The projection preserves the sum whichever way it is computed.
        assert!((par.iter().sum::<f64>() - noisy.iter().sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn parallel_isotonic_is_bit_identical_for_all_thread_counts() {
        let mut rng = StdRng::seed_from_u64(12);
        let noise = LaplaceNoise::new(5.0);
        let noisy: Vec<f64> =
            (0..6000).map(|i| (i as f64) * 0.01 + noise.sample(&mut rng)).collect();
        let reference = isotonic_increasing_par(&noisy, &Executor::sequential());
        for threads in [2usize, 8] {
            let got = isotonic_increasing_par(&noisy, &Executor::new(threads));
            assert_eq!(got.len(), reference.len());
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_release_is_invariant_under_the_thread_knob() {
        let g = preferential_attachment(3000, 3, &mut StdRng::seed_from_u64(13));
        let release = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(14);
            private_degree_sequence_par(
                &g,
                PrivacyParams::pure(0.1),
                &mut rng,
                &Executor::new(threads),
            )
        };
        let reference = release(1);
        assert!(reference.degrees.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        for threads in [2usize, 8] {
            assert_eq!(release(threads), reference, "threads {threads}");
        }
    }

    #[test]
    fn empty_graph_release_is_near_zero() {
        let g = Graph::empty(5);
        let mut rng = StdRng::seed_from_u64(10);
        let rel = private_degree_sequence(&g, PrivacyParams::pure(1e6), &mut rng);
        assert!(rel.edge_count().abs() < 1e-3);
    }
}
