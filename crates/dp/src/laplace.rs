//! The Laplace distribution and the global-sensitivity Laplace mechanism.
//!
//! Theorem 4.5 (Dwork, McSherry, Nissim, Smith 2006): releasing `Q(G) + Lap(GS_Q / ε)^ℓ`
//! satisfies `(ε, 0)`-differential privacy for a length-`ℓ` query `Q` with global sensitivity
//! `GS_Q`. Laplace sampling is implemented by inverse-CDF transform so that only the uniform
//! primitives of `rand` are needed.

use rand::Rng;

/// A zero-mean Laplace distribution with the given scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceNoise {
    scale: f64,
}

impl LaplaceNoise {
    /// Creates a Laplace distribution with mean zero and scale `scale`.
    ///
    /// # Panics
    /// Panics if the scale is negative or not finite. A zero scale is permitted and produces a
    /// point mass at zero, which is convenient for "no-noise" baselines in ablations.
    pub fn new(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "Laplace scale must be non-negative, got {scale}"
        );
        LaplaceNoise { scale }
    }

    /// The scale parameter `b` (variance is `2b²`).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draws one sample via the inverse CDF: for `u ~ Uniform(-½, ½)`,
    /// `x = -b·sign(u)·ln(1 - 2|u|)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.scale == 0.0 {
            return 0.0;
        }
        let u: f64 = rng.gen::<f64>() - 0.5;
        -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Draws a vector of `n` independent samples.
    pub fn sample_vec<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.scale == 0.0 {
            return if x == 0.0 { f64::INFINITY } else { 0.0 };
        }
        (-(x.abs()) / self.scale).exp() / (2.0 * self.scale)
    }
}

/// Convenience wrapper: one sample of `Lap(scale)`.
pub fn sample_laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    LaplaceNoise::new(scale).sample(rng)
}

/// The Laplace mechanism of Theorem 4.5: perturbs each answer of the query vector `answers`
/// (whose global sensitivity is `global_sensitivity`) with independent `Lap(GS/ε)` noise.
///
/// # Panics
/// Panics if `epsilon <= 0` or `global_sensitivity < 0`.
// lint:sanitizer
pub fn laplace_mechanism<R: Rng + ?Sized>(
    answers: &[f64],
    global_sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
    assert!(global_sensitivity >= 0.0, "global sensitivity must be non-negative");
    let noise = LaplaceNoise::new(global_sensitivity / epsilon);
    answers.iter().map(|&a| a + noise.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_scale_is_a_point_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        let noise = LaplaceNoise::new(0.0);
        for _ in 0..100 {
            assert_eq!(noise.sample(&mut rng), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scale_is_rejected() {
        let _ = LaplaceNoise::new(-1.0);
    }

    #[test]
    fn sample_mean_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let noise = LaplaceNoise::new(2.0);
        let n = 50_000;
        let mean: f64 = noise.sample_vec(n, &mut rng).iter().sum::<f64>() / n as f64;
        // Standard error of the mean is sqrt(2)*scale/sqrt(n) ≈ 0.0126; allow 5 sigma.
        assert!(mean.abs() < 0.07, "mean {mean}");
    }

    #[test]
    fn sample_variance_matches_two_b_squared() {
        let mut rng = StdRng::seed_from_u64(3);
        let scale = 1.5;
        let noise = LaplaceNoise::new(scale);
        let n = 50_000;
        let samples = noise.sample_vec(n, &mut rng);
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let expected = 2.0 * scale * scale;
        assert!((var - expected).abs() / expected < 0.1, "var {var} expected {expected}");
    }

    #[test]
    fn samples_are_symmetric_about_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let noise = LaplaceNoise::new(1.0);
        let n = 50_000;
        let positives = noise.sample_vec(n, &mut rng).iter().filter(|&&x| x > 0.0).count();
        let frac = positives as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "positive fraction {frac}");
    }

    #[test]
    fn tail_mass_decays_exponentially() {
        // P(|X| > t) = exp(-t / b); check the empirical fraction at t = 3b.
        let mut rng = StdRng::seed_from_u64(5);
        let noise = LaplaceNoise::new(1.0);
        let n = 100_000;
        let beyond = noise.sample_vec(n, &mut rng).iter().filter(|&&x| x.abs() > 3.0).count();
        let frac = beyond as f64 / n as f64;
        let expected = (-3.0f64).exp();
        assert!((frac - expected).abs() < 0.01, "tail fraction {frac} expected {expected}");
    }

    #[test]
    fn pdf_integrates_to_one_numerically() {
        let noise = LaplaceNoise::new(0.7);
        let dx = 0.001;
        let total: f64 = (-20_000..20_000).map(|i| noise.pdf(i as f64 * dx) * dx).sum();
        assert!((total - 1.0).abs() < 1e-3, "integral {total}");
    }

    #[test]
    fn pdf_is_maximal_at_zero_and_symmetric() {
        let noise = LaplaceNoise::new(1.3);
        assert!(noise.pdf(0.0) >= noise.pdf(0.5));
        assert!((noise.pdf(2.0) - noise.pdf(-2.0)).abs() < 1e-15);
    }

    #[test]
    fn mechanism_adds_noise_with_the_right_scale() {
        let mut rng = StdRng::seed_from_u64(6);
        let answers = vec![100.0; 20_000];
        let noisy = laplace_mechanism(&answers, 2.0, 0.5, &mut rng);
        // Noise scale should be 4.0, so variance 32.
        let residuals: Vec<f64> = noisy.iter().map(|x| x - 100.0).collect();
        let var: f64 = residuals.iter().map(|x| x * x).sum::<f64>() / residuals.len() as f64;
        assert!((var - 32.0).abs() / 32.0 < 0.1, "var {var}");
    }

    #[test]
    fn mechanism_preserves_query_length() {
        let mut rng = StdRng::seed_from_u64(7);
        let noisy = laplace_mechanism(&[1.0, 2.0, 3.0], 1.0, 1.0, &mut rng);
        assert_eq!(noisy.len(), 3);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn mechanism_rejects_non_positive_epsilon() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = laplace_mechanism(&[1.0], 1.0, 0.0, &mut rng);
    }

    #[test]
    fn mechanism_is_reproducible_with_a_seeded_rng() {
        let a = laplace_mechanism(&[5.0, 6.0], 1.0, 0.1, &mut StdRng::seed_from_u64(9));
        let b = laplace_mechanism(&[5.0, 6.0], 1.0, 0.1, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_privacy_ratio_is_bounded_for_counting_query() {
        // A crude but meaningful check of the DP guarantee itself: for a counting query with
        // sensitivity 1 and neighbouring answers 10 and 11, the histogram of mechanism outputs
        // over bins should have likelihood ratios bounded by exp(epsilon) (up to sampling error).
        let epsilon = 0.8;
        let n = 200_000;
        let mut rng = StdRng::seed_from_u64(10);
        let noise = LaplaceNoise::new(1.0 / epsilon);
        let mut hist_a = vec![0usize; 40];
        let mut hist_b = vec![0usize; 40];
        for _ in 0..n {
            let xa = 10.0 + noise.sample(&mut rng);
            let xb = 11.0 + noise.sample(&mut rng);
            let bin_a = ((xa - 0.0).clamp(0.0, 19.9) * 2.0) as usize;
            let bin_b = ((xb - 0.0).clamp(0.0, 19.9) * 2.0) as usize;
            hist_a[bin_a] += 1;
            hist_b[bin_b] += 1;
        }
        let bound = (epsilon.exp()) * 1.25; // generous slack for sampling error
        for bin in 0..40 {
            let (pa, pb) = (hist_a[bin] as f64 / n as f64, hist_b[bin] as f64 / n as f64);
            if pa > 0.005 && pb > 0.005 {
                assert!(pa / pb < bound && pb / pa < bound, "bin {bin}: {pa} vs {pb}");
            }
        }
    }
}
