//! `kronpriv-skg` — the stochastic Kronecker graph (SKG) model of Leskovec et al., as used by
//! the paper (Section 3).
//!
//! The model is parametrised by a small *initiator* probability matrix `Θ` (the paper and this
//! reproduction use the symmetric 2×2 case `Θ = [a b; b c]` with `0 ≤ c ≤ a ≤ 1`, `b ∈ [0, 1]`).
//! Its `k`-th Kronecker power `P = Θ^[k]` assigns every ordered node pair `(u, v)` of a
//! `2^k`-node graph a probability, and a graph is *realized* by flipping an independent coin per
//! pair. Self-loops are removed and the adjacency is symmetrised (Section 3.2), giving the
//! simple undirected graphs that the estimators consume.
//!
//! This crate provides:
//!
//! * [`initiator`] — initiator matrices, per-pair edge probabilities, dense Kronecker powers,
//! * [`moments`] — the closed-form expected counts of edges, hairpins, triangles and tripins
//!   under the model (Gleich & Owen's Equation 1, reproduced as Equation (1) in the paper),
//!   which the moment-matching estimators equate with observed counts,
//! * [`sample`] — graph realization, both the exact per-pair Bernoulli sampler and the fast
//!   recursive edge-placement sampler used for large graphs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod initiator;
pub mod moments;
pub mod sample;

pub use initiator::Initiator2;
pub use moments::ExpectedMoments;
pub use sample::{sample_exact, sample_fast, SamplerOptions};
