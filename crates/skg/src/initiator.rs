//! Initiator matrices and Kronecker powers.
//!
//! Definition 3.4 of the paper: an `N1 × N1` probability matrix `Θ` whose `k`-th Kronecker power
//! `P = Θ^[k]` encodes a distribution over graphs on `N1^k` nodes, with `P_{uv}` the probability
//! of the edge `(u, v)`. For `N1 = 2`, node indices decompose into `k` base-2 digits and the
//! entry probability is the product of initiator entries selected by the digit pairs — which is
//! how [`Initiator2::edge_probability`] evaluates `P_{uv}` in `O(k)` without materialising the
//! `2^k × 2^k` matrix.

use kronpriv_json::impl_json_struct;

/// A symmetric 2×2 stochastic Kronecker initiator `[a b; b c]`.
///
/// The paper (following Gleich & Owen) restricts attention to `0 ≤ c ≤ a ≤ 1` and `b ∈ [0, 1]`;
/// [`Initiator2::new`] enforces the range constraints and [`Initiator2::canonicalized`] reorders
/// `a` and `c` so that `a ≥ c` (the two orderings describe isomorphic models).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Initiator2 {
    /// Probability of an edge inside the "core" block.
    pub a: f64,
    /// Probability of an edge between the two blocks.
    pub b: f64,
    /// Probability of an edge inside the "periphery" block.
    pub c: f64,
}

impl_json_struct!(Initiator2 { a, b, c });

impl Initiator2 {
    /// Creates an initiator, validating that every entry lies in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if any parameter is outside `[0, 1]` or not finite.
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        for (name, v) in [("a", a), ("b", b), ("c", c)] {
            assert!(
                v.is_finite() && (0.0..=1.0).contains(&v),
                "initiator parameter {name}={v} must lie in [0,1]"
            );
        }
        Initiator2 { a, b, c }
    }

    /// Creates an initiator after clamping each entry into `[0, 1]`. Useful when an optimizer
    /// proposes slightly out-of-range iterates.
    pub fn clamped(a: f64, b: f64, c: f64) -> Self {
        Initiator2 { a: a.clamp(0.0, 1.0), b: b.clamp(0.0, 1.0), c: c.clamp(0.0, 1.0) }
    }

    /// Returns the same model with `a ≥ c` (swapping `a` and `c` if needed), the canonical form
    /// used when reporting estimates (Table 1 lists parameters with `a ≥ c`).
    pub fn canonicalized(&self) -> Self {
        if self.a >= self.c {
            *self
        } else {
            Initiator2 { a: self.c, b: self.b, c: self.a }
        }
    }

    /// The parameters as an `[a, b, c]` array.
    pub fn as_array(&self) -> [f64; 3] {
        [self.a, self.b, self.c]
    }

    /// Builds an initiator from an `[a, b, c]` array (clamping into range).
    pub fn from_array(p: [f64; 3]) -> Self {
        Self::clamped(p[0], p[1], p[2])
    }

    /// Number of nodes of the order-`k` Kronecker graph: `2^k`.
    pub fn node_count(&self, k: u32) -> usize {
        1usize << k
    }

    /// Probability `P_{uv}` of the ordered pair `(u, v)` under `Θ^[k]`, evaluated digit by digit
    /// in `O(k)`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is not a valid node index for order `k`.
    pub fn edge_probability(&self, k: u32, u: usize, v: usize) -> f64 {
        let n = self.node_count(k);
        assert!(u < n && v < n, "node index out of range for k={k}");
        let m = [[self.a, self.b], [self.b, self.c]];
        let mut p = 1.0;
        for bit in 0..k {
            let ui = (u >> bit) & 1;
            let vi = (v >> bit) & 1;
            p *= m[ui][vi];
        }
        p
    }

    /// Sum of all entries of `Θ`, i.e. `a + 2b + c`. The sum of all entries of `Θ^[k]` is this
    /// value raised to the `k`-th power — the expected number of directed edges (loops included).
    pub fn entry_sum(&self) -> f64 {
        self.a + 2.0 * self.b + self.c
    }

    /// Sum of the diagonal entries, `a + c`; its `k`-th power is the expected number of
    /// self-loops of the directed realization.
    pub fn diagonal_sum(&self) -> f64 {
        self.a + self.c
    }

    /// Materialises the dense `k`-th Kronecker power as a row-major `2^k × 2^k` matrix of edge
    /// probabilities. Only sensible for small `k` (testing and tiny examples).
    ///
    /// # Panics
    /// Panics if `k > 12` (the dense matrix would exceed 16M entries).
    pub fn dense_power(&self, k: u32) -> Vec<Vec<f64>> {
        assert!(k <= 12, "dense_power is only supported for k <= 12");
        let n = self.node_count(k);
        (0..n).map(|u| (0..n).map(|v| self.edge_probability(k, u, v)).collect()).collect()
    }

    /// Euclidean distance between two parameter vectors, used to compare estimates against the
    /// generating parameters in the synthetic-recovery experiments.
    pub fn distance(&self, other: &Initiator2) -> f64 {
        let d = [self.a - other.a, self.b - other.b, self.c - other.c];
        (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
    }
}

impl std::fmt::Display for Initiator2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.4} {:.4}; {:.4} {:.4}]", self.a, self.b, self.b, self.c)
    }
}

/// A general square initiator matrix of arbitrary size, provided for experimentation with
/// `N1 > 2` model selection (Section 3.3 discusses why the paper fixes `N1 = 2`).
#[derive(Debug, Clone, PartialEq)]
pub struct InitiatorMatrix {
    size: usize,
    entries: Vec<f64>,
}

impl_json_struct!(InitiatorMatrix { size, entries });

impl InitiatorMatrix {
    /// Creates an initiator from a row-major list of entries.
    ///
    /// # Panics
    /// Panics if the number of entries is not a perfect square of `size`, or any entry is
    /// outside `[0, 1]`.
    pub fn new(size: usize, entries: Vec<f64>) -> Self {
        assert_eq!(entries.len(), size * size, "expected {}x{} entries", size, size);
        for &e in &entries {
            assert!((0.0..=1.0).contains(&e), "initiator entry {e} must lie in [0,1]");
        }
        InitiatorMatrix { size, entries }
    }

    /// The initiator dimension `N1`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Entry `(i, j)` of the initiator.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.entries[i * self.size + j]
    }

    /// Number of nodes of the order-`k` graph: `N1^k`.
    pub fn node_count(&self, k: u32) -> usize {
        self.size.pow(k)
    }

    /// Probability `P_{uv}` of the ordered pair under the `k`-th Kronecker power, evaluated by
    /// decomposing the indices into base-`N1` digits.
    pub fn edge_probability(&self, k: u32, u: usize, v: usize) -> f64 {
        let n = self.node_count(k);
        assert!(u < n && v < n, "node index out of range for k={k}");
        let (mut u, mut v) = (u, v);
        let mut p = 1.0;
        for _ in 0..k {
            p *= self.get(u % self.size, v % self.size);
            u /= self.size;
            v /= self.size;
        }
        p
    }

    /// Converts a symmetric 2×2 initiator into the general representation.
    pub fn from_initiator2(theta: &Initiator2) -> Self {
        InitiatorMatrix::new(2, vec![theta.a, theta.b, theta.b, theta.c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn new_accepts_valid_parameters() {
        let t = Initiator2::new(0.99, 0.45, 0.25);
        assert_eq!(t.as_array(), [0.99, 0.45, 0.25]);
    }

    #[test]
    #[should_panic(expected = "must lie in [0,1]")]
    fn new_rejects_out_of_range_parameters() {
        let _ = Initiator2::new(1.2, 0.5, 0.3);
    }

    #[test]
    fn clamped_pulls_parameters_into_range() {
        let t = Initiator2::clamped(1.7, -0.3, 0.5);
        assert_eq!(t.as_array(), [1.0, 0.0, 0.5]);
    }

    #[test]
    fn canonicalized_orders_a_above_c() {
        let t = Initiator2::new(0.2, 0.5, 0.9).canonicalized();
        assert_eq!(t.as_array(), [0.9, 0.5, 0.2]);
        // Already canonical stays untouched.
        let u = Initiator2::new(0.9, 0.5, 0.2).canonicalized();
        assert_eq!(u.as_array(), [0.9, 0.5, 0.2]);
    }

    #[test]
    fn node_count_is_power_of_two() {
        let t = Initiator2::new(0.5, 0.5, 0.5);
        assert_eq!(t.node_count(0), 1);
        assert_eq!(t.node_count(3), 8);
        assert_eq!(t.node_count(14), 16384);
    }

    #[test]
    fn edge_probability_at_k1_is_the_initiator_entry() {
        let t = Initiator2::new(0.9, 0.4, 0.2);
        assert_eq!(t.edge_probability(1, 0, 0), 0.9);
        assert_eq!(t.edge_probability(1, 0, 1), 0.4);
        assert_eq!(t.edge_probability(1, 1, 0), 0.4);
        assert_eq!(t.edge_probability(1, 1, 1), 0.2);
    }

    #[test]
    fn edge_probability_is_product_over_digits() {
        let t = Initiator2::new(0.9, 0.4, 0.2);
        // u = 0b10, v = 0b01: digits (0,1) and (1,0) -> b * b.
        assert!((t.edge_probability(2, 0b10, 0b01) - 0.16).abs() < 1e-12);
        // u = v = 0b11: c * c.
        assert!((t.edge_probability(2, 3, 3) - 0.04).abs() < 1e-12);
        // u = 0, v = 0: a * a.
        assert!((t.edge_probability(2, 0, 0) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn edge_probability_is_symmetric_for_symmetric_initiator() {
        let t = Initiator2::new(0.99, 0.45, 0.25);
        for u in 0..8 {
            for v in 0..8 {
                let p = t.edge_probability(3, u, v);
                let q = t.edge_probability(3, v, u);
                assert!((p - q).abs() < 1e-15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_probability_rejects_out_of_range_nodes() {
        let t = Initiator2::new(0.5, 0.5, 0.5);
        let _ = t.edge_probability(2, 4, 0);
    }

    #[test]
    fn dense_power_entries_sum_to_entry_sum_power() {
        let t = Initiator2::new(0.9, 0.4, 0.2);
        let k = 4;
        let dense = t.dense_power(k);
        let total: f64 = dense.iter().flatten().sum();
        assert!((total - t.entry_sum().powi(k as i32)).abs() < 1e-9);
        let diag: f64 = (0..t.node_count(k)).map(|i| dense[i][i]).sum();
        assert!((diag - t.diagonal_sum().powi(k as i32)).abs() < 1e-9);
    }

    #[test]
    fn dense_power_agrees_with_explicit_kronecker_product() {
        // Check Θ^[2] against the textbook Kronecker product of Θ with itself.
        let t = Initiator2::new(0.8, 0.3, 0.1);
        let m = [[0.8, 0.3], [0.3, 0.1]];
        let dense = t.dense_power(2);
        for u in 0..4 {
            for v in 0..4 {
                // Definition 3.1: C[i*n+p][j*m+q] = A[i][j] * B[p][q].
                let expected = m[u / 2][v / 2] * m[u % 2][v % 2];
                // Our digit order is little-endian; the resulting matrices are equal up to a
                // permutation that maps (hi,lo) -> (lo,hi), which is an isomorphism of the model.
                let permuted_u = (u % 2) * 2 + u / 2;
                let permuted_v = (v % 2) * 2 + v / 2;
                assert!((dense[permuted_u][permuted_v] - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn distance_is_a_metric_on_examples() {
        let x = Initiator2::new(0.9, 0.5, 0.1);
        let y = Initiator2::new(0.8, 0.4, 0.3);
        assert_eq!(x.distance(&x), 0.0);
        assert!((x.distance(&y) - y.distance(&x)).abs() < 1e-15);
        assert!(x.distance(&y) > 0.0);
    }

    #[test]
    fn display_renders_matrix_form() {
        let t = Initiator2::new(0.99, 0.45, 0.25);
        assert_eq!(format!("{t}"), "[0.9900 0.4500; 0.4500 0.2500]");
    }

    #[test]
    fn general_initiator_matches_initiator2() {
        let t = Initiator2::new(0.9, 0.4, 0.2);
        let g = InitiatorMatrix::from_initiator2(&t);
        assert_eq!(g.size(), 2);
        for k in 1..=4u32 {
            for u in 0..t.node_count(k) {
                for v in 0..t.node_count(k) {
                    assert!(
                        (t.edge_probability(k, u, v) - g.edge_probability(k, u, v)).abs() < 1e-15
                    );
                }
            }
        }
    }

    #[test]
    fn three_by_three_initiator_probability() {
        let g = InitiatorMatrix::new(3, vec![0.9, 0.2, 0.1, 0.2, 0.8, 0.3, 0.1, 0.3, 0.7]);
        assert_eq!(g.node_count(2), 9);
        // u = 4 = (1,1) base 3, v = 8 = (2,2): entry(1,2) * entry(1,2) = 0.3 * 0.3.
        assert!((g.edge_probability(2, 4, 8) - 0.09).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "expected 2x2 entries")]
    fn general_initiator_rejects_wrong_entry_count() {
        let _ = InitiatorMatrix::new(2, vec![0.1, 0.2, 0.3]);
    }

    #[test]
    fn json_round_trip() {
        let t = Initiator2::new(0.99, 0.45, 0.25);
        let json = kronpriv_json::to_string(&t);
        let back: Initiator2 = kronpriv_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    // Former proptest properties, now deterministic seeded loops.
    #[test]
    fn probabilities_are_valid_and_symmetric() {
        let mut rng = StdRng::seed_from_u64(0x1417_7001);
        for _ in 0..256 {
            let (a, b, c) =
                (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let (u, v) = (rng.gen_range(0..16usize), rng.gen_range(0..16usize));
            let t = Initiator2::new(a, b, c);
            let p = t.edge_probability(4, u, v);
            assert!((0.0..=1.0).contains(&p));
            assert!((p - t.edge_probability(4, v, u)).abs() < 1e-15);
        }
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(0x1417_7002);
        for _ in 0..256 {
            let (a, b, c) =
                (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let t = Initiator2::new(a, b, c).canonicalized();
            assert!(t.a >= t.c);
            assert_eq!(t.canonicalized(), t);
        }
    }
}
