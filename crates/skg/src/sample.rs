//! Realizing graphs from the stochastic Kronecker model.
//!
//! Definition 3.4: the order-`k` probability matrix `P = Θ^[k]` is realized by including each
//! edge independently with its probability; Section 3.2 then removes self-loops and symmetrises.
//! For a *symmetric* initiator the symmetrisation rule of the paper (keep the lower-triangular
//! directed entries) is equivalent to flipping one coin per unordered pair `{u, v}` with bias
//! `P_{uv}`, which is what both samplers here do.
//!
//! Two samplers are provided:
//!
//! * [`sample_exact`] — visits all `C(2^k, 2)` pairs. Exact but `O(4^k)`; used for small `k`
//!   (tests, Monte-Carlo validation of the closed-form moments).
//! * [`sample_fast`] — the standard "edge placement" generator used by Leskovec et al.'s
//!   `krongen`: it draws approximately the expected number of edges and places each one by
//!   descending the `k` levels of Kronecker recursion, choosing a quadrant at each level with
//!   probability proportional to the initiator entries. Duplicates and self-loops are rejected.
//!   Runtime is `O(E · k)`, which is what makes the `2^14`-node experiments practical. The
//!   per-pair marginals are approximately — not exactly — Bernoulli(`P_{uv}`); tests check that
//!   its aggregate statistics agree with the exact sampler and the closed-form moments.

use crate::initiator::Initiator2;
use crate::moments::expected_edges;
use kronpriv_graph::{Graph, GraphBuilder};
use rand::Rng;

/// Options for the fast sampler.
#[derive(Debug, Clone, Copy)]
pub struct SamplerOptions {
    /// Multiplier applied to the expected edge count when deciding how many placement attempts
    /// to make. Values slightly above 1 compensate for duplicate placements that get rejected.
    pub oversample: f64,
    /// If true, the number of edges is drawn from a Poisson-like distribution around the
    /// expectation (via a normal approximation); if false, exactly the rounded expectation is
    /// targeted.
    pub randomize_edge_count: bool,
}

impl Default for SamplerOptions {
    fn default() -> Self {
        SamplerOptions { oversample: 1.0, randomize_edge_count: true }
    }
}

/// Exact realization of the order-`k` stochastic Kronecker graph: one independent coin per
/// unordered node pair.
///
/// # Panics
/// Panics if `k > 13` (the pair loop would exceed ~33M iterations; use [`sample_fast`]).
pub fn sample_exact<R: Rng + ?Sized>(theta: &Initiator2, k: u32, rng: &mut R) -> Graph {
    assert!(k <= 13, "sample_exact is quadratic in node count; use sample_fast for k > 13");
    let n = theta.node_count(k);
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = theta.edge_probability(k, u, v);
            if p > 0.0 && rng.gen::<f64>() < p {
                builder.add_edge(u as u32, v as u32);
            }
        }
    }
    builder.build()
}

/// Fast realization of the order-`k` stochastic Kronecker graph by recursive edge placement.
pub fn sample_fast<R: Rng + ?Sized>(
    theta: &Initiator2,
    k: u32,
    options: &SamplerOptions,
    rng: &mut R,
) -> Graph {
    let n = theta.node_count(k);
    let expected = expected_edges(theta, k).max(0.0);
    let target = if options.randomize_edge_count {
        // Normal approximation to Poisson(expected); adequate for the graph sizes involved.
        let std = expected.sqrt();
        (expected + std * standard_normal(rng)).round().max(0.0) as usize
    } else {
        expected.round() as usize
    };
    let target = target.min(n * n.saturating_sub(1) / 2);

    let weights = quadrant_weights(theta);
    // The builder deduplicates internally (and reports whether an insertion was new), so it is
    // the only edge store — no shadow `HashSet`, halving peak memory per sampled graph.
    let mut builder = GraphBuilder::new(n);
    // Cap the total number of attempts so adversarial parameters (e.g. all mass on the
    // diagonal, which only produces rejected self-loops) cannot loop forever.
    let max_attempts = ((target as f64 * options.oversample.max(1.0)) as usize).max(16) * 20;
    let mut attempts = 0usize;
    while builder.edge_count() < target && attempts < max_attempts {
        attempts += 1;
        let (u, v) = place_edge(&weights, k, rng);
        if u == v {
            continue;
        }
        builder.add_edge(u as u32, v as u32);
    }
    builder.build()
}

/// Cumulative quadrant weights `[a, a+b, a+2b, a+2b+c]` used for the recursive descent.
fn quadrant_weights(theta: &Initiator2) -> [f64; 4] {
    let total = theta.entry_sum();
    if total <= 0.0 {
        // Degenerate all-zero initiator: weights never get used because the expected edge count
        // is zero, but keep them well-formed.
        return [0.25, 0.5, 0.75, 1.0];
    }
    [theta.a / total, (theta.a + theta.b) / total, (theta.a + 2.0 * theta.b) / total, 1.0]
}

/// Descends `k` levels of the Kronecker recursion, picking one of the four initiator quadrants
/// at each level, and returns the resulting ordered pair `(u, v)`.
fn place_edge<R: Rng + ?Sized>(cumulative: &[f64; 4], k: u32, rng: &mut R) -> (usize, usize) {
    let mut u = 0usize;
    let mut v = 0usize;
    for _ in 0..k {
        let r: f64 = rng.gen();
        // Quadrants in row-major order: (0,0)=a, (0,1)=b, (1,0)=b, (1,1)=c.
        let (du, dv) = if r < cumulative[0] {
            (0, 0)
        } else if r < cumulative[1] {
            (0, 1)
        } else if r < cumulative[2] {
            (1, 0)
        } else {
            (1, 1)
        };
        u = (u << 1) | du;
        v = (v << 1) | dv;
    }
    (u, v)
}

/// Samples a standard normal via Box–Muller. Kept private: only the edge-count jitter needs it.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::ExpectedMoments;
    use kronpriv_graph::MatchingStatistics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_sampler_respects_node_count() {
        let theta = Initiator2::new(0.9, 0.5, 0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let g = sample_exact(&theta, 6, &mut rng);
        assert_eq!(g.node_count(), 64);
    }

    #[test]
    fn exact_sampler_with_all_ones_gives_complete_graph() {
        let theta = Initiator2::new(1.0, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let g = sample_exact(&theta, 4, &mut rng);
        assert_eq!(g.edge_count(), 16 * 15 / 2);
    }

    #[test]
    fn exact_sampler_with_identity_initiator_gives_empty_graph() {
        let theta = Initiator2::new(1.0, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let g = sample_exact(&theta, 6, &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn exact_sampler_edge_count_tracks_expectation() {
        let theta = Initiator2::new(0.99, 0.45, 0.25);
        let k = 9;
        let expected = expected_edges(&theta, k);
        let mut rng = StdRng::seed_from_u64(4);
        let mut total = 0.0;
        let reps = 5;
        for _ in 0..reps {
            total += sample_exact(&theta, k, &mut rng).edge_count() as f64;
        }
        let mean = total / reps as f64;
        // Edge count is a sum of independent Bernoullis; 5 reps keep the standard error below
        // ~sqrt(expected/5), allow 6 sigma.
        let sigma = (expected / reps as f64).sqrt();
        assert!((mean - expected).abs() < 6.0 * sigma, "mean {mean} expected {expected}");
    }

    #[test]
    fn monte_carlo_moments_match_closed_forms() {
        // The strongest validation of Equation (1): average the observed (E, H, Δ, T) over many
        // exact realizations of a small graph and compare against the closed forms.
        let theta = Initiator2::new(0.8, 0.5, 0.3);
        let k = 5;
        let reps = 300;
        let mut rng = StdRng::seed_from_u64(5);
        let mut sums = [0.0f64; 4];
        for _ in 0..reps {
            let g = sample_exact(&theta, k, &mut rng);
            let s = MatchingStatistics::of_graph(&g).as_array();
            for i in 0..4 {
                sums[i] += s[i];
            }
        }
        let means: Vec<f64> = sums.iter().map(|s| s / reps as f64).collect();
        let expected = ExpectedMoments::of(&theta, k).as_array();
        for i in 0..4 {
            let rel = (means[i] - expected[i]).abs() / expected[i].max(1.0);
            assert!(
                rel < 0.1,
                "moment {i}: monte-carlo {} vs closed form {} (rel {rel})",
                means[i],
                expected[i]
            );
        }
    }

    #[test]
    fn fast_sampler_produces_requested_size() {
        let theta = Initiator2::new(0.99, 0.45, 0.25);
        let mut rng = StdRng::seed_from_u64(6);
        let g = sample_fast(&theta, 12, &SamplerOptions::default(), &mut rng);
        assert_eq!(g.node_count(), 4096);
        let expected = expected_edges(&theta, 12);
        let observed = g.edge_count() as f64;
        // Duplicate rejections make the fast sampler land slightly under the target; allow 15%.
        assert!(
            (observed - expected).abs() / expected < 0.15,
            "observed {observed} expected {expected}"
        );
    }

    #[test]
    fn fast_sampler_with_deterministic_count_is_reproducible() {
        let theta = Initiator2::new(0.9, 0.6, 0.2);
        let opts = SamplerOptions { oversample: 1.0, randomize_edge_count: false };
        let g1 = sample_fast(&theta, 10, &opts, &mut StdRng::seed_from_u64(7));
        let g2 = sample_fast(&theta, 10, &opts, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }

    #[test]
    fn fast_sampler_handles_zero_initiator() {
        let theta = Initiator2::new(0.0, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(8);
        let g = sample_fast(&theta, 8, &SamplerOptions::default(), &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn fast_sampler_handles_diagonal_only_initiator_without_hanging() {
        // All probability mass on loops: every placement is rejected; the attempt cap must stop
        // the loop and return a (nearly) empty graph.
        let theta = Initiator2::new(1.0, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let g = sample_fast(&theta, 8, &SamplerOptions::default(), &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn fast_and_exact_samplers_agree_on_degree_statistics() {
        // Compare average degree and wedge counts of the two samplers on a mid-sized graph.
        let theta = Initiator2::new(0.95, 0.55, 0.25);
        let k = 9;
        let reps = 4;
        let mut rng = StdRng::seed_from_u64(10);
        let mut exact_edges = 0.0;
        let mut fast_edges = 0.0;
        let mut exact_wedges = 0.0;
        let mut fast_wedges = 0.0;
        for _ in 0..reps {
            let ge = sample_exact(&theta, k, &mut rng);
            let gf = sample_fast(&theta, k, &SamplerOptions::default(), &mut rng);
            let se = MatchingStatistics::of_graph(&ge);
            let sf = MatchingStatistics::of_graph(&gf);
            exact_edges += se.edges;
            fast_edges += sf.edges;
            exact_wedges += se.hairpins;
            fast_wedges += sf.hairpins;
        }
        assert!(
            (exact_edges - fast_edges).abs() / exact_edges < 0.2,
            "edges: exact {exact_edges} fast {fast_edges}"
        );
        assert!(
            (exact_wedges - fast_wedges).abs() / exact_wedges < 0.35,
            "wedges: exact {exact_wedges} fast {fast_wedges}"
        );
    }

    #[test]
    fn sampled_graphs_are_simple() {
        let theta = Initiator2::new(0.99, 0.45, 0.25);
        let mut rng = StdRng::seed_from_u64(11);
        let g = sample_fast(&theta, 11, &SamplerOptions::default(), &mut rng);
        for u in g.nodes() {
            assert!(!g.neighbors(u).contains(&u), "self loop at {u}");
        }
        let degree_sum: usize = g.degrees().iter().sum();
        assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    #[should_panic(expected = "sample_exact is quadratic")]
    fn exact_sampler_rejects_large_k() {
        let theta = Initiator2::new(0.9, 0.5, 0.1);
        let mut rng = StdRng::seed_from_u64(12);
        let _ = sample_exact(&theta, 14, &mut rng);
    }
}
