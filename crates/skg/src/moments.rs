//! Closed-form expected feature counts under the stochastic Kronecker graph model.
//!
//! Equation (1) of the paper (due to Gleich & Owen) gives, for a symmetric 2×2 initiator
//! `Θ = [a b; b c]` raised to the `k`-th Kronecker power and realized as a simple undirected
//! graph (loops removed, adjacency symmetrised), the expected number of
//!
//! * edges `E[E]`,
//! * hairpins (wedges / 2-stars) `E[H]`,
//! * triangles `E[Δ]`,
//! * tripins (3-stars) `E[T]`.
//!
//! The moment-matching estimators pick the initiator whose expected counts are closest to the
//! (possibly privately perturbed) observed counts, so these four functions are the analytical
//! heart of the reproduction. Their correctness is checked in two ways: closed-form special
//! cases (`Θ = I` gives an empty graph, `Θ = 1` gives the complete graph) and Monte-Carlo
//! agreement with the exact sampler on small graphs (see `sample.rs` and the integration tests).

use crate::initiator::Initiator2;
use kronpriv_json::impl_json_struct;

/// Expected values of the four matching statistics under `Θ^[k]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpectedMoments {
    /// Expected number of undirected edges.
    pub edges: f64,
    /// Expected number of hairpins (wedges).
    pub hairpins: f64,
    /// Expected number of triangles.
    pub triangles: f64,
    /// Expected number of tripins (3-stars).
    pub tripins: f64,
}

impl_json_struct!(ExpectedMoments { edges, hairpins, triangles, tripins });

impl ExpectedMoments {
    /// Evaluates all four closed forms for initiator `theta` and Kronecker order `k`.
    pub fn of(theta: &Initiator2, k: u32) -> Self {
        ExpectedMoments {
            edges: expected_edges(theta, k),
            hairpins: expected_hairpins(theta, k),
            triangles: expected_triangles(theta, k),
            tripins: expected_tripins(theta, k),
        }
    }

    /// The moments as an `[E, H, Δ, T]` array (the order used by the fitting code).
    pub fn as_array(&self) -> [f64; 4] {
        [self.edges, self.hairpins, self.triangles, self.tripins]
    }
}

fn powk(x: f64, k: u32) -> f64 {
    x.powi(k as i32)
}

/// Expected number of undirected edges:
/// `E[E] = ½ [ (a + 2b + c)^k − (a + c)^k ]`.
pub fn expected_edges(theta: &Initiator2, k: u32) -> f64 {
    let (a, b, c) = (theta.a, theta.b, theta.c);
    0.5 * (powk(a + 2.0 * b + c, k) - powk(a + c, k))
}

/// Expected number of hairpins (2-stars):
/// `E[H] = ½ [ ((a+b)² + (b+c)²)^k − 2(a(a+b) + c(c+b))^k − (a² + 2b² + c²)^k + 2(a² + c²)^k ]`.
pub fn expected_hairpins(theta: &Initiator2, k: u32) -> f64 {
    let (a, b, c) = (theta.a, theta.b, theta.c);
    0.5 * (powk((a + b) * (a + b) + (b + c) * (b + c), k)
        - 2.0 * powk(a * (a + b) + c * (c + b), k)
        - powk(a * a + 2.0 * b * b + c * c, k)
        + 2.0 * powk(a * a + c * c, k))
}

/// Expected number of triangles:
/// `E[Δ] = ⅙ [ (a³ + 3b²(a+c) + c³)^k − 3(a(a²+b²) + c(b²+c²))^k + 2(a³ + c³)^k ]`.
pub fn expected_triangles(theta: &Initiator2, k: u32) -> f64 {
    let (a, b, c) = (theta.a, theta.b, theta.c);
    (powk(a * a * a + 3.0 * b * b * (a + c) + c * c * c, k)
        - 3.0 * powk(a * (a * a + b * b) + c * (b * b + c * c), k)
        + 2.0 * powk(a * a * a + c * c * c, k))
        / 6.0
}

/// Expected number of tripins (3-stars):
/// `E[T] = ⅙ [ ((a+b)³ + (b+c)³)^k − 3(a(a+b)² + c(b+c)²)^k
///             − 3(a³ + c³ + b(a²+c²) + b²(a+c) + 2b³)^k + 2(a³ + 2b³ + c³)^k
///             + 3(a³ + c³ + b²(a+c))^k + 6(a³ + c³ + b(a²+c²))^k − 6(a³ + c³)^k ]`.
///
/// Note on coefficients: the paper's Equation (1) prints the last two positive coefficients as
/// `+5` and `+4`. Deriving `E[T] = Σ_i E[C(d_i, 3)]` from the Kronecker row-sum identities (see
/// the enumeration tests below, which brute-force the expectation on small graphs) gives `+3`
/// for the `(a³+c³+b²(a+c))^k` term and `+6` for the `(a³+c³+b(a²+c²))^k` term — the printed
/// `5/4` split does not vanish at `k = 1` as it must (a two-node graph has no 3-stars). The two
/// versions agree whenever `b(a+c) = a² + c²`, which is presumably how the typo survived.
pub fn expected_tripins(theta: &Initiator2, k: u32) -> f64 {
    let (a, b, c) = (theta.a, theta.b, theta.c);
    let a3 = a * a * a;
    let b3 = b * b * b;
    let c3 = c * c * c;
    (powk((a + b).powi(3) + (b + c).powi(3), k)
        - 3.0 * powk(a * (a + b) * (a + b) + c * (b + c) * (b + c), k)
        - 3.0 * powk(a3 + c3 + b * (a * a + c * c) + b * b * (a + c) + 2.0 * b3, k)
        + 2.0 * powk(a3 + 2.0 * b3 + c3, k)
        + 3.0 * powk(a3 + c3 + b * b * (a + c), k)
        + 6.0 * powk(a3 + c3 + b * (a * a + c * c), k)
        - 6.0 * powk(a3 + c3, k))
        / 6.0
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the Σ_{u<v} notation being checked
mod tests {
    use super::*;

    fn binom(n: u64, k: u64) -> f64 {
        if k > n {
            return 0.0;
        }
        let mut acc = 1.0;
        for i in 0..k {
            acc = acc * (n - i) as f64 / (i + 1) as f64;
        }
        acc
    }

    #[test]
    fn identity_initiator_gives_empty_graph() {
        // Θ = I: the only positive-probability entries are loops, which are removed.
        let theta = Initiator2::new(1.0, 0.0, 1.0);
        for k in 1..=8 {
            let m = ExpectedMoments::of(&theta, k);
            assert!(m.edges.abs() < 1e-9, "k={k}: {m:?}");
            assert!(m.hairpins.abs() < 1e-9);
            assert!(m.triangles.abs() < 1e-9);
            assert!(m.tripins.abs() < 1e-9);
        }
    }

    #[test]
    fn all_ones_initiator_gives_complete_graph_counts() {
        // Θ = all-ones: every off-diagonal pair is an edge with probability 1, so the realized
        // graph is K_n with n = 2^k. Compare against the K_n subgraph-count formulas.
        let theta = Initiator2::new(1.0, 1.0, 1.0);
        for k in 1..=6 {
            let n = (1u64 << k) as f64;
            let m = ExpectedMoments::of(&theta, k);
            assert!((m.edges - n * (n - 1.0) / 2.0).abs() < 1e-6, "edges k={k}");
            assert!((m.hairpins - n * binom(n as u64 - 1, 2)).abs() < 1e-5, "hairpins k={k}");
            assert!((m.triangles - binom(n as u64, 3)).abs() < 1e-5, "triangles k={k}");
            assert!((m.tripins - n * binom(n as u64 - 1, 3)).abs() < 1e-4, "tripins k={k}");
        }
    }

    #[test]
    fn zero_initiator_gives_all_zero_moments() {
        let theta = Initiator2::new(0.0, 0.0, 0.0);
        let m = ExpectedMoments::of(&theta, 10);
        assert_eq!(m.as_array(), [0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn k_one_case_matches_direct_enumeration() {
        // For k = 1 the graph has two nodes; the only possible edge is {0, 1} with probability b.
        // Hence E[E] = b and all higher-order counts vanish.
        let theta = Initiator2::new(0.9, 0.4, 0.2);
        let m = ExpectedMoments::of(&theta, 1);
        assert!((m.edges - 0.4).abs() < 1e-12);
        assert!(m.hairpins.abs() < 1e-12);
        assert!(m.triangles.abs() < 1e-12);
        assert!(m.tripins.abs() < 1e-12);
    }

    #[test]
    fn k_two_edge_expectation_matches_enumeration() {
        // For k = 2 enumerate all C(4,2) pairs directly from the dense power and compare.
        let theta = Initiator2::new(0.8, 0.5, 0.3);
        let dense = theta.dense_power(2);
        let mut direct = 0.0;
        for u in 0..4 {
            for v in (u + 1)..4 {
                direct += dense[u][v];
            }
        }
        assert!((expected_edges(&theta, 2) - direct).abs() < 1e-12);
    }

    #[test]
    fn k_two_hairpin_expectation_matches_enumeration() {
        // H = Σ over unordered pairs of distinct edges sharing an endpoint. With independent
        // edges, E[H] = Σ_center Σ_{u<v, u≠center≠v} P(center,u) P(center,v).
        let theta = Initiator2::new(0.8, 0.5, 0.3);
        let dense = theta.dense_power(2);
        let n = 4usize;
        let mut direct = 0.0;
        for center in 0..n {
            for u in 0..n {
                for v in (u + 1)..n {
                    if u != center && v != center {
                        direct += dense[center][u] * dense[center][v];
                    }
                }
            }
        }
        assert!(
            (expected_hairpins(&theta, 2) - direct).abs() < 1e-12,
            "formula {} direct {}",
            expected_hairpins(&theta, 2),
            direct
        );
    }

    #[test]
    fn k_two_triangle_expectation_matches_enumeration() {
        let theta = Initiator2::new(0.8, 0.5, 0.3);
        let dense = theta.dense_power(2);
        let n = 4usize;
        let mut direct = 0.0;
        for u in 0..n {
            for v in (u + 1)..n {
                for w in (v + 1)..n {
                    direct += dense[u][v] * dense[v][w] * dense[u][w];
                }
            }
        }
        assert!(
            (expected_triangles(&theta, 2) - direct).abs() < 1e-12,
            "formula {} direct {}",
            expected_triangles(&theta, 2),
            direct
        );
    }

    #[test]
    fn k_two_tripin_expectation_matches_enumeration() {
        // T = Σ_center Σ over unordered triples of distinct neighbours of products of the three
        // incident edge probabilities.
        let theta = Initiator2::new(0.8, 0.5, 0.3);
        let dense = theta.dense_power(2);
        let n = 4usize;
        let mut direct = 0.0;
        for center in 0..n {
            for u in 0..n {
                for v in (u + 1)..n {
                    for w in (v + 1)..n {
                        if u != center && v != center && w != center {
                            direct += dense[center][u] * dense[center][v] * dense[center][w];
                        }
                    }
                }
            }
        }
        assert!(
            (expected_tripins(&theta, 2) - direct).abs() < 1e-12,
            "formula {} direct {}",
            expected_tripins(&theta, 2),
            direct
        );
    }

    #[test]
    fn k_three_all_moments_match_enumeration() {
        // Full brute-force enumeration on the 8-node graph for a generic parameter point.
        let theta = Initiator2::new(0.7, 0.45, 0.35);
        let dense = theta.dense_power(3);
        let n = 8usize;
        let (mut e, mut h, mut tri, mut t3) = (0.0, 0.0, 0.0, 0.0);
        for u in 0..n {
            for v in (u + 1)..n {
                e += dense[u][v];
            }
        }
        for center in 0..n {
            for u in 0..n {
                for v in (u + 1)..n {
                    if u != center && v != center {
                        h += dense[center][u] * dense[center][v];
                    }
                    for w in (v + 1)..n {
                        if u != center && v != center && w != center {
                            t3 += dense[center][u] * dense[center][v] * dense[center][w];
                        }
                    }
                }
            }
        }
        for u in 0..n {
            for v in (u + 1)..n {
                for w in (v + 1)..n {
                    tri += dense[u][v] * dense[v][w] * dense[u][w];
                }
            }
        }
        let m = ExpectedMoments::of(&theta, 3);
        assert!((m.edges - e).abs() < 1e-10, "edges {} vs {e}", m.edges);
        assert!((m.hairpins - h).abs() < 1e-10, "hairpins {} vs {h}", m.hairpins);
        assert!((m.triangles - tri).abs() < 1e-10, "triangles {} vs {tri}", m.triangles);
        assert!((m.tripins - t3).abs() < 1e-10, "tripins {} vs {t3}", m.tripins);
    }

    #[test]
    fn moments_grow_with_k() {
        let theta = Initiator2::new(0.99, 0.45, 0.25);
        let small = ExpectedMoments::of(&theta, 8);
        let large = ExpectedMoments::of(&theta, 12);
        assert!(large.edges > small.edges);
        assert!(large.hairpins > small.hairpins);
        assert!(large.triangles > small.triangles);
        assert!(large.tripins > small.tripins);
    }

    #[test]
    fn paper_synthetic_parameters_give_plausible_counts() {
        // The paper's synthetic graph: Θ = [0.99 0.45; 0.45 0.25], k = 14 (16384 nodes). The
        // expected edge count should be in the tens of thousands (same order as the real
        // networks it is compared against), not absurdly small or large.
        let theta = Initiator2::new(0.99, 0.45, 0.25);
        let m = ExpectedMoments::of(&theta, 14);
        assert!(m.edges > 10_000.0 && m.edges < 300_000.0, "edges {}", m.edges);
        assert!(m.triangles > 100.0, "triangles {}", m.triangles);
        assert!(m.hairpins > m.edges);
    }

    #[test]
    fn as_array_orders_e_h_delta_t() {
        let theta = Initiator2::new(0.9, 0.5, 0.3);
        let m = ExpectedMoments::of(&theta, 5);
        let arr = m.as_array();
        assert_eq!(arr[0], m.edges);
        assert_eq!(arr[1], m.hairpins);
        assert_eq!(arr[2], m.triangles);
        assert_eq!(arr[3], m.tripins);
    }
}
