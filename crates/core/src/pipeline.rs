//! High-level pipelines: run all three estimators on one graph, or perform the full private
//! synthetic-graph release of the paper's introduction (estimate privately, then sample).

use kronpriv_dp::PrivacyParams;
use kronpriv_estimate::{
    FittedInitiator, KronFitEstimator, KronFitOptions, KronMomEstimator, KronMomOptions,
    PrivateEstimate, PrivateEstimator, PrivateEstimatorOptions,
};
use kronpriv_graph::Graph;
use kronpriv_json::impl_json_struct;
use kronpriv_obs::ProgressSink;
use kronpriv_par::Executor;
use kronpriv_skg::sample::{sample_fast, SamplerOptions};
use rand::Rng;

/// A pipeline precondition violation, reported instead of a worker-thread panic.
///
/// The panicking entry points ([`release_synthetic_graph`], [`PrivateEstimator::fit`]) assert
/// these conditions; the `try_` forms ([`try_private_estimate`],
/// [`try_release_synthetic_graph`]) check them up front and return this error so callers such as
/// the HTTP server can map bad requests to 4xx responses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PipelineError {
    /// The input graph has no nodes or no edges, so no model can be estimated from it.
    EmptyGraph,
    /// `δ = 0` was supplied but the smooth-sensitivity triangle release requires `δ > 0`
    /// (select the degrees-only ablation to run with pure DP).
    DeltaRequired,
    /// The configured degree-budget fraction lies outside the open interval `(0, 1)`.
    InvalidBudgetFraction(
        /// The rejected fraction.
        f64,
    ),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::EmptyGraph => {
                write!(f, "the input graph is empty (no nodes or no edges)")
            }
            PipelineError::DeltaRequired => {
                write!(f, "the triangle release requires delta > 0 (or use degrees_only)")
            }
            PipelineError::InvalidBudgetFraction(frac) => {
                write!(f, "degree_budget_fraction must be in (0,1), got {frac}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Checks the graph-independent preconditions of Algorithm 1 — the single source of truth
/// shared by [`try_private_estimate`] and request validation in the HTTP server (which wants to
/// reject bad budgets/options with a 400 before a graph is ever materialised).
pub fn validate_estimator_inputs(
    params: PrivacyParams,
    options: &PrivateEstimatorOptions,
) -> Result<(), PipelineError> {
    let frac = options.degree_budget_fraction;
    if !(frac > 0.0 && frac < 1.0) {
        return Err(PipelineError::InvalidBudgetFraction(frac));
    }
    if params.delta == 0.0 && !options.degrees_only {
        return Err(PipelineError::DeltaRequired);
    }
    Ok(())
}

/// Fallible form of [`PrivateEstimator::fit`]: validates the pipeline preconditions and returns
/// an error instead of panicking. This is the entry point the server calls for `/api/estimate`.
pub fn try_private_estimate<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    options: &PrivateEstimatorOptions,
    rng: &mut R,
) -> Result<PrivateEstimate, PipelineError> {
    try_private_estimate_on(g, params, options, rng, &options.executor())
}

/// [`try_private_estimate`] on a caller-owned executor: every parallel stage borrows `exec`
/// instead of building a worker pool per request (`options.compute_threads` is ignored). Hosts
/// that serve many jobs — the HTTP server in particular — build one executor at startup and
/// pass it here.
pub fn try_private_estimate_on<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    options: &PrivateEstimatorOptions,
    rng: &mut R,
    exec: &Executor,
) -> Result<PrivateEstimate, PipelineError> {
    try_private_estimate_observed(g, params, options, rng, exec, &kronpriv_obs::NullSink)
}

/// [`try_private_estimate_on`] with typed progress reporting: stage boundary events flow into
/// `sink` (see [`PrivateEstimator::fit_on_observed`]). The sink never changes the estimate —
/// this is the entry point the HTTP job runner uses to stream per-stage progress.
pub fn try_private_estimate_observed<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    options: &PrivateEstimatorOptions,
    rng: &mut R,
    exec: &Executor,
    sink: &dyn ProgressSink,
) -> Result<PrivateEstimate, PipelineError> {
    if g.node_count() == 0 || g.edge_count() == 0 {
        return Err(PipelineError::EmptyGraph);
    }
    validate_estimator_inputs(params, options)?;
    Ok(PrivateEstimator::new(*options).fit_on_observed(g, params, rng, exec, sink))
}

/// Fallible KronFit baseline: checks the graph is non-empty and runs the multi-chain
/// approximate-MLE fit. This is the entry point the server uses for
/// `/api/estimate` with `"estimator": "kronfit"`. **Not differentially private** — it touches
/// the exact graph; it exists so the service can serve the paper's baseline columns for
/// comparison.
pub fn try_kronfit_estimate<R: Rng + ?Sized>(
    g: &Graph,
    options: &KronFitOptions,
    rng: &mut R,
) -> Result<FittedInitiator, PipelineError> {
    try_kronfit_estimate_on(g, options, rng, &options.executor())
}

/// [`try_kronfit_estimate`] on a caller-owned executor (`options.compute_threads` is ignored).
pub fn try_kronfit_estimate_on<R: Rng + ?Sized>(
    g: &Graph,
    options: &KronFitOptions,
    rng: &mut R,
    exec: &Executor,
) -> Result<FittedInitiator, PipelineError> {
    try_kronfit_estimate_observed(g, options, rng, exec, &kronpriv_obs::NullSink)
}

/// [`try_kronfit_estimate_on`] with typed progress reporting: the `kronfit` stage pair plus one
/// `ChainStep` per chain per ascent step flow into `sink` (see
/// [`KronFitEstimator::fit_graph_on_observed`]). The sink never changes the fit.
pub fn try_kronfit_estimate_observed<R: Rng + ?Sized>(
    g: &Graph,
    options: &KronFitOptions,
    rng: &mut R,
    exec: &Executor,
    sink: &dyn ProgressSink,
) -> Result<FittedInitiator, PipelineError> {
    if g.node_count() == 0 || g.edge_count() == 0 {
        return Err(PipelineError::EmptyGraph);
    }
    Ok(KronFitEstimator::new(*options).fit_graph_on_observed(g, rng, exec, sink))
}

/// Fallible KronMom baseline: checks the graph is non-empty and runs the exact moment-matching
/// fit. This is the entry point the server uses for `/api/estimate` with
/// `"estimator": "kronmom"`. **Not differentially private** — it matches the exact counts.
pub fn try_kronmom_estimate(
    g: &Graph,
    options: &KronMomOptions,
) -> Result<FittedInitiator, PipelineError> {
    try_kronmom_estimate_on(g, options, &options.executor())
}

/// [`try_kronmom_estimate`] on a caller-owned executor (`options.compute_threads` is ignored).
pub fn try_kronmom_estimate_on(
    g: &Graph,
    options: &KronMomOptions,
    exec: &Executor,
) -> Result<FittedInitiator, PipelineError> {
    if g.node_count() == 0 || g.edge_count() == 0 {
        return Err(PipelineError::EmptyGraph);
    }
    Ok(KronMomEstimator::new(*options).fit_graph_on(g, exec))
}

/// Fallible form of [`release_synthetic_graph`]: runs [`try_private_estimate`] with the given
/// options and samples one synthetic graph from the released initiator.
pub fn try_release_synthetic_graph<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    options: &PrivateEstimatorOptions,
    rng: &mut R,
) -> Result<SyntheticRelease, PipelineError> {
    try_release_synthetic_graph_on(g, params, options, rng, &options.executor())
}

/// [`try_release_synthetic_graph`] on a caller-owned executor (`options.compute_threads` is
/// ignored).
pub fn try_release_synthetic_graph_on<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    options: &PrivateEstimatorOptions,
    rng: &mut R,
    exec: &Executor,
) -> Result<SyntheticRelease, PipelineError> {
    try_release_synthetic_graph_observed(g, params, options, rng, exec, &kronpriv_obs::NullSink)
}

/// [`try_release_synthetic_graph_on`] with typed progress reporting: the estimate's stage
/// events plus a final `sample` stage pair flow into `sink`.
pub fn try_release_synthetic_graph_observed<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    options: &PrivateEstimatorOptions,
    rng: &mut R,
    exec: &Executor,
    sink: &dyn ProgressSink,
) -> Result<SyntheticRelease, PipelineError> {
    let estimate = try_private_estimate_observed(g, params, options, rng, exec, sink)?;
    sink.emit(&kronpriv_obs::ProgressEvent::StageStarted { stage: "sample" });
    let synthetic = {
        let _span = kronpriv_obs::stage_span("sample");
        sample_fast(&estimate.fit.theta, estimate.fit.k, &SamplerOptions::default(), rng)
    };
    sink.emit(&kronpriv_obs::ProgressEvent::StageFinished { stage: "sample" });
    Ok(SyntheticRelease { estimate, synthetic })
}

/// The result of running all three estimators of Table 1 on one graph.
#[derive(Debug, Clone)]
pub struct EstimatorSuite {
    /// The KronFit (approximate MLE) estimate.
    pub kronfit: FittedInitiator,
    /// The KronMom (moment matching) estimate.
    pub kronmom: FittedInitiator,
    /// The private estimate (Algorithm 1) and its released intermediates.
    pub private: PrivateEstimate,
}

impl_json_struct!(EstimatorSuite { kronfit, kronmom, private });

/// Runs KronFit, KronMom and the private estimator (with budget `params`) on `g`, mirroring one
/// row of Table 1. The same RNG drives the KronFit permutation sampling and the privacy noise so
/// the whole row is reproducible from one seed.
pub fn estimate_with_all_estimators<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    kronfit_options: &KronFitOptions,
    kronmom_options: &KronMomOptions,
    private_options: &PrivateEstimatorOptions,
    rng: &mut R,
) -> EstimatorSuite {
    let kronfit = KronFitEstimator::new(*kronfit_options).fit_graph(g, rng);
    let kronmom = KronMomEstimator::new(*kronmom_options).fit_graph(g);
    let private = PrivateEstimator::new(*private_options).fit(g, params, rng);
    EstimatorSuite { kronfit, kronmom, private }
}

/// [`estimate_with_all_estimators`] on a caller-owned executor shared by all three fits (the
/// per-estimator `compute_threads` fields are ignored).
pub fn estimate_with_all_estimators_on<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    kronfit_options: &KronFitOptions,
    kronmom_options: &KronMomOptions,
    private_options: &PrivateEstimatorOptions,
    rng: &mut R,
    exec: &Executor,
) -> EstimatorSuite {
    let kronfit = KronFitEstimator::new(*kronfit_options).fit_graph_on(g, rng, exec);
    let kronmom = KronMomEstimator::new(*kronmom_options).fit_graph_on(g, exec);
    let private = PrivateEstimator::new(*private_options).fit_on(g, params, rng, exec);
    EstimatorSuite { kronfit, kronmom, private }
}

/// The output of the end-to-end private release: the published estimate plus one synthetic graph
/// sampled from it.
#[derive(Debug, Clone)]
pub struct SyntheticRelease {
    /// The `(ε, δ)`-private estimate (safe to publish).
    pub estimate: PrivateEstimate,
    /// A synthetic graph sampled from the published initiator. Sampling uses only released
    /// values, so it costs no additional privacy budget.
    pub synthetic: Graph,
}

/// The full pipeline of the paper's introduction: privately estimate the initiator of `g` and
/// sample one synthetic graph from the estimate.
pub fn release_synthetic_graph<R: Rng + ?Sized>(
    g: &Graph,
    params: PrivacyParams,
    rng: &mut R,
) -> SyntheticRelease {
    let estimate = PrivateEstimator::default().fit(g, params, rng);
    let synthetic =
        sample_fast(&estimate.fit.theta, estimate.fit.k, &SamplerOptions::default(), rng);
    SyntheticRelease { estimate, synthetic }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_skg::Initiator2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_graph(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        sample_fast(&Initiator2::new(0.95, 0.55, 0.2), 9, &SamplerOptions::default(), &mut rng)
    }

    fn quick_kronfit() -> KronFitOptions {
        KronFitOptions {
            gradient_steps: 15,
            warmup_swaps: 2_000,
            samples_per_step: 2,
            swaps_between_samples: 500,
            ..Default::default()
        }
    }

    #[test]
    fn estimator_suite_produces_three_consistent_fits() {
        let g = small_graph(1);
        let mut rng = StdRng::seed_from_u64(2);
        let suite = estimate_with_all_estimators(
            &g,
            PrivacyParams::new(1.0, 0.01),
            &quick_kronfit(),
            &KronMomOptions::default(),
            &PrivateEstimatorOptions::default(),
            &mut rng,
        );
        assert_eq!(suite.kronfit.k, suite.kronmom.k);
        assert_eq!(suite.kronmom.k, suite.private.fit.k);
        for fit in [&suite.kronfit, &suite.kronmom, &suite.private.fit] {
            assert!(fit.theta.a >= fit.theta.c, "canonical form violated: {:?}", fit.theta);
            for p in fit.theta.as_array() {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn suite_is_reproducible_from_a_seed() {
        let g = small_graph(3);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            estimate_with_all_estimators(
                &g,
                PrivacyParams::paper_default(),
                &quick_kronfit(),
                &KronMomOptions::default(),
                &PrivateEstimatorOptions::default(),
                &mut rng,
            )
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.kronfit.theta, b.kronfit.theta);
        assert_eq!(a.private.fit.theta, b.private.fit.theta);
    }

    #[test]
    fn synthetic_release_produces_a_graph_of_matching_order() {
        let g = small_graph(4);
        let mut rng = StdRng::seed_from_u64(5);
        let release = release_synthetic_graph(&g, PrivacyParams::new(1.0, 0.01), &mut rng);
        assert_eq!(release.synthetic.node_count(), 1 << release.estimate.fit.k);
        assert!(release.synthetic.edge_count() > 0);
    }

    #[test]
    fn try_pipeline_rejects_bad_preconditions_without_panicking() {
        let mut rng = StdRng::seed_from_u64(20);
        let options = PrivateEstimatorOptions::default();
        let empty = Graph::from_edges(4, Vec::new());
        assert_eq!(
            try_private_estimate(&empty, PrivacyParams::new(1.0, 0.01), &options, &mut rng)
                .unwrap_err(),
            PipelineError::EmptyGraph
        );
        let g = small_graph(21);
        assert_eq!(
            try_private_estimate(&g, PrivacyParams::pure(1.0), &options, &mut rng).unwrap_err(),
            PipelineError::DeltaRequired
        );
        let bad = PrivateEstimatorOptions { degree_budget_fraction: 1.5, ..Default::default() };
        assert_eq!(
            try_private_estimate(&g, PrivacyParams::new(1.0, 0.01), &bad, &mut rng).unwrap_err(),
            PipelineError::InvalidBudgetFraction(1.5)
        );
    }

    #[test]
    fn one_node_edge_lists_are_rejected_cleanly_by_every_estimator() {
        // Regression: a SNAP upload like "0 0" parses to a single node with no edges (self-
        // loops are dropped), i.e. `kronecker_order_for(1) == 0`. Every fallible entry point
        // must reject it as EmptyGraph instead of reaching the k = 0 gradient path.
        let g = kronpriv_graph::io::parse_edge_list_reader("0 0\n".as_bytes()).unwrap();
        assert_eq!((g.node_count(), g.edge_count()), (1, 0));
        let mut rng = StdRng::seed_from_u64(30);
        assert_eq!(
            try_private_estimate(
                &g,
                PrivacyParams::new(1.0, 0.01),
                &PrivateEstimatorOptions::default(),
                &mut rng
            )
            .unwrap_err(),
            PipelineError::EmptyGraph
        );
        assert_eq!(
            try_kronfit_estimate(&g, &KronFitOptions::default(), &mut rng).unwrap_err(),
            PipelineError::EmptyGraph
        );
        assert_eq!(
            try_kronmom_estimate(&g, &KronMomOptions::default()).unwrap_err(),
            PipelineError::EmptyGraph
        );
        // The library-level fit itself degenerates cleanly for direct callers.
        let fit = KronFitEstimator::default().fit_graph(&g, &mut rng);
        assert_eq!(fit.k, 0);
        assert!(fit.theta.as_array().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn baseline_estimates_run_through_the_fallible_entry_points() {
        let g = small_graph(31);
        let mut rng = StdRng::seed_from_u64(32);
        let quick = quick_kronfit();
        let fit = try_kronfit_estimate(&g, &quick, &mut rng).unwrap();
        assert!(fit.theta.a >= fit.theta.c);
        let fit = try_kronmom_estimate(&g, &KronMomOptions::default()).unwrap();
        assert!(fit.theta.a >= fit.theta.c);
    }

    #[test]
    fn try_pipeline_accepts_valid_input_and_matches_the_panicking_form() {
        let g = small_graph(22);
        let options = PrivateEstimatorOptions::default();
        let params = PrivacyParams::new(1.0, 0.01);
        let mut rng = StdRng::seed_from_u64(23);
        let fallible = try_release_synthetic_graph(&g, params, &options, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let panicking = release_synthetic_graph(&g, params, &mut rng);
        assert_eq!(fallible.estimate.fit.theta, panicking.estimate.fit.theta);
        assert_eq!(fallible.synthetic.edge_count(), panicking.synthetic.edge_count());
        // Degrees-only runs are allowed with δ = 0 through the fallible path too.
        let mut rng = StdRng::seed_from_u64(24);
        let ablation = PrivateEstimatorOptions { degrees_only: true, ..Default::default() };
        let est = try_private_estimate(&g, PrivacyParams::pure(0.5), &ablation, &mut rng).unwrap();
        assert!(est.triangle_release.is_none());
    }

    #[test]
    fn generous_budget_release_matches_the_original_edge_count_roughly() {
        let g = small_graph(6);
        let mut rng = StdRng::seed_from_u64(7);
        let release = release_synthetic_graph(&g, PrivacyParams::new(1e6, 0.01), &mut rng);
        let ratio = release.synthetic.edge_count() as f64 / g.edge_count() as f64;
        assert!((0.6..=1.6).contains(&ratio), "edge ratio {ratio}");
    }
}
