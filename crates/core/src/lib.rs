//! `kronpriv` — differentially private estimation for the stochastic Kronecker graph model.
//!
//! This crate is the public facade of the `kronpriv` workspace, a from-scratch Rust
//! reproduction of Mir & Wright, *"A Differentially Private Estimator for the Stochastic
//! Kronecker Graph Model"* (PAIS @ EDBT 2012). The headline workflow is:
//!
//! 1. observe a sensitive graph `G`,
//! 2. run [`PrivateEstimator`](kronpriv_estimate::PrivateEstimator) (the paper's Algorithm 1) to
//!    obtain an `(ε, δ)`-differentially private initiator estimate `Θ̃`,
//! 3. publish `Θ̃` and sample synthetic graphs from it; the synthetic graphs mimic the degree
//!    distribution, hop plot, spectrum, and clustering behaviour of `G` without exposing any
//!    individual edge.
//!
//! ```
//! use kronpriv::prelude::*;
//! use rand::SeedableRng;
//!
//! // A small sensitive graph (here: a synthetic Kronecker graph plays the part).
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let secret = sample_fast(&Initiator2::new(0.95, 0.55, 0.2), 9, &SamplerOptions::default(), &mut rng);
//!
//! // Release an (ε, δ)-private estimate and a synthetic graph sampled from it.
//! let release = release_synthetic_graph(&secret, PrivacyParams::new(1.0, 0.01), &mut rng);
//! assert_eq!(release.synthetic.node_count(), 512);
//! assert!(release.estimate.fit.theta.a <= 1.0);
//! ```
//!
//! The heavy lifting lives in the subsystem crates, all re-exported here:
//!
//! * [`kronpriv_graph`] — graph substrate (counts, traversal, generators, I/O),
//! * [`kronpriv_skg`] — the stochastic Kronecker model (initiators, moments, samplers),
//! * [`kronpriv_dp`] — the differential-privacy toolkit (Laplace, degree sequences, smooth
//!   sensitivity),
//! * [`kronpriv_estimate`] — KronFit, KronMom and the private estimator,
//! * [`kronpriv_stats`] — the evaluation statistics of the paper's figures,
//! * [`kronpriv_datasets`] — the evaluation datasets (as documented stand-ins),
//! * [`kronpriv_optim`], [`kronpriv_linalg`] — numerical substrates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod pipeline;

pub use kronpriv_datasets;
pub use kronpriv_dp;
pub use kronpriv_estimate;
pub use kronpriv_graph;
pub use kronpriv_linalg;
pub use kronpriv_obs;
pub use kronpriv_optim;
pub use kronpriv_par;
pub use kronpriv_skg;
pub use kronpriv_stats;

pub use pipeline::{
    estimate_with_all_estimators, estimate_with_all_estimators_on, release_synthetic_graph,
    try_kronfit_estimate, try_kronfit_estimate_observed, try_kronfit_estimate_on,
    try_kronmom_estimate, try_kronmom_estimate_on, try_private_estimate,
    try_private_estimate_observed, try_private_estimate_on, try_release_synthetic_graph,
    try_release_synthetic_graph_observed, try_release_synthetic_graph_on,
    validate_estimator_inputs, EstimatorSuite, PipelineError, SyntheticRelease,
};

/// The most commonly used items, importable with `use kronpriv::prelude::*`.
pub mod prelude {
    pub use crate::pipeline::{
        estimate_with_all_estimators, estimate_with_all_estimators_on, release_synthetic_graph,
        try_kronfit_estimate, try_kronfit_estimate_observed, try_kronfit_estimate_on,
        try_kronmom_estimate, try_kronmom_estimate_on, try_private_estimate,
        try_private_estimate_observed, try_private_estimate_on, try_release_synthetic_graph,
        try_release_synthetic_graph_observed, try_release_synthetic_graph_on,
        validate_estimator_inputs, EstimatorSuite, PipelineError, SyntheticRelease,
    };
    pub use kronpriv_datasets::{Dataset, DatasetMetadata};
    pub use kronpriv_dp::{PrivacyParams, PrivateDegreeSequence, PrivateTriangleCount};
    pub use kronpriv_estimate::{
        FittedInitiator, KronFitEstimator, KronFitOptions, KronMomEstimator, KronMomOptions,
        PrivateEstimate, PrivateEstimator, PrivateEstimatorOptions,
    };
    pub use kronpriv_graph::{Graph, GraphBuilder, MatchingStatistics};
    pub use kronpriv_obs::{
        CollectingSink, NullSink, ProgressEvent, ProgressSink, Registry as MetricsRegistry,
    };
    pub use kronpriv_par::{Executor, Work};
    pub use kronpriv_skg::{
        sample::{sample_exact, sample_fast, SamplerOptions},
        ExpectedMoments, Initiator2,
    };
    pub use kronpriv_stats::{GraphProfile, ProfileComparison, ProfileOptions};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_types() {
        // A compile-time smoke test that the re-exports fit together.
        let theta = Initiator2::new(0.9, 0.5, 0.2);
        let moments = ExpectedMoments::of(&theta, 4);
        assert!(moments.edges > 0.0);
        let params = PrivacyParams::paper_default();
        assert_eq!(params.epsilon, 0.2);
        let _ = KronMomEstimator::default();
        let _ = KronFitEstimator::default();
        let _ = PrivateEstimator::default();
    }
}
