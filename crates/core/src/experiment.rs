//! Experiment bookkeeping: machine-readable records of every table/figure run, written under
//! `target/experiments/` by the bench harness and the examples, and referenced by
//! `EXPERIMENTS.md`.
//!
//! Two formats are emitted per experiment: a JSON document with the full structured result, and
//! a gnuplot-friendly tab-separated file for each plotted series.

use kronpriv_json::ToJson;
use std::fs;
use std::io;
use std::path::PathBuf;

/// Where experiment outputs are written: `<workspace>/target/experiments/<experiment>/`.
pub fn experiment_dir(experiment: &str) -> PathBuf {
    let base = std::env::var_os("KRONPRIV_EXPERIMENT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("experiments"));
    base.join(experiment)
}

/// Serialises `value` as pretty JSON into `<experiment dir>/<name>.json`, creating directories
/// as needed, and returns the path written.
pub fn write_json<T: ToJson>(
    experiment: &str,
    name: &str,
    value: &T,
) -> Result<PathBuf, io::Error> {
    let dir = experiment_dir(experiment);
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, kronpriv_json::to_string_pretty(value))?;
    Ok(path)
}

/// Writes a tab-separated series (one `x<TAB>y` line per point, preceded by a `# header`) into
/// `<experiment dir>/<name>.tsv` and returns the path written.
pub fn write_series(
    experiment: &str,
    name: &str,
    header: &str,
    points: &[(f64, f64)],
) -> Result<PathBuf, io::Error> {
    let dir = experiment_dir(experiment);
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.tsv"));
    let mut out = format!("# {header}\n");
    for (x, y) in points {
        out.push_str(&format!("{x}\t{y}\n"));
    }
    fs::write(&path, out)?;
    Ok(path)
}

/// Renders a fixed-width text table (the format the `table1` harness prints) from a header row
/// and data rows. Purely cosmetic, but shared between the harness binaries.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Convenience: relative error in percent, formatted for tables.
pub fn percent_error(measured: f64, reference: f64) -> String {
    if reference.abs() < 1e-12 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", 100.0 * (measured - reference) / reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_json::impl_json_struct;

    struct Dummy {
        value: u32,
        label: String,
    }
    impl_json_struct!(Dummy { value, label });

    fn with_temp_experiment_dir<T>(test: impl FnOnce() -> T) -> T {
        // Route outputs into a unique temp dir so tests never collide with real experiments.
        let dir = std::env::temp_dir().join(format!("kronpriv-exp-{}", std::process::id()));
        std::env::set_var("KRONPRIV_EXPERIMENT_DIR", &dir);
        let result = test();
        std::env::remove_var("KRONPRIV_EXPERIMENT_DIR");
        let _ = std::fs::remove_dir_all(&dir);
        result
    }

    #[test]
    fn json_round_trips_through_disk() {
        with_temp_experiment_dir(|| {
            let path = write_json("unit", "dummy", &Dummy { value: 3, label: "x".into() }).unwrap();
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.contains("\"value\": 3"));
            assert!(path.ends_with("unit/dummy.json"));
        });
    }

    #[test]
    fn series_files_are_gnuplot_friendly() {
        with_temp_experiment_dir(|| {
            let path =
                write_series("unit", "curve", "hops vs pairs", &[(0.0, 4.0), (1.0, 10.0)]).unwrap();
            let text = std::fs::read_to_string(&path).unwrap();
            assert_eq!(text, "# hops vs pairs\n0\t4\n1\t10\n");
        });
    }

    #[test]
    fn render_table_aligns_columns() {
        let table = render_table(
            &["network", "a", "b"],
            &[
                vec!["CA-GrQc".to_string(), "1.000".to_string(), "0.467".to_string()],
                vec!["AS20".to_string(), "1.0".to_string(), "0.63".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("network"));
        assert!(lines[2].starts_with("CA-GrQc"));
        // All data lines have the same alignment width for the first column.
        assert_eq!(lines[2].find("1.000"), lines[3].find("1.0"));
    }

    #[test]
    fn percent_error_formats_and_guards_zero() {
        assert_eq!(percent_error(110.0, 100.0), "+10.0%");
        assert_eq!(percent_error(90.0, 100.0), "-10.0%");
        assert_eq!(percent_error(5.0, 0.0), "n/a");
    }
}
