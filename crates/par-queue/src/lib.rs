// lint:allow(forbid-unsafe, reason = "this micro-crate IS the workspace's one unsafe exception: it isolates the lifetime-erased job pointer of the kronpriv-par queue so that every other crate root can carry a real #![forbid(unsafe_code)]")
//! `kronpriv-par-queue` — the lifetime-erased job cell at the core of the `kronpriv-par`
//! worker queue.
//!
//! Jobs submitted to the pool live on the submitting thread's stack, so the queue cannot store
//! an owned or `'static` handle to them: it stores a [`RawRunnable`], a `*const dyn Runnable`
//! whose lifetime has been erased. Erasing a lifetime is inherently `unsafe`; this crate exists
//! so that unsafety has exactly one home. Everything else in the workspace — the executor
//! itself included — builds with `#![forbid(unsafe_code)]` at the crate root, and the
//! `kronpriv-lint` `forbid-unsafe` rule keeps it that way (this crate carries the sole waiver).
//!
//! The soundness argument cannot live here, because it is a property of the *pool*, not of the
//! pointer: see the drain protocol documented on `kronpriv-par`'s `Pool::run_shared`. In short,
//! a worker only dereferences the pointer between incrementing and decrementing the job's
//! `attached` counter (both under the pool mutex), and the submitting thread does not return —
//! and therefore does not invalidate the referent — until it has removed the job from the
//! queue and observed `attached == 0` under that same mutex.

#![warn(missing_docs)]

/// A job the pool can participate in: claim chunks until none remain, containing panics.
/// `run` must never unwind — implementations catch panics internally and record the payload.
pub trait Runnable {
    /// Participates in the job until no work remains. Must not unwind.
    fn run(&self);
}

/// The erased-pointer cell. Scoping the `allow` to this module (rather than the crate root)
/// keeps the safe surface — the [`Runnable`] trait — outside the unsafe boundary.
mod erased {
    // lint:allow(allow-attr, reason = "the erased-pointer cell is the workspace's only unsafe code; its soundness rests on the pool's drain protocol (see kronpriv-par Pool::run_shared) and is scoped to this module")
    #![allow(unsafe_code)]

    use super::Runnable;

    /// A lifetime-erased `&dyn Runnable`. Only the pool in `kronpriv-par` may hold one, and
    /// only under the drain protocol described in the crate docs.
    pub struct RawRunnable(*const (dyn Runnable + 'static));

    // SAFETY: the pointee is a `Sync` job (enforced by `erase`'s bound) that the submitting
    // thread keeps alive for as long as any worker may dereference the pointer (the drain
    // protocol), so sending/sharing the pointer itself across threads is sound.
    unsafe impl Send for RawRunnable {}
    // SAFETY: as above — dereferencing yields `&dyn Runnable` to a `Sync` value.
    unsafe impl Sync for RawRunnable {}

    impl RawRunnable {
        /// Erases the lifetime of `job` so it can sit in the pool queue.
        pub fn erase<'a>(job: &'a (dyn Runnable + 'a)) -> RawRunnable {
            let ptr: *const (dyn Runnable + 'a) = job;
            // SAFETY: only the lifetime brand changes; the fat-pointer layout is identical.
            // Validity past `'a` is guaranteed by the drain protocol, not by the type.
            RawRunnable(unsafe {
                std::mem::transmute::<*const (dyn Runnable + 'a), *const (dyn Runnable + 'static)>(
                    ptr,
                )
            })
        }

        /// Runs the erased job. Sound only because every call site sits between the
        /// attach/detach bookkeeping of the drain protocol (see crate docs).
        pub fn run(&self) {
            // SAFETY: the submitting thread is blocked in `run_shared` until this participant
            // detaches, so the referent is alive for the duration of the call.
            let job: &dyn Runnable = unsafe { &*self.0 };
            job.run();
        }
    }
}

pub use erased::RawRunnable;
