//! Ablation studies listed in DESIGN.md:
//!
//! * **A1 — smooth sensitivity vs graph size**: the paper's Section 5 asks how the smooth
//!   sensitivity of the triangle count grows with the size of an SKG graph ("preliminary
//!   experiments indicate that in the SKG model, SS_Δ might grow slowly"). We measure it.
//! * **A2 — ε sweep**: utility (distance of the private estimate from the non-private KronMom
//!   estimate) as a function of the privacy budget.
//! * **A3 — objective grid**: the Dist × Norm combinations of Equation (2), quantifying the
//!   robustness claim that leads Gleich & Owen (and therefore the paper) to DistSq/NormF².

use kronpriv::experiment::write_json;
use kronpriv::prelude::*;
use kronpriv_dp::smooth_sensitivity_triangles;
use kronpriv_estimate::{DistanceKind, MomentObjective, NormalizationKind};
use kronpriv_json::impl_json_struct;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One point of the smooth-sensitivity growth study.
#[derive(Debug, Clone)]
pub struct SmoothSensitivityPoint {
    /// Kronecker order of the graph.
    pub k: u32,
    /// Number of nodes (`2^k`).
    pub nodes: usize,
    /// Number of edges of the realization.
    pub edges: usize,
    /// Exact triangle count.
    pub triangles: f64,
    /// Local sensitivity (max common-neighbour count).
    pub local_sensitivity: usize,
    /// Smooth sensitivity at the paper's β (ε = 0.1 share, δ = 0.01).
    pub smooth_sensitivity: f64,
}

impl_json_struct!(SmoothSensitivityPoint {
    k,
    nodes,
    edges,
    triangles,
    local_sensitivity,
    smooth_sensitivity,
});

/// A1: smooth sensitivity of the triangle count as a function of SKG size, for the paper's
/// synthetic initiator.
pub fn smooth_sensitivity_growth(
    k_range: std::ops::RangeInclusive<u32>,
    seed: u64,
) -> Vec<SmoothSensitivityPoint> {
    let theta = Initiator2::new(0.99, 0.45, 0.25);
    let epsilon_share = 0.1;
    let delta = 0.01;
    let beta = epsilon_share / (2.0 * (2.0f64 / delta).ln());
    let mut out = Vec::new();
    for k in k_range {
        let mut rng = StdRng::seed_from_u64(seed + k as u64);
        let g = sample_fast(&theta, k, &SamplerOptions::default(), &mut rng);
        let stats = MatchingStatistics::of_graph(&g);
        out.push(SmoothSensitivityPoint {
            k,
            nodes: g.node_count(),
            edges: g.edge_count(),
            triangles: stats.triangles,
            local_sensitivity: kronpriv_dp::triangle_local_sensitivity(&g),
            smooth_sensitivity: smooth_sensitivity_triangles(&g, beta),
        });
    }
    let _ = write_json("ablation", "smooth_sensitivity_growth", &out);
    out
}

/// One point of the ε sweep.
#[derive(Debug, Clone)]
pub struct EpsilonSweepPoint {
    /// The privacy budget ε (δ fixed at 0.01).
    pub epsilon: f64,
    /// Mean distance of the private estimate from the non-private KronMom estimate.
    pub mean_distance_to_kronmom: f64,
    /// Worst-case distance across the repetitions.
    pub max_distance_to_kronmom: f64,
    /// Number of repetitions.
    pub repetitions: usize,
}

impl_json_struct!(EpsilonSweepPoint {
    epsilon,
    mean_distance_to_kronmom,
    max_distance_to_kronmom,
    repetitions,
});

/// A2: the privacy/utility trade-off on a dataset stand-in.
pub fn epsilon_sweep(
    dataset: Dataset,
    epsilons: &[f64],
    repetitions: usize,
    seed: u64,
) -> Vec<EpsilonSweepPoint> {
    let graph = dataset.generate(seed);
    let kronmom = KronMomEstimator::default().fit_graph(&graph);
    let mut out = Vec::new();
    for &epsilon in epsilons {
        let mut distances = Vec::new();
        for rep in 0..repetitions.max(1) {
            let mut rng = StdRng::seed_from_u64(seed + 1000 * rep as u64 + 1);
            let est = PrivateEstimator::default().fit(
                &graph,
                PrivacyParams::new(epsilon, 0.01),
                &mut rng,
            );
            distances.push(est.fit.theta.distance(&kronmom.theta));
        }
        out.push(EpsilonSweepPoint {
            epsilon,
            mean_distance_to_kronmom: distances.iter().sum::<f64>() / distances.len() as f64,
            max_distance_to_kronmom: distances.iter().cloned().fold(0.0, f64::max),
            repetitions: distances.len(),
        });
    }
    let _ = write_json("ablation", "epsilon_sweep", &out);
    out
}

/// One cell of the objective grid.
#[derive(Debug, Clone)]
pub struct ObjectiveGridCell {
    /// Distance function name.
    pub distance: String,
    /// Normalisation function name.
    pub normalization: String,
    /// Distance of the recovered parameters from the generating parameters.
    pub recovery_error: f64,
    /// The recovered parameters.
    pub recovered: Initiator2,
}

impl_json_struct!(ObjectiveGridCell { distance, normalization, recovery_error, recovered });

/// A3: fits a synthetic Kronecker graph with every Dist × Norm combination of Equation (2) and
/// reports how well each recovers the generating parameters.
pub fn objective_grid(k: u32, seed: u64) -> Vec<ObjectiveGridCell> {
    let truth = Initiator2::new(0.99, 0.45, 0.25);
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = sample_fast(&truth, k, &SamplerOptions::default(), &mut rng);
    let stats = MatchingStatistics::of_graph(&graph);
    let kk = kronpriv_estimate::kronecker_order_for(graph.node_count());

    let mut out = Vec::new();
    for (dist, dist_name) in
        [(DistanceKind::Squared, "DistSq"), (DistanceKind::Absolute, "DistAbs")]
    {
        for (norm, norm_name) in [
            (NormalizationKind::Observed, "NormF"),
            (NormalizationKind::ObservedSquared, "NormF2"),
            (NormalizationKind::Expected, "NormE"),
            (NormalizationKind::ExpectedSquared, "NormE2"),
        ] {
            let objective =
                MomentObjective::standard(&stats, kk).with_distance(dist).with_normalization(norm);
            let fit = KronMomEstimator::default().fit_objective(&objective);
            out.push(ObjectiveGridCell {
                distance: dist_name.to_string(),
                normalization: norm_name.to_string(),
                recovery_error: fit.theta.distance(&truth),
                recovered: fit.theta,
            });
        }
    }
    let _ = write_json("ablation", "objective_grid", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_sensitivity_grows_slowly_with_graph_size() {
        // The paper's Section 5 conjecture: SS_Δ grows slowly in the SKG model. Between k = 8
        // and k = 11 the node count grows 8x; the smooth sensitivity should grow far less.
        let points = smooth_sensitivity_growth(8..=11, 1);
        assert_eq!(points.len(), 4);
        let first = &points[0];
        let last = &points[points.len() - 1];
        let node_growth = last.nodes as f64 / first.nodes as f64;
        let ss_growth = last.smooth_sensitivity / first.smooth_sensitivity.max(1e-9);
        assert!(node_growth >= 8.0);
        assert!(
            ss_growth < node_growth / 2.0,
            "smooth sensitivity grew {ss_growth:.1}x while nodes grew {node_growth:.1}x"
        );
        for p in &points {
            assert!(p.smooth_sensitivity >= p.local_sensitivity as f64);
        }
    }

    #[test]
    fn epsilon_sweep_shows_monotone_utility_trend() {
        let points = epsilon_sweep(Dataset::As20, &[0.05, 0.5, 5.0], 2, 3);
        assert_eq!(points.len(), 3);
        // Utility at the generous budget should be at least as good as at the tight budget.
        assert!(
            points[2].mean_distance_to_kronmom <= points[0].mean_distance_to_kronmom + 0.02,
            "{points:?}"
        );
        assert!(points[2].mean_distance_to_kronmom < 0.05, "{points:?}");
    }

    #[test]
    fn objective_grid_confirms_the_papers_default_choice() {
        // k = 12 (4096 nodes): large enough that one realization's sampling noise in the
        // observed moments stays well inside the 0.1 recovery band for every seed (smaller k
        // makes this a coin flip — the triangle count of an SKG realization is tiny and noisy).
        let cells = objective_grid(12, 4);
        assert_eq!(cells.len(), 8);
        let default_cell =
            cells.iter().find(|c| c.distance == "DistSq" && c.normalization == "NormF2").unwrap();
        // The paper's default combination recovers the truth well...
        assert!(default_cell.recovery_error < 0.1, "{default_cell:?}");
        // ...and is no worse than the worst combination by a wide margin (the robustness claim).
        let worst = cells.iter().map(|c| c.recovery_error).fold(0.0f64, f64::max);
        assert!(worst >= default_cell.recovery_error);
    }
}
