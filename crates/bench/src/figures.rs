//! The figure experiments: for each evaluation graph, compute the five statistic families of
//! Figures 1–4 for the original and for synthetic graphs generated from the KronFit, KronMom and
//! Private estimates, plus (optionally) the expectation over many synthetic realizations — the
//! "Expected" series of Figure 1.

use crate::{kronfit_options, paper_budget, profile_options};
use kronpriv::experiment::{write_json, write_series};
use kronpriv::prelude::*;
use kronpriv_json::impl_json_struct;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Options for one figure run.
#[derive(Debug, Clone)]
pub struct FigureOptions {
    /// Use shortened KronFit chains and smaller spectral computations.
    pub quick: bool,
    /// Number of synthetic realizations to average for the "Expected" series (0 disables the
    /// expected series, which is how Figures 2–4 are drawn).
    pub expected_realizations: usize,
    /// Random seed.
    pub seed: u64,
    /// Directory with the real SNAP files, if available.
    pub data_dir: Option<PathBuf>,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions { quick: false, expected_realizations: 0, seed: 2012, data_dir: None }
    }
}

/// Which figure a dataset corresponds to.
pub fn figure_number(dataset: Dataset) -> u32 {
    match dataset {
        Dataset::CaGrQc => 1,
        Dataset::As20 => 2,
        Dataset::CaHepTh => 3,
        Dataset::SyntheticKronecker => 4,
    }
}

/// The dataset plotted in the given figure (1–4).
pub fn dataset_for_figure(figure: u32) -> Option<Dataset> {
    match figure {
        1 => Some(Dataset::CaGrQc),
        2 => Some(Dataset::As20),
        3 => Some(Dataset::CaHepTh),
        4 => Some(Dataset::SyntheticKronecker),
        _ => None,
    }
}

/// Summary statistics of the "Expected" series: the mean matching statistics over many
/// realizations of one estimator's model.
#[derive(Debug, Clone)]
pub struct ExpectedSeries {
    /// Estimator label.
    pub estimator: String,
    /// Number of realizations averaged.
    pub realizations: usize,
    /// Mean `[E, H, Δ, T]` over the realizations.
    pub mean_statistics: [f64; 4],
    /// Mean global clustering coefficient.
    pub mean_clustering: f64,
}

impl_json_struct!(ExpectedSeries { estimator, realizations, mean_statistics, mean_clustering });

/// The full result of one figure run.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure number in the paper (1–4).
    pub figure: u32,
    /// Dataset name.
    pub network: String,
    /// Whether real SNAP data was used.
    pub real_data: bool,
    /// The three fitted initiators (KronFit, KronMom, Private) in that order.
    pub estimates: Vec<(String, Initiator2)>,
    /// Profiles of the original graph and of one synthetic realization per estimator.
    pub profiles: Vec<GraphProfile>,
    /// Comparisons of each synthetic profile against the original.
    pub comparisons: Vec<ProfileComparison>,
    /// Expected (multi-realization) series, when requested.
    pub expected: Vec<ExpectedSeries>,
}

impl_json_struct!(FigureResult {
    figure,
    network,
    real_data,
    estimates,
    profiles,
    comparisons,
    expected,
});

/// Runs the experiment behind one of Figures 1–4.
pub fn run_figure(figure: u32, options: &FigureOptions) -> FigureResult {
    let dataset = dataset_for_figure(figure)
        .unwrap_or_else(|| panic!("figure number must be 1-4, got {figure}"));
    let (original, real_data) = dataset.load_or_generate(options.data_dir.as_deref(), options.seed);
    let mut rng = StdRng::seed_from_u64(options.seed ^ (figure as u64) << 8);

    // Fit the three estimators.
    let kronfit =
        KronFitEstimator::new(kronfit_options(options.quick)).fit_graph(&original, &mut rng);
    let kronmom = KronMomEstimator::default().fit_graph(&original);
    let private = PrivateEstimator::default().fit(&original, paper_budget(), &mut rng);
    let estimates: Vec<(String, Initiator2)> = vec![
        ("KronFit".to_string(), kronfit.theta),
        ("KronMom".to_string(), kronmom.theta),
        ("Private".to_string(), private.fit.theta),
    ];
    let k = kronmom.k;

    // Profile the original and one synthetic realization per estimator.
    let popts = profile_options(options.quick);
    let original_profile = GraphProfile::compute("Original", &original, &popts, &mut rng);
    let mut profiles = vec![original_profile.clone()];
    let mut comparisons = Vec::new();
    for (label, theta) in &estimates {
        let synthetic = sample_fast(theta, k, &SamplerOptions::default(), &mut rng);
        let profile = GraphProfile::compute(label.clone(), &synthetic, &popts, &mut rng);
        comparisons.push(ProfileComparison::between(
            &original_profile,
            &original,
            &profile,
            &synthetic,
        ));
        profiles.push(profile);
    }

    // The "Expected" series: average scalar statistics over many realizations (Figure 1).
    let mut expected = Vec::new();
    if options.expected_realizations > 0 {
        for (label, theta) in &estimates {
            let reps = options.expected_realizations;
            let mut sums = [0.0f64; 4];
            let mut clustering = 0.0;
            for _ in 0..reps {
                let g = sample_fast(theta, k, &SamplerOptions::default(), &mut rng);
                let s = MatchingStatistics::of_graph(&g).as_array();
                for i in 0..4 {
                    sums[i] += s[i] / reps as f64;
                }
                clustering += kronpriv_stats::global_clustering(&g) / reps as f64;
            }
            expected.push(ExpectedSeries {
                estimator: label.clone(),
                realizations: reps,
                mean_statistics: sums,
                mean_clustering: clustering,
            });
        }
    }

    let result = FigureResult {
        figure,
        network: dataset.metadata().name.to_string(),
        real_data,
        estimates,
        profiles,
        comparisons,
        expected,
    };
    write_figure_outputs(&result);
    result
}

/// Writes the JSON result and the gnuplot-ready TSV series for every panel of the figure.
fn write_figure_outputs(result: &FigureResult) {
    let experiment = format!("figure{}", result.figure);
    let _ = write_json(&experiment, "result", result);
    for profile in &result.profiles {
        let tag = profile.label.to_lowercase();
        // (a) hop plot
        let hop: Vec<(f64, f64)> = profile
            .hop_plot
            .iter()
            .enumerate()
            .map(|(h, &pairs)| (h as f64, pairs as f64))
            .collect();
        let _ = write_series(&experiment, &format!("{tag}_hopplot"), "hops\tpairs", &hop);
        // (b) degree distribution
        let deg: Vec<(f64, f64)> =
            profile.degree_distribution.iter().map(|p| (p.degree as f64, p.count as f64)).collect();
        let _ = write_series(&experiment, &format!("{tag}_degree"), "degree\tcount", &deg);
        // (c) scree plot
        let scree: Vec<(f64, f64)> =
            profile.scree.iter().enumerate().map(|(rank, &sv)| ((rank + 1) as f64, sv)).collect();
        let _ = write_series(&experiment, &format!("{tag}_scree"), "rank\tsingular value", &scree);
        // (d) network value
        let nv: Vec<(f64, f64)> = profile
            .network_values
            .iter()
            .enumerate()
            .map(|(rank, &v)| ((rank + 1) as f64, v))
            .collect();
        let _ = write_series(&experiment, &format!("{tag}_netvalue"), "rank\tcomponent", &nv);
        // (e) clustering coefficient vs degree
        let cc: Vec<(f64, f64)> = profile
            .clustering_by_degree
            .iter()
            .map(|p| (p.degree as f64, p.average_clustering))
            .collect();
        let _ =
            write_series(&experiment, &format!("{tag}_clustering"), "degree\tavg clustering", &cc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_and_dataset_mappings_are_inverse() {
        for figure in 1..=4u32 {
            let ds = dataset_for_figure(figure).unwrap();
            assert_eq!(figure_number(ds), figure);
        }
        assert!(dataset_for_figure(5).is_none());
    }

    #[test]
    fn quick_figure_two_produces_all_panels() {
        // AS20 is the smallest stand-in; run the full figure pipeline in quick mode and check
        // every series exists and the private synthetic tracks the original's shape.
        let options =
            FigureOptions { quick: true, expected_realizations: 2, seed: 5, data_dir: None };
        let result = run_figure(2, &options);
        assert_eq!(result.network, "AS20");
        assert_eq!(result.profiles.len(), 4);
        assert_eq!(result.comparisons.len(), 3);
        assert_eq!(result.expected.len(), 3);
        for profile in &result.profiles {
            assert!(!profile.degree_distribution.is_empty(), "{}", profile.label);
            assert!(!profile.hop_plot.is_empty(), "{}", profile.label);
            assert!(!profile.scree.is_empty(), "{}", profile.label);
            assert!(!profile.network_values.is_empty(), "{}", profile.label);
        }
        // The private synthetic graph's degree distribution should stay close to the original's
        // (the paper's Figure 2(b) claim).
        let private_cmp = result.comparisons.iter().find(|c| c.candidate == "Private").unwrap();
        assert!(
            private_cmp.degree_distribution_distance < 0.3,
            "degree KS distance {}",
            private_cmp.degree_distribution_distance
        );
        assert!(private_cmp.edge_count_relative_error < 0.5);
        // Expected series carry plausible averages.
        for series in &result.expected {
            assert!(series.mean_statistics[0] > 0.0);
            assert_eq!(series.realizations, 2);
        }
    }
}
