//! The Table 1 experiment: parameter estimates of KronFit, KronMom and the private estimator on
//! all four evaluation graphs, side by side with the values printed in the paper.

use crate::{format_theta, kronfit_options, paper_budget};
use kronpriv::experiment::{render_table, write_json};
use kronpriv::prelude::*;
use kronpriv_datasets::Table1Row;
use kronpriv_json::impl_to_json_struct;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Options for the Table 1 run.
#[derive(Debug, Clone)]
pub struct Table1Options {
    /// Use shortened KronFit chains (development mode).
    pub quick: bool,
    /// Number of independent private runs to average (the paper reports a single run; averaging
    /// a few runs makes the comparison less dependent on one noise draw).
    pub private_repetitions: usize,
    /// Random seed for dataset generation, KronFit sampling and privacy noise.
    pub seed: u64,
    /// Directory with the real SNAP files, if available.
    pub data_dir: Option<PathBuf>,
}

impl Default for Table1Options {
    fn default() -> Self {
        Table1Options { quick: false, private_repetitions: 3, seed: 2012, data_dir: None }
    }
}

/// The measured counterpart of one row of Table 1.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Dataset name.
    pub network: String,
    /// Whether the real SNAP data was used (false = documented stand-in).
    pub real_data: bool,
    /// Node and edge counts of the graph the estimators actually saw.
    pub nodes: usize,
    /// Edge count of the graph the estimators actually saw.
    pub edges: usize,
    /// Measured KronFit estimate.
    pub kronfit: Initiator2,
    /// Measured KronMom estimate.
    pub kronmom: Initiator2,
    /// Measured private estimate (averaged over `private_repetitions` runs).
    pub private: Initiator2,
    /// Distance between the measured private and measured KronMom estimates — the paper's
    /// headline "the private estimator tracks the non-private one" number.
    pub private_to_kronmom_distance: f64,
    /// The paper's published row, for the report.
    pub paper: Table1Row,
}

impl_to_json_struct!(MeasuredRow {
    network,
    real_data,
    nodes,
    edges,
    kronfit,
    kronmom,
    private,
    private_to_kronmom_distance,
    paper,
});

/// Runs the Table 1 experiment and returns one measured row per dataset.
pub fn run_table1(options: &Table1Options) -> Vec<MeasuredRow> {
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let (graph, real_data) =
            dataset.load_or_generate(options.data_dir.as_deref(), options.seed);
        let mut rng = StdRng::seed_from_u64(options.seed ^ dataset.metadata().k as u64);

        let kronfit =
            KronFitEstimator::new(kronfit_options(options.quick)).fit_graph(&graph, &mut rng);
        let kronmom = KronMomEstimator::default().fit_graph(&graph);

        // Average the private estimate over a few independent noise draws.
        let reps = options.private_repetitions.max(1);
        let mut sum = [0.0f64; 3];
        for rep in 0..reps {
            let mut noise_rng = StdRng::seed_from_u64(options.seed + 7 * rep as u64 + 1);
            let est = PrivateEstimator::default().fit(&graph, paper_budget(), &mut noise_rng);
            let arr = est.fit.theta.as_array();
            for i in 0..3 {
                sum[i] += arr[i] / reps as f64;
            }
        }
        let private = Initiator2::clamped(sum[0], sum[1], sum[2]).canonicalized();

        rows.push(MeasuredRow {
            network: dataset.metadata().name.to_string(),
            real_data,
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            kronfit: kronfit.theta,
            kronmom: kronmom.theta,
            private,
            private_to_kronmom_distance: private.distance(&kronmom.theta),
            paper: dataset.table1_row(),
        });
    }
    rows
}

/// Renders the measured rows as the side-by-side text table the `table1` binary prints, and
/// writes the structured results under `target/experiments/table1/`.
pub fn report_table1(rows: &[MeasuredRow]) -> String {
    let header = [
        "network",
        "graph (N / E)",
        "KronFit (a/b/c)",
        "KronMom (a/b/c)",
        "Private (a/b/c)",
        "|Priv-Mom|",
        "paper KronMom",
        "paper Private",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}{}", r.network, if r.real_data { "" } else { "*" }),
                format!("{} / {}", r.nodes, r.edges),
                format_theta(&r.kronfit),
                format_theta(&r.kronmom),
                format_theta(&r.private),
                format!("{:.3}", r.private_to_kronmom_distance),
                format_theta(&r.paper.kronmom),
                format_theta(&r.paper.private),
            ]
        })
        .collect();
    let mut out = render_table(&header, &body);
    out.push_str(
        "\n(*) documented stand-in generated from the paper's Table 1 parameters; see DESIGN.md.\n",
    );
    if let Ok(path) = write_json("table1", "measured", &rows.to_vec()) {
        out.push_str(&format!("structured results written to {}\n", path.display()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_runs_and_reproduces_the_papers_shape() {
        // One quick end-to-end run over all four datasets. This is the repository's strongest
        // single test: it exercises datasets, all three estimators and the DP stack together,
        // and asserts the paper's qualitative findings.
        let options = Table1Options { quick: true, private_repetitions: 4, ..Default::default() };
        let rows = run_table1(&options);
        assert_eq!(rows.len(), 4);
        // Shape check 1: the private estimate tracks the non-private KronMom estimate. The
        // paper's Table 1 shows agreement within ~0.02 per entry on the real SNAP networks; on
        // the SKG *stand-ins* the triangle count is tiny (an acknowledged limitation of the SKG
        // model for co-authorship networks), so the private fit has to drop the triangle term
        // and the remaining degree-derived moments constrain the parameters less tightly.
        // EXPERIMENTS.md records the measured gap; the bands here assert the qualitative claim
        // (same basin, same ordering of parameters) rather than the paper's exact tightness.
        // On the stand-ins the released triangle count carries no signal, so what the degree-
        // derived moments identify are the initiator *row sums* (a + b) and (b + c) — the
        // quantities that determine the degree distribution of an SKG. The private estimator
        // must agree with KronMom on those; the full (a, b, c) distance is reported in
        // EXPERIMENTS.md and asserted only as a loose sanity band (the third direction is close
        // to unidentifiable without triangles, which is precisely why Algorithm 1 releases Δ̃).
        for row in &rows {
            let row_sum_gap = ((row.private.a + row.private.b) - (row.kronmom.a + row.kronmom.b))
                .abs()
                .max(((row.private.b + row.private.c) - (row.kronmom.b + row.kronmom.c)).abs());
            assert!(
                row_sum_gap < 0.06,
                "{}: row-sum gap {row_sum_gap:.3}; private {:?} vs kronmom {:?}",
                row.network,
                row.private,
                row.kronmom
            );
            assert!(
                row.private_to_kronmom_distance < 0.5,
                "{}: private {:?} vs kronmom {:?}",
                row.network,
                row.private,
                row.kronmom
            );
            // Shape check 2: all estimates live in the canonical box.
            for theta in [&row.kronfit, &row.kronmom, &row.private] {
                assert!(theta.a >= theta.c);
                for p in theta.as_array() {
                    assert!((0.0..=1.0).contains(&p));
                }
            }
        }
        // Shape check 3: on the stand-ins (generated from the paper's KronMom parameters) the
        // measured KronMom estimate comes back close to the published values.
        for row in rows.iter().filter(|r| r.network != "Synthetic") {
            assert!(
                row.kronmom.distance(&row.paper.kronmom) < 0.15,
                "{}: measured {:?} vs paper {:?}",
                row.network,
                row.kronmom,
                row.paper.kronmom
            );
        }
        // Shape check 4: the synthetic row recovers its generating parameters.
        let synthetic = rows.iter().find(|r| r.network == "Synthetic").unwrap();
        let truth = Initiator2::new(0.99, 0.45, 0.25);
        assert!(synthetic.kronmom.distance(&truth) < 0.1, "{:?}", synthetic.kronmom);
        let truth_row_sum_gap = ((synthetic.private.a + synthetic.private.b) - (truth.a + truth.b))
            .abs()
            .max(((synthetic.private.b + synthetic.private.c) - (truth.b + truth.c)).abs());
        assert!(truth_row_sum_gap < 0.06, "{:?}", synthetic.private);
    }

    #[test]
    fn report_renders_every_network_row() {
        let options = Table1Options { quick: true, private_repetitions: 1, ..Default::default() };
        let rows = run_table1(&options);
        let report = report_table1(&rows);
        for name in ["CA-GrQc", "CA-HepTh", "AS20", "Synthetic"] {
            assert!(report.contains(name), "missing {name} in report:\n{report}");
        }
    }
}
