//! `kronpriv-bench` — the experiment harness that regenerates every table and figure of the
//! paper, plus shared plumbing for the Criterion micro-benchmarks.
//!
//! Three binaries are built from this crate:
//!
//! * `table1` — re-runs the three estimators on all four evaluation graphs and prints the
//!   measured (a, b, c) next to the values published in Table 1,
//! * `figures` — computes the five statistic families of Figures 1–4 for the original graph and
//!   for synthetic graphs generated from each estimate (optionally averaged over many
//!   realizations, the paper's "Expected" series), writing JSON + TSV under
//!   `target/experiments/`,
//! * `ablation` — the additional studies listed in DESIGN.md: smooth sensitivity versus graph
//!   size, the ε sweep, and the Dist × Norm objective grid.
//!
//! All entry points are ordinary library functions so the integration tests can exercise them
//! at reduced scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod figures;
pub mod harness;
pub mod table1;

use kronpriv::prelude::*;
use kronpriv_estimate::KronFitOptions;

/// Default privacy budget used by all experiments: the paper's ε = 0.2, δ = 0.01.
pub fn paper_budget() -> PrivacyParams {
    PrivacyParams::paper_default()
}

/// KronFit options used by the harness. The defaults in `kronpriv-estimate` are tuned for
/// accuracy; experiments override the chain lengths downwards when `quick` is set so the full
/// table can be regenerated in seconds during development.
pub fn kronfit_options(quick: bool) -> KronFitOptions {
    if quick {
        KronFitOptions {
            gradient_steps: 25,
            warmup_swaps: 8_000,
            samples_per_step: 2,
            swaps_between_samples: 1_000,
            ..Default::default()
        }
    } else {
        KronFitOptions::default()
    }
}

/// Profile options used by the figure harness.
pub fn profile_options(quick: bool) -> ProfileOptions {
    ProfileOptions {
        scree_values: if quick { 20 } else { 100 },
        network_values: if quick { 200 } else { 1000 },
        skip_hop_plot: false,
    }
}

/// Formats an initiator as the three-decimal triple used in the printed tables.
pub fn format_theta(theta: &Initiator2) -> String {
    format!("{:.3} / {:.3} / {:.3}", theta.a, theta.b, theta.c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_matches_table_one_caption() {
        let b = paper_budget();
        assert_eq!(b.epsilon, 0.2);
        assert_eq!(b.delta, 0.01);
    }

    #[test]
    fn quick_options_are_cheaper_than_full_options() {
        assert!(kronfit_options(true).gradient_steps < kronfit_options(false).gradient_steps);
        assert!(profile_options(true).scree_values < profile_options(false).scree_values);
    }

    #[test]
    fn theta_formatting_is_stable() {
        let t = Initiator2::new(1.0, 0.4674, 0.279);
        assert_eq!(format_theta(&t), "1.000 / 0.467 / 0.279");
    }
}
