//! A minimal timing harness replacing criterion for the offline build.
//!
//! The benches under `benches/` are plain `harness = false` binaries: they construct a
//! [`Harness`], register benchmark closures with [`Harness::bench_function`], and call
//! [`Harness::report`]. Each benchmark is warmed up, then timed over repeated batches until a
//! wall-clock budget is spent; the report prints min / median / mean per-iteration times.
//!
//! The harness deliberately mirrors the criterion call shape (`b.iter(|| ...)`) so the bench
//! sources read the same and could migrate back to criterion if the build ever regains network
//! access.

use std::time::{Duration, Instant};

/// Per-benchmark measurement produced by [`Harness::bench_function`].
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Number of timed batches.
    pub samples: usize,
    /// Iterations per batch.
    pub iterations_per_sample: u64,
    /// Minimum per-iteration time over the batches.
    pub min: Duration,
    /// Median per-iteration time over the batches.
    pub median: Duration,
    /// Mean per-iteration time over the batches.
    pub mean: Duration,
}

/// Timing callback handed to benchmark closures; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` calls of `f` back to back.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A registry of benchmarks with a shared time budget per benchmark.
pub struct Harness {
    suite: String,
    measurement_time: Duration,
    min_samples: usize,
    max_samples: usize,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates a harness. `quick` shrinks the per-benchmark budget for smoke runs (used by the
    /// unit tests and by `cargo bench -- --quick`).
    pub fn new(suite: impl Into<String>, quick: bool) -> Self {
        Harness {
            suite: suite.into(),
            measurement_time: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_secs(2)
            },
            min_samples: if quick { 3 } else { 10 },
            max_samples: if quick { 5 } else { 100 },
            results: Vec::new(),
        }
    }

    /// Builds a harness from `std::env::args`, honouring `--quick` and ignoring the arguments
    /// libtest/cargo pass to `harness = false` bench binaries (`--bench`, filters, ...).
    pub fn from_args(suite: impl Into<String>) -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        Self::new(suite, quick)
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut routine: impl FnMut(&mut Bencher)) {
        // Calibration: find an iteration count that takes ≳1ms per batch, so Instant
        // resolution noise stays below ~0.1%.
        let mut iterations = 1u64;
        loop {
            let mut b = Bencher { iterations, elapsed: Duration::ZERO };
            routine(&mut b);
            if b.elapsed >= Duration::from_millis(1) || iterations >= 1 << 20 {
                break;
            }
            iterations *= 2;
        }

        let budget_start = Instant::now();
        let mut per_iteration: Vec<Duration> = Vec::new();
        while per_iteration.len() < self.min_samples
            || (budget_start.elapsed() < self.measurement_time
                && per_iteration.len() < self.max_samples)
        {
            let mut b = Bencher { iterations, elapsed: Duration::ZERO };
            routine(&mut b);
            per_iteration.push(b.elapsed / iterations as u32);
        }
        per_iteration.sort_unstable();

        let mean_nanos = per_iteration.iter().map(Duration::as_nanos).sum::<u128>()
            / per_iteration.len() as u128;
        let result = BenchResult {
            name: name.to_string(),
            samples: per_iteration.len(),
            iterations_per_sample: iterations,
            min: per_iteration[0],
            median: per_iteration[per_iteration.len() / 2],
            mean: Duration::from_nanos(mean_nanos as u64),
        };
        println!(
            "{:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples x {} iters)",
            result.name, result.min, result.median, result.mean, result.samples, iterations
        );
        self.results.push(result);
    }

    /// The collected results (in registration order).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing summary line.
    pub fn report(&self) {
        println!("suite `{}`: {} benchmarks completed", self.suite, self.results.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_trivial_function() {
        let mut h = Harness::new("unit", true);
        h.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        assert_eq!(h.results().len(), 1);
        let r = &h.results()[0];
        assert!(r.samples >= 3);
        assert!(r.min <= r.median && r.median <= r.mean * 2);
    }

    #[test]
    fn quick_mode_keeps_budgets_small() {
        let h = Harness::new("unit", true);
        assert!(h.measurement_time <= Duration::from_millis(50));
    }
}
