//! Regenerates Table 1 of the paper: parameter estimates of the three estimators on the four
//! evaluation graphs, printed next to the published values.
//!
//! ```text
//! cargo run --release -p kronpriv-bench --bin table1 [-- --quick] [-- --data-dir <dir>]
//! ```

use kronpriv_bench::table1::{report_table1, run_table1, Table1Options};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let data_dir = args
        .iter()
        .position(|a| a == "--data-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let options = Table1Options { quick, data_dir, ..Default::default() };

    println!(
        "Reproducing Table 1 (ε = 0.2, δ = 0.01){}\n",
        if quick { " [quick mode]" } else { "" }
    );
    let rows = run_table1(&options);
    println!("{}", report_table1(&rows));
}
