//! Regenerates the data behind Figures 1–4: the hop plot, degree distribution, scree plot,
//! network values and clustering curves of the original graph and of synthetic graphs generated
//! from each estimator, written as JSON + TSV under `target/experiments/figureN/`.
//!
//! ```text
//! cargo run --release -p kronpriv-bench --bin figures -- --figure 1 [--expected 100] [--quick]
//! cargo run --release -p kronpriv-bench --bin figures -- --all [--quick]
//! ```

use kronpriv_bench::figures::{run_figure, FigureOptions};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1));
    let quick = args.iter().any(|a| a == "--quick");
    let all = args.iter().any(|a| a == "--all");
    let figure: u32 = get("--figure").and_then(|v| v.parse().ok()).unwrap_or(1);
    // Figure 1 overlays the "Expected" series averaged over 100 realizations in the paper.
    let default_expected = if figure == 1 || all { 100 } else { 0 };
    let expected: usize =
        get("--expected").and_then(|v| v.parse().ok()).unwrap_or(default_expected);
    let data_dir = get("--data-dir").map(PathBuf::from);

    let figures: Vec<u32> = if all { vec![1, 2, 3, 4] } else { vec![figure] };
    for figure in figures {
        let options = FigureOptions {
            quick,
            expected_realizations: if figure == 1 { expected } else { 0 },
            seed: 2012,
            data_dir: data_dir.clone(),
        };
        println!("=== Figure {figure} ===");
        let result = run_figure(figure, &options);
        println!(
            "network {} ({}): estimates {:?}",
            result.network,
            if result.real_data { "real data" } else { "stand-in" },
            result.estimates.iter().map(|(l, t)| format!("{l}: {t}")).collect::<Vec<_>>()
        );
        println!("panel comparisons against the original:");
        for cmp in &result.comparisons {
            println!(
                "  {:<8} edges {:+.1}%  triangles {:+.1}%  degree-KS {:.3}  λ₁ {:+.1}%  \
                 diameter Δ {}  clustering Δ {:.4}",
                cmp.candidate,
                100.0 * cmp.edge_count_relative_error,
                100.0 * cmp.triangle_count_relative_error,
                cmp.degree_distribution_distance,
                100.0 * cmp.leading_singular_value_relative_error,
                cmp.diameter_difference,
                cmp.clustering_difference,
            );
        }
        for series in &result.expected {
            println!(
                "  expected[{}] over {} realizations: E={:.0} H={:.0} Δ={:.0} T={:.0} cc={:.4}",
                series.estimator,
                series.realizations,
                series.mean_statistics[0],
                series.mean_statistics[1],
                series.mean_statistics[2],
                series.mean_statistics[3],
                series.mean_clustering,
            );
        }
        println!("series written under target/experiments/figure{figure}/\n");
    }
}
