//! Runs the ablation studies of DESIGN.md:
//!
//! ```text
//! cargo run --release -p kronpriv-bench --bin ablation -- smooth-sensitivity [--max-k 14]
//! cargo run --release -p kronpriv-bench --bin ablation -- epsilon-sweep [--reps 5]
//! cargo run --release -p kronpriv-bench --bin ablation -- objective-grid
//! cargo run --release -p kronpriv-bench --bin ablation -- all
//! ```

use kronpriv::prelude::Dataset;
use kronpriv_bench::ablation::{epsilon_sweep, objective_grid, smooth_sensitivity_growth};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let get = |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1));

    if which == "smooth-sensitivity" || which == "all" {
        let max_k: u32 = get("--max-k").and_then(|v| v.parse().ok()).unwrap_or(14);
        println!("=== A1: smooth sensitivity of Δ vs SKG size (Θ = [0.99 0.45; 0.45 0.25]) ===");
        println!(
            "{:>3} {:>8} {:>8} {:>10} {:>6} {:>10}",
            "k", "nodes", "edges", "triangles", "LS", "SS_β"
        );
        for p in smooth_sensitivity_growth(8..=max_k, 1) {
            println!(
                "{:>3} {:>8} {:>8} {:>10.0} {:>6} {:>10.2}",
                p.k, p.nodes, p.edges, p.triangles, p.local_sensitivity, p.smooth_sensitivity
            );
        }
        println!();
    }

    if which == "epsilon-sweep" || which == "all" {
        let reps: usize = get("--reps").and_then(|v| v.parse().ok()).unwrap_or(5);
        println!("=== A2: ε sweep on the CA-GrQc stand-in (δ = 0.01, {reps} runs each) ===");
        println!("{:>6} {:>22} {:>22}", "ε", "mean |Θ̃ − Θ̂_mom|", "max |Θ̃ − Θ̂_mom|");
        for p in epsilon_sweep(Dataset::CaGrQc, &[0.05, 0.1, 0.2, 0.5, 1.0, 2.0], reps, 1) {
            println!(
                "{:>6} {:>22.4} {:>22.4}",
                p.epsilon, p.mean_distance_to_kronmom, p.max_distance_to_kronmom
            );
        }
        println!();
    }

    if which == "objective-grid" || which == "all" {
        println!("=== A3: Dist × Norm grid of Equation (2) on a synthetic SKG (k = 12) ===");
        println!("{:>8} {:>8} {:>12}   recovered (a, b, c)", "Dist", "Norm", "|Θ̂ − Θ|");
        for cell in objective_grid(12, 4) {
            println!(
                "{:>8} {:>8} {:>12.4}   {}",
                cell.distance, cell.normalization, cell.recovery_error, cell.recovered
            );
        }
        println!();
    }

    println!("structured results written under target/experiments/ablation/");
}
