//! The kernel × thread-count micro-benchmark matrix behind `BENCH_kernels.json`.
//!
//! Measures the parallelized Algorithm 1 hot paths — triangle counting, the smooth-sensitivity
//! bound (dominated by the node-partitioned local-sensitivity kernel), the exact hop plot, the
//! multistart moment-matching fit, one multi-chain KronFit ascent step and the isotonic degree
//! post-processing — at pool sizes {1, 2, 4} on a seeded 2^14-node stochastic Kronecker graph
//! (2^10 under `--quick`), plus the three counting kernels at ~10^5 nodes (2^17), so the
//! speedup of the parallel layer is measured rather than assumed.
//!
//! Each matrix cell builds its [`Executor`] **once, outside the timed loop**: the numbers
//! measure steady-state reuse of the persistent worker pool, not worker spawn cost.
//!
//! Run with `cargo bench -p kronpriv-bench --bench kernels` (add `-- --quick` for a smoke run).
//! With `-- --json PATH` the results are also written as machine-readable JSON — one record
//! `{kernel, nodes, threads, ns_per_op}` per measurement — which is how
//! `scripts/verify.sh --quick` tracks the perf trajectory across PRs (and what
//! `bench_check` guards against a committed `BENCH_baseline.json`).
//!
//! With `-- --metrics PATH` the run additionally dumps the process-global `kronpriv-obs`
//! registry (Prometheus text) after the matrix finishes — the executor's own view of the same
//! workload (`kronpriv_par_*`: inline-vs-pooled cutoff decisions, queue-wait and per-worker
//! busy time), alongside the harness's external ns/op timings.

use kronpriv_bench::harness::Harness;
use kronpriv_dp::{isotonic_increasing_par, smooth_sensitivity_triangles_par, LaplaceNoise};
use kronpriv_estimate::{KronFitEstimator, KronFitOptions, MomentObjective};
use kronpriv_graph::counts::{per_node_triangles_par, triangle_count_par};
use kronpriv_graph::MatchingStatistics;
use kronpriv_json::Json;
use kronpriv_optim::{multistart_minimize_par, Bounds, MultistartOptions};
use kronpriv_par::Executor;
use kronpriv_skg::sample::{sample_fast, SamplerOptions};
use kronpriv_skg::Initiator2;
use kronpriv_stats::exact_hop_plot_par;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Pool sizes measured for every kernel.
const THREADS: [usize; 3] = [1, 2, 4];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();
    let metrics_path =
        args.iter().position(|a| a == "--metrics").and_then(|i| args.get(i + 1)).cloned();

    let mut h = Harness::from_args("kernels");
    // The paper's headline scale is 2^14 nodes; --quick drops to 2^10 so the verify-script
    // smoke run stays fast.
    let k = if quick { 10 } else { 14 };
    let mut rng = StdRng::seed_from_u64(14);
    let theta = Initiator2::new(0.99, 0.45, 0.25);
    let g = sample_fast(&theta, k, &SamplerOptions::default(), &mut rng);
    let nodes = g.node_count();
    println!("kernel matrix on a 2^{k}-node SKG ({nodes} nodes, {} edges)", g.edge_count());

    let mut records: Vec<Json> = Vec::new();
    let run = |h: &mut Harness,
               records: &mut Vec<Json>,
               kernel: &str,
               graph_nodes: usize,
               threads: usize,
               routine: &dyn Fn(&Executor)| {
        // One executor per matrix cell, built before the timed region: the workers are spawned
        // and parked exactly once, so `b.iter` measures pool reuse (the steady state of the
        // server and the fitting loops), not thread spawn cost.
        let exec = Executor::new(threads);
        h.bench_function(&format!("{kernel}/t{threads}"), |b| b.iter(|| routine(&exec)));
        let measured = h.results().last().expect("bench_function just pushed a result");
        records.push(Json::Object(vec![
            ("kernel".to_string(), Json::String(kernel.to_string())),
            ("nodes".to_string(), Json::Number(graph_nodes as f64)),
            ("threads".to_string(), Json::Number(threads as f64)),
            // The min (not median/mean) of the samples: background load on a shared host only
            // ever inflates a sample, so the min is the robust estimator of true kernel cost —
            // what the regression and overhead gates in bench_check need to compare.
            ("ns_per_op".to_string(), Json::Number(measured.min.as_nanos() as f64)),
        ]));
    };

    // The calibration cells: a fixed pure-CPU workload that touches no kernel, no executor
    // and no instrumentation. Its fresh-vs-baseline ratio measures only how fast this host is
    // running *right now* relative to when the baseline was captured, which is what lets
    // `bench_check` normalize host-load drift out of the instrumentation-overhead gate on
    // shared runners. It runs twice — first and last cell of the matrix — so load arriving
    // mid-run is caught by at least one of the two samples.
    let calibration = |_exec: &Executor| {
        let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
        for i in 0..(1u64 << 16) {
            acc = acc.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ (acc >> 31).wrapping_add(i);
        }
        black_box(acc);
    };
    run(&mut h, &mut records, "calibration", 1 << 16, 1, &calibration);

    for threads in THREADS {
        run(&mut h, &mut records, "triangle_count", nodes, threads, &|exec| {
            black_box(triangle_count_par(black_box(&g), exec));
        });
    }
    for threads in THREADS {
        run(&mut h, &mut records, "smooth_sensitivity", nodes, threads, &|exec| {
            black_box(smooth_sensitivity_triangles_par(black_box(&g), 0.01, exec));
        });
    }
    for threads in THREADS {
        run(&mut h, &mut records, "per_node_triangles", nodes, threads, &|exec| {
            black_box(per_node_triangles_par(black_box(&g), exec));
        });
    }

    // The ~10^5-node rows: the three counting kernels on a 2^17-node SKG (131'072 nodes),
    // large enough that per-node work dominates scheduling. These run even under --quick —
    // they are the inputs to the 4T-vs-1T scaling gates in bench_check, so the committed
    // baseline must always carry them.
    let mut rng = StdRng::seed_from_u64(18);
    let large = sample_fast(&theta, 17, &SamplerOptions::default(), &mut rng);
    let large_nodes = large.node_count();
    println!(
        "large-kernel rows on a 2^17-node SKG ({large_nodes} nodes, {} edges)",
        large.edge_count()
    );
    for threads in THREADS {
        run(&mut h, &mut records, "triangle_count", large_nodes, threads, &|exec| {
            black_box(triangle_count_par(black_box(&large), exec));
        });
    }
    for threads in THREADS {
        run(&mut h, &mut records, "smooth_sensitivity", large_nodes, threads, &|exec| {
            black_box(smooth_sensitivity_triangles_par(black_box(&large), 0.01, exec));
        });
    }
    for threads in THREADS {
        run(&mut h, &mut records, "per_node_triangles", large_nodes, threads, &|exec| {
            black_box(per_node_triangles_par(black_box(&large), exec));
        });
    }

    // The exact all-sources BFS is quadratic; measure it on a 4× smaller graph so the full
    // suite stays within its time budget.
    let mut rng = StdRng::seed_from_u64(15);
    let small = sample_fast(&theta, k.saturating_sub(2), &SamplerOptions::default(), &mut rng);
    for threads in THREADS {
        run(&mut h, &mut records, "exact_hop_plot", small.node_count(), threads, &|exec| {
            black_box(exact_hop_plot_par(black_box(&small), exec));
        });
    }

    // The fitting-stage hot paths (this is where the end-to-end runtime of Algorithm 1 now
    // goes, the counting kernels being parallel since PR 3). `fit_multistart` is the full
    // grid-seeded multistart Nelder–Mead on the graph's observed moments.
    let stats = MatchingStatistics::of_graph(&g);
    let objective = MomentObjective::standard(&stats, k);
    let fit_opts = MultistartOptions::default();
    let fit_bounds = Bounds::unit(3);
    let extra_starts = vec![vec![0.99, 0.5, 0.2]];
    for threads in THREADS {
        run(&mut h, &mut records, "fit_multistart", nodes, threads, &|exec| {
            black_box(multistart_minimize_par(
                |p| objective.evaluate_params(p),
                &fit_bounds,
                &extra_starts,
                &fit_opts,
                exec,
            ));
        });
    }

    // One multi-chain KronFit ascent step (4 chains, a couple of permutation samples each):
    // the hot path of the parallel KronFit baseline. The fit is byte-identical for every
    // pool size, so the matrix measures pure scheduling overhead/speedup.
    let kronfit_opts = KronFitOptions {
        gradient_steps: 1,
        warmup_swaps: 2_000,
        samples_per_step: 2,
        swaps_between_samples: 200,
        chains: 4,
        ..Default::default()
    };
    for threads in THREADS {
        run(&mut h, &mut records, "kronfit_step", nodes, threads, &|exec| {
            let mut rng = StdRng::seed_from_u64(17);
            black_box(KronFitEstimator::new(kronfit_opts).fit_graph_on(
                black_box(&g),
                &mut rng,
                exec,
            ));
        });
    }

    // The isotonic (PAVA) constrained-inference pass of the private degree release, on a
    // synthetic noisy sorted sequence long enough to span many parallel blocks.
    let iso_len = if quick { 1 << 13 } else { 1 << 16 };
    let mut rng = StdRng::seed_from_u64(16);
    let noise = LaplaceNoise::new(20.0);
    let noisy: Vec<f64> =
        (0..iso_len).map(|i| (i as f64).sqrt() + noise.sample(&mut rng)).collect();
    for threads in THREADS {
        run(&mut h, &mut records, "isotonic_postprocess", iso_len, threads, &|exec| {
            black_box(isotonic_increasing_par(black_box(&noisy), exec));
        });
    }

    run(&mut h, &mut records, "calibration_end", 1 << 16, 1, &calibration);

    h.report();
    if let Some(path) = json_path {
        let doc = Json::Array(records);
        std::fs::write(&path, doc.to_compact_string())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
    if let Some(path) = metrics_path {
        std::fs::write(&path, kronpriv_obs::Registry::global().render())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path} (kronpriv-obs registry after the matrix)");
    }
}
