//! Criterion benchmarks of the three estimators themselves — the end-to-end cost a data curator
//! pays per release. KronFit is benchmarked with a reduced chain length (its full configuration
//! is minutes-scale by design, like the original SNAP implementation).

use criterion::{criterion_group, criterion_main, Criterion};
use kronpriv::prelude::*;
use kronpriv_estimate::KronFitOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5))
}

fn synthetic_graph(k: u32) -> Graph {
    let mut rng = StdRng::seed_from_u64(k as u64);
    sample_fast(&Initiator2::new(0.99, 0.45, 0.25), k, &SamplerOptions::default(), &mut rng)
}

fn bench_kronmom_fit(c: &mut Criterion) {
    let g = synthetic_graph(13);
    c.bench_function("kronmom_fit_k13", |b| {
        b.iter(|| black_box(KronMomEstimator::default().fit_graph(black_box(&g))))
    });
}

fn bench_private_fit(c: &mut Criterion) {
    let g = synthetic_graph(13);
    c.bench_function("private_fit_k13_eps0.2", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| {
            black_box(PrivateEstimator::default().fit(&g, PrivacyParams::paper_default(), &mut rng))
        })
    });
}

fn bench_kronfit_short_chain(c: &mut Criterion) {
    let g = synthetic_graph(11);
    let options = KronFitOptions {
        gradient_steps: 10,
        warmup_swaps: 2_000,
        samples_per_step: 2,
        swaps_between_samples: 500,
        ..Default::default()
    };
    c.bench_function("kronfit_10steps_k11", |b| {
        let mut rng = StdRng::seed_from_u64(12);
        b.iter(|| black_box(KronFitEstimator::new(options).fit_graph(&g, &mut rng)))
    });
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_kronmom_fit, bench_private_fit, bench_kronfit_short_chain
}
criterion_main!(benches);
