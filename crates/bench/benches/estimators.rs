//! Benchmarks of the three estimators themselves — the end-to-end cost a data curator pays per
//! release. KronFit is benchmarked with a reduced chain length (its full configuration is
//! minutes-scale by design, like the original SNAP implementation).
//!
//! Run with `cargo bench -p kronpriv-bench --bench estimators` (add `-- --quick` for a smoke
//! run). Uses the in-workspace harness instead of criterion so the build stays offline.

use kronpriv::prelude::*;
use kronpriv_bench::harness::Harness;
use kronpriv_estimate::KronFitOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn synthetic_graph(k: u32) -> Graph {
    let mut rng = StdRng::seed_from_u64(k as u64);
    sample_fast(&Initiator2::new(0.99, 0.45, 0.25), k, &SamplerOptions::default(), &mut rng)
}

fn main() {
    let mut h = Harness::from_args("estimators");

    {
        let g = synthetic_graph(13);
        h.bench_function("kronmom_fit_k13", |b| {
            b.iter(|| black_box(KronMomEstimator::default().fit_graph(black_box(&g))))
        });

        let mut rng = StdRng::seed_from_u64(11);
        h.bench_function("private_fit_k13_eps0.2", |b| {
            b.iter(|| {
                black_box(PrivateEstimator::default().fit(
                    &g,
                    PrivacyParams::paper_default(),
                    &mut rng,
                ))
            })
        });
    }

    {
        let g = synthetic_graph(11);
        let options = KronFitOptions {
            gradient_steps: 10,
            warmup_swaps: 2_000,
            samples_per_step: 2,
            swaps_between_samples: 500,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(12);
        h.bench_function("kronfit_10steps_k11", |b| {
            b.iter(|| black_box(KronFitEstimator::new(options).fit_graph(&g, &mut rng)))
        });
    }

    h.report();
}
