//! Micro-benchmarks of the graph kernels: subgraph counting (the observed side of the moment
//! matching), smooth sensitivity, the private degree-sequence release, and the evaluation
//! statistics, all at the scale of the paper's datasets.
//!
//! Run with `cargo bench -p kronpriv-bench --bench graph_kernels` (add `-- --quick` for a
//! smoke run). Uses the in-workspace harness instead of criterion so the build stays offline.

use kronpriv::prelude::*;
use kronpriv_bench::harness::Harness;
use kronpriv_dp::{private_degree_sequence, smooth_sensitivity_triangles};
use kronpriv_graph::counts::triangle_count;
use kronpriv_stats::{exact_hop_plot, scree_plot, SpectralOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("graph_kernels");
    let g = Dataset::CaGrQc.generate(1);

    h.bench_function("matching_statistics_ca_grqc", |b| {
        b.iter(|| black_box(MatchingStatistics::of_graph(black_box(&g))))
    });

    h.bench_function("triangle_count_ca_grqc", |b| {
        b.iter(|| black_box(triangle_count(black_box(&g))))
    });

    h.bench_function("smooth_sensitivity_ca_grqc", |b| {
        b.iter(|| black_box(smooth_sensitivity_triangles(black_box(&g), 0.01)))
    });

    {
        let mut rng = StdRng::seed_from_u64(7);
        h.bench_function("private_degree_sequence_ca_grqc", |b| {
            b.iter(|| black_box(private_degree_sequence(&g, PrivacyParams::pure(0.1), &mut rng)))
        });
    }

    {
        let mut rng = StdRng::seed_from_u64(8);
        h.bench_function("scree_plot_25_ca_grqc", |b| {
            b.iter(|| {
                black_box(scree_plot(
                    &g,
                    &SpectralOptions { scree_values: 25, ..Default::default() },
                    &mut rng,
                ))
            })
        });
    }

    // The exact all-sources BFS is the slowest figure kernel; benchmark it on the smaller AS20
    // stand-in to keep the suite quick.
    let as20 = Dataset::As20.generate(2);
    h.bench_function("exact_hop_plot_as20", |b| b.iter(|| black_box(exact_hop_plot(&as20))));

    h.report();
}
