//! Criterion micro-benchmarks of the graph kernels: subgraph counting (the observed side of the
//! moment matching), smooth sensitivity, the private degree-sequence release, and the evaluation
//! statistics, all at the scale of the paper's datasets.

use criterion::{criterion_group, criterion_main, Criterion};
use kronpriv::prelude::*;
use kronpriv_dp::{private_degree_sequence, smooth_sensitivity_triangles};
use kronpriv_graph::counts::triangle_count;
use kronpriv_stats::{exact_hop_plot, scree_plot, SpectralOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3))
}

fn ca_grqc_standin() -> Graph {
    Dataset::CaGrQc.generate(1)
}

fn bench_matching_statistics(c: &mut Criterion) {
    let g = ca_grqc_standin();
    c.bench_function("matching_statistics_ca_grqc", |b| {
        b.iter(|| black_box(MatchingStatistics::of_graph(black_box(&g))))
    });
}

fn bench_triangle_count(c: &mut Criterion) {
    let g = ca_grqc_standin();
    c.bench_function("triangle_count_ca_grqc", |b| {
        b.iter(|| black_box(triangle_count(black_box(&g))))
    });
}

fn bench_smooth_sensitivity(c: &mut Criterion) {
    let g = ca_grqc_standin();
    c.bench_function("smooth_sensitivity_ca_grqc", |b| {
        b.iter(|| black_box(smooth_sensitivity_triangles(black_box(&g), 0.01)))
    });
}

fn bench_private_degree_sequence(c: &mut Criterion) {
    let g = ca_grqc_standin();
    c.bench_function("private_degree_sequence_ca_grqc", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(private_degree_sequence(&g, PrivacyParams::pure(0.1), &mut rng)))
    });
}

fn bench_scree_plot(c: &mut Criterion) {
    let g = ca_grqc_standin();
    c.bench_function("scree_plot_25_ca_grqc", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| {
            black_box(scree_plot(
                &g,
                &SpectralOptions { scree_values: 25, ..Default::default() },
                &mut rng,
            ))
        })
    });
}

fn bench_hop_plot_small(c: &mut Criterion) {
    // The exact all-sources BFS is the slowest figure kernel; benchmark it on the smaller AS20
    // stand-in to keep the suite quick.
    let g = Dataset::As20.generate(2);
    c.bench_function("exact_hop_plot_as20", |b| {
        b.iter(|| black_box(exact_hop_plot(black_box(&g))))
    });
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_matching_statistics, bench_triangle_count, bench_smooth_sensitivity,
              bench_private_degree_sequence, bench_scree_plot, bench_hop_plot_small
}
criterion_main!(benches);
