//! Micro-benchmarks of the model kernels every experiment leans on: the closed-form expected
//! moments (Equation 1), per-pair edge probabilities, the moment objective, and SKG sampling at
//! the paper's graph sizes.
//!
//! Run with `cargo bench -p kronpriv-bench --bench model_kernels` (add `-- --quick` for a
//! smoke run). Uses the in-workspace harness instead of criterion so the build stays offline.

use kronpriv::prelude::*;
use kronpriv_bench::harness::Harness;
use kronpriv_estimate::MomentObjective;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("model_kernels");
    let theta = Initiator2::new(0.99, 0.45, 0.25);

    h.bench_function("expected_moments_k14", |b| {
        b.iter(|| black_box(ExpectedMoments::of(black_box(&theta), 14)))
    });

    h.bench_function("edge_probability_k14", |b| {
        b.iter(|| black_box(theta.edge_probability(14, black_box(12345), black_box(4321))))
    });

    {
        let observed = ExpectedMoments::of(&theta, 14).as_array();
        let objective = MomentObjective::from_counts(observed, 14);
        let candidate = Initiator2::new(0.95, 0.5, 0.3);
        h.bench_function("moment_objective_evaluation", |b| {
            b.iter(|| black_box(objective.evaluate(black_box(&candidate))))
        });
    }

    for k in [10u32, 12, 14] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        h.bench_function(&format!("skg_sample_fast/{k}"), |b| {
            b.iter(|| {
                black_box(sample_fast(&theta, k, &SamplerOptions::default(), &mut rng).edge_count())
            })
        });
    }

    {
        let mut rng = StdRng::seed_from_u64(9);
        h.bench_function("skg_sample_exact_k9", |b| {
            b.iter(|| black_box(sample_exact(&theta, 9, &mut rng).edge_count()))
        });
    }

    h.report();
}
