//! Criterion micro-benchmarks of the model kernels every experiment leans on: the closed-form
//! expected moments (Equation 1), per-pair edge probabilities, the moment objective, and SKG
//! sampling at the paper's graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kronpriv::prelude::*;
use kronpriv_estimate::MomentObjective;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default().sample_size(20).measurement_time(Duration::from_secs(2))
}

fn bench_expected_moments(c: &mut Criterion) {
    let theta = Initiator2::new(0.99, 0.45, 0.25);
    c.bench_function("expected_moments_k14", |b| {
        b.iter(|| black_box(ExpectedMoments::of(black_box(&theta), 14)))
    });
}

fn bench_edge_probability(c: &mut Criterion) {
    let theta = Initiator2::new(0.99, 0.45, 0.25);
    c.bench_function("edge_probability_k14", |b| {
        b.iter(|| black_box(theta.edge_probability(14, black_box(12345), black_box(4321))))
    });
}

fn bench_objective_evaluation(c: &mut Criterion) {
    let truth = Initiator2::new(0.99, 0.45, 0.25);
    let observed = ExpectedMoments::of(&truth, 14).as_array();
    let objective = MomentObjective::from_counts(observed, 14);
    let candidate = Initiator2::new(0.95, 0.5, 0.3);
    c.bench_function("moment_objective_evaluation", |b| {
        b.iter(|| black_box(objective.evaluate(black_box(&candidate))))
    });
}

fn bench_sampling(c: &mut Criterion) {
    let theta = Initiator2::new(0.99, 0.45, 0.25);
    let mut group = c.benchmark_group("skg_sample_fast");
    for k in [10u32, 12, 14] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut rng = StdRng::seed_from_u64(k as u64);
            b.iter(|| {
                black_box(sample_fast(&theta, k, &SamplerOptions::default(), &mut rng).edge_count())
            })
        });
    }
    group.finish();
}

fn bench_exact_sampler_small(c: &mut Criterion) {
    let theta = Initiator2::new(0.99, 0.45, 0.25);
    c.bench_function("skg_sample_exact_k9", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| black_box(sample_exact(&theta, 9, &mut rng).edge_count()))
    });
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_expected_moments, bench_edge_probability, bench_objective_evaluation,
              bench_sampling, bench_exact_sampler_small
}
criterion_main!(benches);
