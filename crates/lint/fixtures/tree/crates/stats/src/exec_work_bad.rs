//! Fixture: a kernel entry point without a visible `Work` cost hint.
pub fn sum_nohint(exec: &Executor, data: &[u64]) -> u64 {
    exec.map_reduce(
        data.len(),
        64,
        data.len() as u64,
        |range| data[range].iter().sum::<u64>(),
        |acc: u64, part| acc + part,
        0,
    )
}
