//! Fixture: a sensitive value crosses crates through the workspace call graph before
//! reaching a serialization sink.
pub fn summarize(n: u64) -> Json {
    let wedges = exact_wedge_count(n);
    Json::Number(wedges as f64)
}
