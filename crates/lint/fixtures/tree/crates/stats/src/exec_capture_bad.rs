//! Fixture: parallel closures passed to the executor must not mutate captured state.

pub fn sum_bad(exec: &Executor, data: &[u64]) -> u64 {
    let mut total = 0u64;
    let work = Work::LIGHT;
    exec.map_reduce(
        data.len(),
        64,
        work,
        |range| {
            accumulate(&mut total, &data[range]);
            0u64
        },
        |acc: u64, part| acc + part,
        0,
    );
    total
}

pub fn count_bad(exec: &Executor, data: &[u64]) -> u64 {
    let work = Work::LIGHT;
    exec.map_reduce(
        data.len(),
        64,
        work,
        |range| {
            let hits: &AtomicU64 = shared_counter();
            hits.fetch_add(data[range].len() as u64, Ordering::Relaxed);
            0u64
        },
        |acc: u64, part| acc + part,
        0,
    )
}
