// FIXTURE (never compiled): a compliant crate root — the forbid-unsafe near-miss.

#![forbid(unsafe_code)]

pub fn noop() {}
