//! Fixture (near miss): per-chunk `&mut` on closure-bound state, a `&mut` accumulator in
//! the sequential merge position, and a derived work hint are all within the contract.

pub fn sum_ok(exec: &Executor, data: &[u64]) -> u64 {
    exec.map_reduce(
        data.len(),
        64,
        edge_work(data),
        |range| {
            let mut local = 0u64;
            accumulate(&mut local, &data[range]);
            local
        },
        |acc: u64, part| acc + part,
        0,
    )
}

pub fn gather_ok(exec: &Executor, data: &[u64]) -> Vec<u64> {
    let work = Work::LIGHT;
    exec.fold_reduce(
        data.len(),
        64,
        work,
        Vec::new,
        |acc: &mut Vec<u64>, range| {
            for &v in &data[range] {
                acc.push(v);
            }
        },
        |mut a, b| {
            a.extend(b);
            a
        },
    )
}
