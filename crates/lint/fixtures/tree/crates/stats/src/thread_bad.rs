// FIXTURE (never compiled): ad-hoc threading outside crates/par.

pub fn spawn_things() {
    // VIOLATION: thread::spawn outside the deterministic executor.
    let handle = std::thread::spawn(|| 1 + 1);
    let _ = handle;
    // VIOLATION: Builder-based spawning too.
    let b = thread::Builder::new();
    let _ = b;
    // VIOLATION: hardware-parallelism discovery belongs to crates/par.
    let n = std::thread::available_parallelism();
    let _ = n;
}
