// FIXTURE (never compiled): the redacted macro does not launder sensitive fields through its
// released block.

// VIOLATION: `exact` in the released block serializes like any other field.
impl_json_struct_redacted!(LeakyRelease {
    released: { value, exact },
    redacted: { scratch: 0.0 },
});
