// FIXTURE (never compiled): hash-order iteration in a compute crate.

pub fn storage_order(histogram: &HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    // VIOLATION: `.values()` yields storage order.
    for v in histogram.values() {
        total += v;
    }
    // VIOLATION: `.keys()` likewise.
    let first = histogram.keys().next();
    let _ = first;
    total
}

pub fn direct_loop() {
    let seen: HashSet<u64> = HashSet::new();
    // VIOLATION: a for-loop over the set traverses storage order.
    for x in &seen {
        let _ = x;
    }
}
