//! Fixture (near miss): the same flow as `taint_helper_bad.rs` but routed through a
//! declared sanitizer — no findings.

// lint:source(sensitive)
pub fn exact_stat(n: u64) -> u64 {
    n * 3
}

/// The DP release boundary for this fixture.
// lint:sanitizer
pub fn release_stat(v: f64) -> f64 {
    v + 1.0
}

pub fn publish_ok(n: u64) -> Json {
    let released = release_stat(exact_stat(n) as f64);
    Json::Number(released)
}
