// FIXTURE (never compiled): hash-iter near-misses — keyed access never reveals order.

pub fn keyed_access(ids: &mut HashMap<u64, u32>, a: u64, next: u32) -> u32 {
    // OK: entry/get/contains_key are order-blind.
    let id = *ids.entry(a).or_insert(next);
    let _ = ids.get(&a);
    let _ = ids.contains_key(&a);
    let _ = ids.len();
    id
}

pub fn ordered_map(m: &BTreeMap<u64, u64>) -> u64 {
    // OK: BTreeMap iterates in key order — deterministic by construction.
    m.values().sum()
}

pub fn vec_iteration(v: &[u64]) -> u64 {
    // OK: `iter` on a slice binding; only hash-typed bindings are tracked.
    v.iter().sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_iterate() {
        let m: HashMap<u64, u64> = HashMap::new();
        // OK: test code is exempt — assertions over contents are order-insensitive anyway.
        for (_k, _v) in m.iter() {}
    }
}
