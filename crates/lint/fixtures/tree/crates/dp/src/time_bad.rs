// FIXTURE (never compiled): wall-clock access in a compute crate.

// VIOLATION: importing the clock.
use std::time::Instant;

pub fn timed() -> u64 {
    // VIOLATION: reading the clock.
    let start = Instant::now();
    let _ = start;
    // VIOLATION: SystemTime is a clock too.
    let now = SystemTime::now();
    let _ = now;
    0
}
