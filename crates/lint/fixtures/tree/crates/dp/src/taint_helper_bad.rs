//! Fixture: taint flows through a helper's return value into Json construction.

/// An annotated source: pretend this reads the protected graph.
// lint:source(sensitive)
pub fn exact_count(n: u64) -> u64 {
    n * 3
}

fn helper(n: u64) -> u64 {
    exact_count(n)
}

pub fn publish(n: u64) -> Json {
    let stat = helper(n);
    Json::Number(stat as f64)
}
