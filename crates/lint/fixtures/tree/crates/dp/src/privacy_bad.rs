// FIXTURE (never compiled): privacy-serialize violations.

pub struct TriangleRelease {
    pub value: f64,
    pub exact: f64,
}

// VIOLATION: a sensitive field inside a serialization macro.
impl_json_struct!(TriangleRelease { value, exact });

// VIOLATION: a sensitive field inside the lenient variant.
impl_json_struct_lenient!(DegreeRelease { degrees, noisy_degrees });

pub fn manual_json() -> Json {
    // VIOLATION: manual JSON construction keyed by a sensitive name.
    Json::Object(vec![("exact_triangle_count".to_string(), Json::Number(3.0))])
}
