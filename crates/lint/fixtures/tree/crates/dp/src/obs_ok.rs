// FIXTURE (never compiled): obs-read near-misses — writes are fine, unrelated `get`s too.

pub fn write_only(calls: &Counter, lat: &Histogram) {
    // OK: compute code may write counters and record spans.
    calls.add(1);
    lat.record_ns(42);
}

pub fn unrelated_get(n: NonZeroUsize, cell: &OnceLock<u64>) -> u64 {
    // OK: `get` on non-metric types; only metric-typed bindings are tracked.
    let _ = cell.get();
    n.get() as u64
}

pub fn render_table(rows: &[String]) -> String {
    // OK: `render_table` is not the registry's `render`.
    rows.join("\n")
}
