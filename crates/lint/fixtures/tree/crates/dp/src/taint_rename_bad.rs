//! Fixture: a deny-listed value laundered through a rename reaches manual Json
//! construction. v1's spelling-based rules cannot see this; the v2 taint rule must.
pub fn leak_renamed(exact_triangle_count: u64) -> Json {
    let laundered = exact_triangle_count;
    Json::Number(laundered as f64)
}
