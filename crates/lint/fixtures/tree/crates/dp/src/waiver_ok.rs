// FIXTURE (never compiled): a correctly waived finding — counted, reported, not failing.

// lint:allow(determinism-time, reason = "fixture: demonstrates a well-formed waiver on the line above its finding")
use std::time::Instant;

pub fn waived_same_line() {
    let t = Instant::now(); // lint:allow(determinism-time, reason = "fixture: same-line waiver form")
    let _ = t;
}
