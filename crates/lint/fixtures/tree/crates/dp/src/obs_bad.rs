// FIXTURE (never compiled): reading observability state from a compute crate.

pub fn feedback(reg: &Registry) -> String {
    // VIOLATION: rendering the registry from a compute path.
    let text = reg.render();
    text
}

pub fn read_counter(calls: Counter) -> u64 {
    // VIOLATION: reading a metric back — instrumentation must not feed results.
    calls.get()
}

pub fn read_histogram(lat: &Histogram) -> Vec<u64> {
    // VIOLATION: histogram read-side accessor.
    lat.bucket_counts()
}

pub fn chained_read(reg: &Registry) -> u64 {
    // VIOLATION: reading through a freshly fetched handle.
    reg.counter("dp_calls").get()
}
