// FIXTURE (never compiled): privacy-serialize near-misses — none of these may be flagged.

pub struct TriangleRelease {
    pub value: f64,
    pub exact: f64,
}

// OK: only released fields serialize.
impl_json_struct!(CleanRelease { value, smooth_sensitivity, params });

// OK: the sensitive field sits in the redacted block, which never serializes.
impl_json_struct_redacted!(TriangleRelease {
    released: { value, smooth_sensitivity },
    redacted: { exact: f64::NAN },
});

// OK: holding a sensitive value in memory is fine — only serialization is the boundary.
pub fn in_memory_use(r: &TriangleRelease) -> f64 {
    r.exact + 1.0
}

#[cfg(test)]
mod tests {
    // OK: test code may name sensitive fields to assert their absence on the wire.
    #[test]
    fn exact_is_absent() {
        let text = String::from("{}");
        assert!(!text.contains("exact"));
        assert!(!text.contains("noisy_degrees"));
    }
}
