// FIXTURE (never compiled): waiver hygiene violations.

// VIOLATION (waiver-syntax): a reason is mandatory — and the underlying finding still fires.
// lint:allow(determinism-time)
use std::time::Instant;

// VIOLATION (waiver-syntax): empty reasons are malformed too.
// lint:allow(hash-iter, reason = "")
pub fn empty_reason() {}

// VIOLATION (waiver-syntax): the named rule does not exist.
// lint:allow(no-such-rule, reason = "typo'd rule names must not silently waive nothing")
pub fn unknown_rule() {}

// VIOLATION (stale-waiver): nothing on this or the next line triggers hash-iter.
// lint:allow(hash-iter, reason = "this waiver matches no finding and must be deleted")
pub fn stale() {}
