// FIXTURE (never compiled): allow-attr near-misses.

// OK: dead_code is not in the workspace lint table.
#[allow(dead_code)]
pub fn unused_helper() {}

// OK: clippy::too_many_arguments is not in the table either.
#[allow(clippy::too_many_arguments)]
pub fn wide(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) {
    let _ = (a, b, c, d, e, f, g, h);
}
