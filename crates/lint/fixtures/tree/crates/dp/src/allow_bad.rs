// FIXTURE (never compiled): re-allowing workspace-table lints.

// VIOLATION: unwrap latitude comes from clippy.toml, never from attributes.
#[allow(clippy::unwrap_used)]
pub fn sneaky_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

// VIOLATION: unsafe_code may not be re-allowed outside the par-queue cell.
#[allow(unsafe_code)]
pub fn sneaky_unsafe() {}
