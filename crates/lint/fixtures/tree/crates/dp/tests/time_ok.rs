// FIXTURE (never compiled): determinism-time near-miss — test code owns its own timeouts.

use std::time::Instant;

#[test]
fn deadline_polling_is_fine_in_tests() {
    let deadline = Instant::now();
    let _ = deadline;
}
