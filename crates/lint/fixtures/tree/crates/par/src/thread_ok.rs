// FIXTURE (never compiled): determinism-thread near-miss — crates/par owns the worker pool.

pub fn pool_spawn() {
    // OK: this is the one crate allowed to create threads and size itself to the hardware.
    let handle = std::thread::spawn(|| ());
    let _ = handle;
    let n = std::thread::available_parallelism();
    let _ = n;
}
