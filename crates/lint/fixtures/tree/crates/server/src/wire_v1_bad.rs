// FIXTURE (never compiled): sensitive identifiers in the v1 dataset wire types.

pub struct BudgetDoc {
    pub epsilon_spent: f64,
}

pub fn dataset_debug_doc(noisy_degrees: &[f64]) -> BudgetDoc {
    // VIOLATION (on the parameter above): the ledger only ever accounts released draws.
    BudgetDoc { epsilon_spent: noisy_degrees.len() as f64 }
}
