//! Fixture: a pub server function returns a source-derived value unsanitized.

// lint:source(sensitive)
fn raw_statistic(n: u64) -> u64 {
    n * 7
}

pub fn statistic_endpoint(n: u64) -> u64 {
    raw_statistic(n)
}
