// FIXTURE (never compiled): the v1 dataset/budget wire types are passing near-misses — the
// ledger document carries only released accounting values (limits, spend, remainders), and
// `exactly` shares a prefix with a denied identifier but is a different token.

pub struct DatasetBudgetDoc {
    pub name: String,
    pub epsilon_limit: f64,
    pub epsilon_spent: f64,
    pub remaining_epsilon: f64,
}

pub fn refuses_next_draw(doc: &DatasetBudgetDoc, draw: f64) -> bool {
    let fits_exactly = doc.epsilon_spent + draw <= doc.epsilon_limit;
    !fits_exactly
}
