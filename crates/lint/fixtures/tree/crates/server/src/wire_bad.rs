// FIXTURE (never compiled): sensitive identifiers anywhere in server wire-type code.

pub struct EstimatePayload {
    pub value: f64,
}

pub fn build_payload(exact_triangle_count: f64) -> EstimatePayload {
    // VIOLATION (on the parameter above): the server must only ever handle released values.
    EstimatePayload { value: exact_triangle_count }
}
