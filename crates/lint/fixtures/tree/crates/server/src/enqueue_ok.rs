//! Fixture (near miss): the ledger debit dominates the enqueue in the same function.
pub fn launch_debited(state: &AppState, job_id: u64, work: JobWork) -> Result<(), DebitError> {
    state.datasets.try_debit("name", 0.5, 1e-6)?;
    state.jobs.run(job_id, work);
    Ok(())
}
