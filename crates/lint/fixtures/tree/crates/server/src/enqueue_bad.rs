//! Fixture: a job enqueued with no ledger debit anywhere in the admitting function.
pub fn launch(state: &AppState, job_id: u64, work: JobWork) {
    state.jobs.run(job_id, work);
}
