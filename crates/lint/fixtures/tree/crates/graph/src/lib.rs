// FIXTURE (never compiled): a crate root missing `#![forbid(unsafe_code)]`.
// VIOLATION: forbid-unsafe fires on line 1 of this file.

pub fn noop() {}
