//! Fixture: an annotated exact-statistic source consumed from another crate
//! (`crates/stats/src/taint_cross_bad.rs`). No findings in this file itself.

// lint:source(sensitive)
pub fn exact_wedge_count(n: u64) -> u64 {
    n * (n - 1) / 2
}
