//! A small hand-rolled Rust lexer: just enough tokenization for source-level rule scanning.
//!
//! The lexer's job is narrower than a compiler's: produce identifier / string-literal /
//! punctuation tokens with line numbers, while *discarding* comments and handling every string
//! form (plain, raw, byte, char) so that rule patterns never fire inside literal text or
//! commentary. Two comment shapes are not discarded but turned into side-channel data:
//!
//! * `// lint:allow(<rule>, reason = "...")` waiver comments, collected with their line so the
//!   scanner can suppress (and account for) findings on the same or the following line;
//! * `// lint:source(sensitive)` and `// lint:sanitizer` flow annotations, collected with
//!   their line so the parse layer ([`crate::parse`]) can attach them to the next `fn` item —
//!   the taint analysis reads sensitive sources and trusted release boundaries from these;
//! * nothing else — doc comments are ordinary comments here.
//!
//! The lexer is intentionally forgiving: a malformed file produces a best-effort token stream
//! rather than an error, because the compiler (not this tool) owns syntax diagnostics.

/// The kinds of token the rule scanner distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`for`, `HashMap`, `exact`, ...).
    Ident,
    /// A string literal; the token text is the *inner* content, quotes stripped, escapes kept
    /// verbatim (rules compare whole contents against short names that never contain escapes).
    StrLit,
    /// A single punctuation character (`.`, `:`, `!`, `(`, `{`, ...).
    Punct(char),
    /// A numeric literal (value irrelevant to every rule; kept for stream continuity).
    Number,
    /// A lifetime such as `'a` (kept distinct so `'a` is never confused with a char literal).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (see [`TokenKind`] for the string-literal convention).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Token {
    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A `// lint:allow(rule, reason = "...")` waiver parsed out of a comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule name being waived.
    pub rule: String,
    /// The mandatory human reason. `None` means the comment was malformed (missing or empty
    /// reason) — the scanner reports that as a `waiver-syntax` finding.
    pub reason: Option<String>,
    /// 1-based line the waiver comment starts on.
    pub line: usize,
}

/// What a `// lint:...` flow annotation declares about the function it precedes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationKind {
    /// `// lint:source(sensitive)` — the next `fn` returns an unreleased sensitive value
    /// (exact statistic extraction); its call results are taint sources.
    Source,
    /// `// lint:sanitizer` — the next `fn` is a declared DP release boundary; values passing
    /// through it are considered released, and sink checks are suppressed inside its body.
    Sanitizer,
}

/// A flow annotation comment, to be attached to the next `fn` by the parse layer.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// Which contract the annotation declares.
    pub kind: AnnotationKind,
    /// 1-based line the annotation comment starts on.
    pub line: usize,
}

/// The output of lexing one file.
#[derive(Debug)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Every waiver comment found, in source order.
    pub waivers: Vec<Waiver>,
    /// Every `lint:source`/`lint:sanitizer` annotation found, in source order.
    pub annotations: Vec<Annotation>,
}

/// Lexes `source` into tokens and waiver comments.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut waivers = Vec::new();
    let mut annotations = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                if let Some(w) = parse_waiver(&source[start..end], line) {
                    waivers.push(w);
                } else if let Some(a) = parse_annotation(&source[start..end], line) {
                    annotations.push(a);
                }
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nested per Rust.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (content, next, newlines) = lex_plain_string(source, i);
                tokens.push(Token { kind: TokenKind::StrLit, text: content, line });
                line += newlines;
                i = next;
            }
            'r' | 'b' if starts_string(bytes, i) => {
                let (content, next, newlines, is_char) = lex_prefixed(source, i);
                if !is_char {
                    tokens.push(Token { kind: TokenKind::StrLit, text: content, line });
                }
                line += newlines;
                i = next;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let rest = &bytes[i + 1..];
                let is_lifetime = matches!(rest.first(), Some(&b) if (b as char).is_alphabetic() || b == b'_')
                    && rest.get(1) != Some(&b'\'');
                if is_lifetime {
                    let mut end = i + 1;
                    while end < bytes.len() && is_ident_byte(bytes[end]) {
                        end += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[i..end].to_string(),
                        line,
                    });
                    i = end;
                } else {
                    // Char literal: consume to the closing quote, honouring a single escape.
                    let mut end = i + 1;
                    if bytes.get(end) == Some(&b'\\') {
                        end += 2;
                    } else {
                        // Advance one full UTF-8 character.
                        end += utf8_len(bytes.get(end).copied().unwrap_or(0));
                    }
                    while end < bytes.len() && bytes[end] != b'\'' {
                        end += 1; // tolerate oddities like '\u{1F600}'
                    }
                    i = (end + 1).min(bytes.len());
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len() && is_ident_byte(bytes[end]) {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[i..end].to_string(),
                    line,
                });
                i = end;
            }
            c if c.is_ascii_digit() => {
                let mut end = i;
                while end < bytes.len() && (is_ident_byte(bytes[end])) {
                    end += 1;
                }
                // A fraction only when `.` is followed by a digit (so `0..n` stays two dots).
                if end < bytes.len()
                    && bytes[end] == b'.'
                    && bytes.get(end + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    end += 1;
                    while end < bytes.len() && is_ident_byte(bytes[end]) {
                        end += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text: source[i..end].to_string(),
                    line,
                });
                i = end;
            }
            c => {
                tokens.push(Token { kind: TokenKind::Punct(c), text: c.to_string(), line });
                i += c.len_utf8();
            }
        }
    }
    Lexed { tokens, waivers, annotations }
}

fn is_ident_byte(b: u8) -> bool {
    (b as char).is_alphanumeric() || b == b'_'
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Does position `i` (at `r` or `b`) begin a raw/byte string rather than an identifier?
fn starts_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    // Allow the prefixes r", r#", b", br", rb"? (rb is not Rust; b, br, r only.)
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
    }
    j < bytes.len() && bytes[j] == b'"' && j > i
}

/// Lexes a plain `"..."` string starting at the opening quote. Returns (content, next index,
/// newline count inside the literal).
fn lex_plain_string(source: &str, start: usize) -> (String, usize, usize) {
    let bytes = source.as_bytes();
    let mut i = start + 1;
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // An escaped newline (string continuation) still advances the line counter.
                if bytes.get(i + 1) == Some(&b'\n') {
                    newlines += 1;
                }
                i += 2;
            }
            b'"' => return (source[start + 1..i].to_string(), i + 1, newlines),
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (source[start + 1..].to_string(), bytes.len(), newlines)
}

/// Lexes an `r"..."`, `r#"..."#`, `b"..."` or `br#"..."#` literal starting at the prefix.
/// Returns (content, next index, newline count, was_char_like) — the last is always false here
/// but kept for symmetry with the call site.
fn lex_prefixed(source: &str, start: usize) -> (String, usize, usize, bool) {
    let bytes = source.as_bytes();
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = i < bytes.len() && bytes[i] == b'r';
    if raw {
        i += 1;
    }
    let mut hashes = 0;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    debug_assert!(bytes.get(i) == Some(&b'"'));
    i += 1; // opening quote
    let content_start = i;
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if !raw => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => {
                // A raw string closes only when followed by the right number of hashes.
                let mut j = i + 1;
                let mut seen = 0;
                while seen < hashes && j < bytes.len() && bytes[j] == b'#' {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return (source[content_start..i].to_string(), j, newlines, false);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (source[content_start..].to_string(), bytes.len(), newlines, false)
}

/// Parses the body of a `//` comment as a waiver, if it is one.
fn parse_waiver(comment: &str, line: usize) -> Option<Waiver> {
    let trimmed = comment.trim_start();
    let rest = trimmed.strip_prefix("lint:allow(")?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (rule, tail) = match inner.find(',') {
        Some(comma) => (inner[..comma].trim(), inner[comma + 1..].trim()),
        None => (inner.trim(), ""),
    };
    let reason = tail
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim)
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| t.strip_suffix('"'))
        .filter(|t| !t.trim().is_empty())
        .map(str::to_string);
    Some(Waiver { rule: rule.to_string(), reason, line })
}

/// Parses the body of a `//` comment as a flow annotation, if it is one.
fn parse_annotation(comment: &str, line: usize) -> Option<Annotation> {
    let trimmed = comment.trim();
    if trimmed == "lint:sanitizer" {
        return Some(Annotation { kind: AnnotationKind::Sanitizer, line });
    }
    if trimmed == "lint:source(sensitive)" {
        return Some(Annotation { kind: AnnotationKind::Source, line });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents_from_the_ident_stream() {
        let src = r##"
            // exact is only a comment here
            /* noisy_degrees in a block comment */
            let label = "exact"; // a string literal, surfaced as StrLit not Ident
            let raw = r#"noisy_degrees"#;
            let real_ident = 1;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(ids.contains(&"label".to_string()));
        assert!(!ids.contains(&"exact".to_string()));
        assert!(!ids.contains(&"noisy_degrees".to_string()));
        let strs: Vec<String> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::StrLit)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs, vec!["exact".to_string(), "noisy_degrees".to_string()]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }").tokens;
        assert!(toks.iter().any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn char_literals_are_skipped_including_escapes() {
        let toks = lex("let c = 'x'; let nl = '\\n'; let q = '\\''; let after = 1;").tokens;
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn line_numbers_survive_multiline_strings_and_block_comments() {
        let src = "let a = \"two\nlines\";\n/* one\ntwo */\nlet b = 1;";
        let toks = lex(src).tokens;
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 5);
    }

    #[test]
    fn line_numbers_survive_escaped_newline_continuations() {
        let src = "let a = \"split \\\n string\";\nlet b = 1;";
        let toks = lex(src).tokens;
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3, "the backslash-newline continuation must count its newline");
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let toks = lex("for i in 0..n { let x = 1.5; }").tokens;
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..n must lex as two dot puncts");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Number && t.text == "1.5"));
    }

    #[test]
    fn waivers_parse_rule_and_reason() {
        let src = "let x = 1; // lint:allow(determinism-time, reason = \"metrics only\")\n";
        let lexed = lex(src);
        assert_eq!(lexed.waivers.len(), 1);
        let w = &lexed.waivers[0];
        assert_eq!(w.rule, "determinism-time");
        assert_eq!(w.reason.as_deref(), Some("metrics only"));
        assert_eq!(w.line, 1);
    }

    #[test]
    fn waiver_without_reason_is_flagged_as_malformed() {
        for bad in [
            "// lint:allow(hash-iter)",
            "// lint:allow(hash-iter, reason = \"\")",
            "// lint:allow(hash-iter, because)",
        ] {
            let lexed = lex(bad);
            assert_eq!(lexed.waivers.len(), 1, "{bad}");
            assert!(lexed.waivers[0].reason.is_none(), "{bad}");
        }
    }

    #[test]
    fn ordinary_comments_are_not_waivers() {
        assert!(lex("// lint: something else\n// allow(foo)\n").waivers.is_empty());
    }

    #[test]
    fn annotations_parse_kind_and_line() {
        let src = "// lint:source(sensitive)\nfn exact() -> u64 { 0 }\n// lint:sanitizer\nfn release() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.annotations.len(), 2);
        assert_eq!(lexed.annotations[0].kind, AnnotationKind::Source);
        assert_eq!(lexed.annotations[0].line, 1);
        assert_eq!(lexed.annotations[1].kind, AnnotationKind::Sanitizer);
        assert_eq!(lexed.annotations[1].line, 3);
    }

    #[test]
    fn near_miss_comments_are_not_annotations() {
        let src = "// lint:source(other)\n// lint:sanitize\n// a lint:sanitizer in prose\n";
        assert!(lex(src).annotations.is_empty());
    }
}
