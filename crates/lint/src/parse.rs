//! A lightweight parse layer over the token stream: per-file function symbol tables.
//!
//! This is not a Rust parser — it recognizes exactly the item shapes the flow rules need
//! (`fn` signatures with their visibility, parameter names, return-type presence and body
//! token span) and attaches the lexer's `lint:source`/`lint:sanitizer` annotations to the
//! function that follows them. Like the lexer it is forgiving: unparseable shapes yield no
//! entry rather than an error, because the compiler owns syntax diagnostics.

use crate::lexer::{Annotation, AnnotationKind, Token, TokenKind};

/// One function item recognized in a file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's bare name (no path, no generics).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the function is `pub` (any visibility restriction counts as pub here; the
    /// server pub-return sink intentionally over-approximates).
    pub is_pub: bool,
    /// Whether the signature declares a return type (`-> ...`).
    pub has_return_type: bool,
    /// Parameter binding names, `self` included when present.
    pub params: Vec<String>,
    /// Token-index span of the body: `(open_brace, close_brace)` inclusive. `None` for
    /// bodiless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// `// lint:source(sensitive)` attached: calls to this function yield tainted values.
    pub is_source: bool,
    /// `// lint:sanitizer` attached: this function is a declared DP release boundary.
    pub is_sanitizer: bool,
}

/// Index of the matching `close` for the `open` delimiter at `start` (which must hold `open`).
pub(crate) fn matching(tokens: &[Token], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Recognizes every `fn` item in the token stream and attaches annotations.
pub fn parse_fns(tokens: &[Token], annotations: &[Annotation]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else { break };
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let Some(params_open) = find_params_open(tokens, i + 2) else {
            i += 1;
            continue;
        };
        let Some(params_close) = matching(tokens, params_open, '(', ')') else {
            i += 1;
            continue;
        };
        let (has_return_type, body) = signature_tail(tokens, params_close + 1);
        fns.push(FnInfo {
            name: name_tok.text.clone(),
            line: tokens[i].line,
            is_pub: is_pub_before(tokens, i),
            has_return_type,
            params: param_names(&tokens[params_open + 1..params_close]),
            body,
            is_source: false,
            is_sanitizer: false,
        });
        // Continue scanning *inside* the body too: nested fns are rare but legal.
        i = params_close + 1;
    }
    // Attach each annotation to the first fn that starts after it.
    for ann in annotations {
        if let Some(f) = fns.iter_mut().filter(|f| f.line > ann.line).min_by_key(|f| f.line) {
            match ann.kind {
                AnnotationKind::Source => f.is_source = true,
                AnnotationKind::Sanitizer => f.is_sanitizer = true,
            }
        }
    }
    fns
}

/// Finds the opening `(` of the parameter list starting after the fn name, skipping a generic
/// parameter list. Angle depth is tracked so `fn f<F: Fn(usize) -> u64>(x: F)` finds the
/// *outer* paren; the `>` of `->` never closes an angle bracket.
fn find_params_open(tokens: &[Token], mut i: usize) -> Option<usize> {
    let mut angle = 0i64;
    while let Some(t) = tokens.get(i) {
        match t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') if !(i > 0 && tokens[i - 1].is_punct('-')) => angle -= 1,
            TokenKind::Punct('(') if angle <= 0 => return Some(i),
            TokenKind::Punct('{' | ';' | '}') if angle <= 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Walks the signature after the params' closing paren: reports whether a `->` return type is
/// declared and locates the body braces (or `None` at a terminating `;`).
fn signature_tail(tokens: &[Token], mut i: usize) -> (bool, Option<(usize, usize)>) {
    let mut has_return = false;
    let mut depth = 0i64;
    while let Some(t) = tokens.get(i) {
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct('>') if i > 0 && tokens[i - 1].is_punct('-') => has_return = true,
            TokenKind::Punct(';') if depth <= 0 => return (has_return, None),
            TokenKind::Punct('{') if depth <= 0 => {
                let close = matching(tokens, i, '{', '}').unwrap_or(tokens.len() - 1);
                return (has_return, Some((i, close)));
            }
            _ => {}
        }
        i += 1;
    }
    (has_return, None)
}

/// Extracts parameter binding names from a parameter-list token span: idents directly followed
/// by a depth-0 `:` (plus a bare `self` receiver). Type positions never contribute.
fn param_names(span: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    let mut depth = 0i64;
    for (j, t) in span.iter().enumerate() {
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct('>') if !(j > 0 && span[j - 1].is_punct('-')) => depth -= 1,
            TokenKind::Ident if t.text == "self" => names.push("self".to_string()),
            TokenKind::Ident if depth <= 0 => {
                // `name: Type` — but only before the type, never inside one: require that the
                // previous significant token is a list position (start, `,`, `mut`, `(`).
                let prev_ok = j == 0
                    || span[j - 1].is_punct(',')
                    || span[j - 1].is_punct('(')
                    || span[j - 1].is_ident("mut");
                if prev_ok
                    && span.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && !span.get(j + 2).is_some_and(|n| n.is_punct(':'))
                {
                    names.push(t.text.clone());
                }
            }
            _ => {}
        }
    }
    names.sort();
    names.dedup();
    names
}

/// True when the tokens immediately before index `i` (the `fn` keyword) carry a `pub`
/// visibility, skipping `const` / `async` / `unsafe` / `extern "..."` qualifiers and a
/// parenthesized visibility restriction like `pub(crate)`.
fn is_pub_before(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let p = &tokens[j - 1];
        let qualifier = p.is_ident("const")
            || p.is_ident("async")
            || p.is_ident("unsafe")
            || p.is_ident("extern")
            || p.kind == TokenKind::StrLit;
        if qualifier {
            j -= 1;
            continue;
        }
        if p.is_punct(')') {
            // Possibly the close of `pub(crate)` / `pub(super)` / `pub(in path)`.
            let mut k = j - 1;
            let mut depth = 0i64;
            loop {
                match tokens[k].kind {
                    TokenKind::Punct(')') => depth += 1,
                    TokenKind::Punct('(') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if k == 0 {
                    return false;
                }
                k -= 1;
            }
            return k > 0 && tokens[k - 1].is_ident("pub");
        }
        return p.is_ident("pub");
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns_of(src: &str) -> Vec<FnInfo> {
        let lexed = lex(src);
        parse_fns(&lexed.tokens, &lexed.annotations)
    }

    #[test]
    fn signatures_are_recognized_with_visibility_and_return_type() {
        let src =
            "pub fn a(x: u64) -> u64 { x }\nfn b() {}\npub(crate) const fn c() -> bool { true }\n";
        let fns = fns_of(src);
        assert_eq!(fns.len(), 3);
        assert!(fns[0].is_pub && fns[0].has_return_type && fns[0].body.is_some());
        assert_eq!(fns[0].params, vec!["x"]);
        assert!(!fns[1].is_pub && !fns[1].has_return_type);
        assert!(fns[2].is_pub && fns[2].has_return_type, "pub(crate) const fn is pub");
    }

    #[test]
    fn generic_bounds_with_fn_traits_do_not_confuse_the_param_list() {
        let src = "pub fn run<F: Fn(usize) -> u64>(f: F, n: usize) -> u64 { f(n) }\n";
        let fns = fns_of(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].params, vec!["f", "n"]);
        assert!(fns[0].has_return_type);
    }

    #[test]
    fn impl_fn_params_keep_binding_names_only() {
        let src = "fn go(f: impl Fn(&[f64]) -> f64 + Sync, bounds: &Bounds) {}\n";
        let fns = fns_of(src);
        assert_eq!(fns[0].params, vec!["bounds", "f"]);
    }

    #[test]
    fn annotations_attach_to_the_next_fn() {
        let src = "// lint:source(sensitive)\npub fn exact() -> u64 { 0 }\n\n// lint:sanitizer\n/// docs between annotation and item are fine\npub fn release(v: f64) -> f64 { v }\nfn plain() {}\n";
        let fns = fns_of(src);
        assert!(fns[0].is_source && !fns[0].is_sanitizer);
        assert!(fns[1].is_sanitizer && !fns[1].is_source);
        assert!(!fns[2].is_source && !fns[2].is_sanitizer);
    }

    #[test]
    fn bodiless_trait_methods_have_no_body_span() {
        let fns = fns_of("trait T { fn f(&self) -> u64; }\n");
        assert_eq!(fns.len(), 1);
        assert!(fns[0].body.is_none());
        assert_eq!(fns[0].params, vec!["self"]);
    }
}
