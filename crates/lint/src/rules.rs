//! The rule table and the per-file scanner.
//!
//! Every rule here encodes a contract the workspace already enforces dynamically somewhere —
//! the `(ε, δ)` release boundary, the identical-seed ⇒ identical-bytes determinism pins, the
//! observability no-feedback invariant — lifted to a static check over every line of every
//! crate. See the README "Static analysis" section for the user-facing rule table.
//!
//! Scoping vocabulary used below:
//!
//! * **compute crates** — the deterministic kernel/algorithm crates
//!   ([`DETERMINISTIC_CRATES`]): everything whose outputs must be byte-identical for a fixed
//!   seed regardless of thread count or wall clock. `obs`, `server` and `bench` are *not*
//!   compute crates (they own time, threads and metric reads by design).
//! * **test code** — files under `tests/`, `benches/` or `examples/`, plus `#[cfg(test)]` /
//!   `#[test]`-gated regions of library files. Most determinism rules skip test code: tests
//!   pin the contracts with their own machinery (timeouts, thread spawns, metric assertions).
//! * **waiver** — `// lint:allow(<rule>, reason = "...")` on the finding's line or the line
//!   directly above. Waivers are counted and reported; a waiver that matches nothing is itself
//!   a finding (`stale-waiver`), so they cannot silently rot.

use crate::callgraph::{build_context, Context};
use crate::lexer::{lex, Token, TokenKind, Waiver};
use crate::parse::{matching, parse_fns, FnInfo};
use crate::taint;

/// Identifiers that hold *sensitive* (unreleased) values: the exact triangle count and the raw
/// noisy degree sequence, under every name the workspace uses for them. These must never reach
/// a serialization context — the `(ε, δ)`-DP release contract of Mir & Wright §3. The wire
/// boundary (`crates/server/src/api.rs`) enumerates what *is* released; everything here is the
/// complement that `impl_json_struct!`-family macros and manual `Json` construction must not
/// touch.
pub const SENSITIVE_IDENTS: &[&str] =
    &["exact", "noisy_degrees", "exact_triangle_count", "raw_noisy_degrees"];

/// Crates whose outputs must be deterministic: byte-identical for a fixed seed, independent of
/// thread count, wall clock and iteration order. `par` is included — its *results* are part of
/// the determinism contract even though it owns the worker pool (its latency instrumentation
/// sites carry explicit waivers).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "graph",
    "dp",
    "stats",
    "estimate",
    "optim",
    "skg",
    "linalg",
    "core",
    "json",
    "rand",
    "datasets",
    "par",
    "par-queue",
];

/// The workspace lint table (root `Cargo.toml` `[workspace.lints]`): lints that must never be
/// re-allowed with an `#[allow(...)]` attribute anywhere in the tree. Test code gets its
/// unwrap/expect latitude from `clippy.toml` (`allow-unwrap-in-tests`), never from attributes.
pub const WORKSPACE_LINT_TABLE: &[&str] =
    &["unwrap_used", "dbg_macro", "todo", "unimplemented", "unused_must_use", "unsafe_code"];

/// The serialization macros of `kronpriv-json` whose invocations define the release boundary.
pub(crate) const SERIALIZE_MACROS: &[&str] = &[
    "impl_json_struct",
    "impl_json_struct_lenient",
    "impl_json_struct_with_defaults",
    "impl_to_json_struct",
];

/// Hash-collection methods whose call implies iteration in storage order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// The deterministic executor's entry points: the first closure argument after the `Work`
/// hint runs on worker threads and must be a pure `Fn + Sync` map.
const EXECUTOR_ENTRY_POINTS: &[&str] = &["map_reduce", "try_map_reduce", "fold_reduce"];

/// Interior-mutability type names that must not appear inside a parallel closure: shared
/// mutation through them is exactly the cross-thread feedback the chunk-order contract bans.
const INTERIOR_MUT_TYPES: &[&str] = &["RefCell", "Cell"];

/// Method names that enqueue a job for execution in `crates/server`; each must be dominated
/// by a ledger debit in the same function (the PR 9 debit-before-execute invariant).
const ENQUEUE_METHODS: &[&str] = &["run", "submit"];

/// The ledger debit calls that license an enqueue.
const DEBIT_CALLS: &[&str] = &["try_debit", "force_debit"];

/// Every enforceable rule name, in the order findings are reported.
pub const RULES: &[&str] = &[
    "privacy-serialize",
    "privacy-taint",
    "forbid-unsafe",
    "hash-iter",
    "determinism-time",
    "determinism-thread",
    "allow-attr",
    "obs-read",
    "executor-capture",
    "executor-work-hint",
    "debit-before-enqueue",
];

/// One violation (or would-be violation, before waiver matching).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name from [`RULES`] (or `waiver-syntax` / `stale-waiver` for waiver hygiene).
    pub rule: String,
    /// Human-readable description of the violation.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
}

/// A finding that was suppressed by an inline waiver (still reported, as accounting).
#[derive(Debug, Clone)]
pub struct WaivedFinding {
    /// The suppressed finding.
    pub finding: Finding,
    /// The waiver's mandatory reason text.
    pub reason: String,
}

/// The scan result for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unwaived findings — these fail the gate.
    pub findings: Vec<Finding>,
    /// Waived findings — reported for accounting, do not fail the gate.
    pub waived: Vec<WaivedFinding>,
}

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Library/binary source under a `src/` directory.
    Lib,
    /// Integration tests under a `tests/` directory.
    Test,
    /// Bench targets under a `benches/` directory.
    Bench,
    /// Examples under an `examples/` directory.
    Example,
    /// Repository tooling (`scripts/*.rs`).
    Tooling,
}

/// The classification of one workspace-relative path.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// The owning crate directory name under `crates/`, or `None` for the root package.
    pub crate_name: Option<String>,
    /// The target category.
    pub category: Category,
}

/// Classifies a workspace-relative, `/`-separated path. Returns `None` for paths the scanner
/// ignores entirely.
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest) = if parts.first() == Some(&"crates") && parts.len() >= 3 {
        (Some(parts[1].to_string()), &parts[2..])
    } else {
        (None, &parts[..])
    };
    let category = match rest.first().copied() {
        Some("src") => Category::Lib,
        Some("tests") => Category::Test,
        Some("benches") => Category::Bench,
        Some("examples") => Category::Example,
        Some("scripts") => Category::Tooling,
        _ => return None,
    };
    Some(FileClass { crate_name, category })
}

/// Scans one file's source text under its workspace-relative path, building a single-file
/// flow context (intra-file taint works; cross-file taint needs [`scan_source_with`]).
pub fn scan_source(rel: &str, source: &str) -> FileReport {
    let ctx = build_context(&[(rel.to_string(), source.to_string())]);
    scan_source_with(rel, source, &ctx)
}

/// Scans one file against a prebuilt workspace flow context ([`build_context`]).
pub fn scan_source_with(rel: &str, source: &str, ctx: &Context) -> FileReport {
    let Some(class) = classify(rel) else {
        return FileReport::default();
    };
    let lexed = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let test_spans = test_spans(&lexed.tokens);
    let fns = parse_fns(&lexed.tokens, &lexed.annotations);
    let mut scan = Scan {
        rel,
        class,
        tokens: &lexed.tokens,
        lines: &lines,
        test_spans,
        fns,
        ctx,
        raw: Vec::new(),
    };
    scan.privacy_serialize();
    scan.privacy_taint();
    scan.forbid_unsafe();
    scan.hash_iter();
    scan.determinism_time();
    scan.determinism_thread();
    scan.allow_attr();
    scan.obs_read();
    scan.executor_contracts();
    scan.debit_before_enqueue();
    apply_waivers(scan.raw, &lexed.waivers, rel, &lines)
}

/// Matches findings against waivers, producing the final per-file report plus waiver-hygiene
/// findings (malformed, unknown-rule and stale waivers).
fn apply_waivers(raw: Vec<Finding>, waivers: &[Waiver], rel: &str, lines: &[&str]) -> FileReport {
    let mut used = vec![false; waivers.len()];
    let mut report = FileReport::default();
    for finding in raw {
        let matched = waivers.iter().enumerate().find(|(_, w)| {
            w.reason.is_some()
                && w.rule == finding.rule
                && (w.line == finding.line || w.line + 1 == finding.line)
        });
        match matched {
            Some((i, w)) => {
                used[i] = true;
                report
                    .waived
                    .push(WaivedFinding { finding, reason: w.reason.clone().unwrap_or_default() });
            }
            None => report.findings.push(finding),
        }
    }
    for (i, w) in waivers.iter().enumerate() {
        let snippet = snippet_at(lines, w.line);
        if w.reason.is_none() {
            report.findings.push(Finding {
                file: rel.to_string(),
                line: w.line,
                rule: "waiver-syntax".to_string(),
                message: format!(
                    "malformed waiver for rule `{}`: a non-empty reason = \"...\" is required",
                    w.rule
                ),
                snippet,
            });
        } else if !RULES.contains(&w.rule.as_str()) {
            report.findings.push(Finding {
                file: rel.to_string(),
                line: w.line,
                rule: "waiver-syntax".to_string(),
                message: format!("waiver names unknown rule `{}`", w.rule),
                snippet,
            });
        } else if !used[i] {
            report.findings.push(Finding {
                file: rel.to_string(),
                line: w.line,
                rule: "stale-waiver".to_string(),
                message: format!(
                    "waiver for `{}` matches no finding on this or the next line — delete it",
                    w.rule
                ),
                snippet,
            });
        }
    }
    report.findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
    report
}

fn snippet_at(lines: &[&str], line: usize) -> String {
    lines.get(line.saturating_sub(1)).map_or(String::new(), |l| l.trim().to_string())
}

/// Line spans covered by `#[cfg(test)]`- or `#[test]`-gated items.
fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = match_test_attr(tokens, i) {
            let start_line = tokens[i].line;
            let end = skip_item(tokens, after_attr);
            let end_line = tokens.get(end.saturating_sub(1)).map_or(start_line, |t| t.line);
            spans.push((start_line, end_line));
            i = end;
        } else {
            i += 1;
        }
    }
    spans
}

/// If tokens\[i..\] begins a `#[cfg(test)]`-style or `#[test]` attribute, returns the index
/// just past the closing `]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !(tokens.get(i)?.is_punct('#') && tokens.get(i + 1)?.is_punct('[')) {
        return None;
    }
    let close = matching(tokens, i + 1, '[', ']')?;
    let inner = &tokens[i + 2..close];
    let is_test = match inner.first() {
        Some(t) if t.is_ident("test") && inner.len() == 1 => true,
        Some(t) if t.is_ident("cfg") => inner.iter().any(|t| t.is_ident("test")),
        _ => false,
    };
    is_test.then_some(close + 1)
}

/// Skips one item starting at `i` (past its attributes): ends after the first `;` outside any
/// braces, or after the matching `}` of the item's body. Intermediate attributes are consumed.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Consume any further attributes on the item.
    while tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        match matching(tokens, i + 1, '[', ']') {
            Some(close) => i = close + 1,
            None => return tokens.len(),
        }
    }
    let mut paren = 0i64;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => paren += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => paren -= 1,
            TokenKind::Punct(';') if paren == 0 => return i + 1,
            TokenKind::Punct('{') if paren == 0 => {
                return matching(tokens, i, '{', '}').map_or(tokens.len(), |j| j + 1);
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Splits a call's argument-list token span (`lo..close`, parens excluded) at top-level
/// commas, returning `(start, end)` token ranges. Closure parameter pipes are tracked so the
/// commas in `|acc: u64, partial|` never split; a `|` opens closure parameters only in
/// argument-initial position (start of an argument or after `move`), so bitwise-or in
/// argument expressions is ignored.
fn split_args(tokens: &[Token], lo: usize, close: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut depth = 0i64;
    let mut start = lo;
    let mut in_pipes = false;
    for j in lo..close {
        match tokens[j].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
            TokenKind::Punct('|') if depth == 0 => {
                if in_pipes {
                    in_pipes = false;
                } else if j == start || tokens[j - 1].is_ident("move") {
                    in_pipes = true;
                }
            }
            TokenKind::Punct(',') if depth == 0 && !in_pipes => {
                args.push((start, j));
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < close {
        args.push((start, close));
    }
    args
}

struct Scan<'a> {
    rel: &'a str,
    class: FileClass,
    tokens: &'a [Token],
    lines: &'a [&'a str],
    test_spans: Vec<(usize, usize)>,
    fns: Vec<FnInfo>,
    ctx: &'a Context,
    raw: Vec<Finding>,
}

impl Scan<'_> {
    fn in_test(&self, line: usize) -> bool {
        self.class.category != Category::Lib
            || self.test_spans.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    fn crate_is(&self, name: &str) -> bool {
        self.class.crate_name.as_deref() == Some(name)
    }

    fn in_deterministic_crate(&self) -> bool {
        self.class.crate_name.as_deref().is_some_and(|c| DETERMINISTIC_CRATES.contains(&c))
    }

    fn push(&mut self, rule: &str, line: usize, message: String) {
        // One finding per (rule, line): a single `use std::time::Instant;` is one violation.
        if self.raw.iter().any(|f| f.rule == rule && f.line == line) {
            return;
        }
        self.raw.push(Finding {
            file: self.rel.to_string(),
            line,
            rule: rule.to_string(),
            message,
            snippet: snippet_at(self.lines, line),
        });
    }

    /// Does an ident path `a::b` start at `i`? (`parts` are the idents; `::` is implied.)
    fn path_at(&self, i: usize, parts: &[&str]) -> bool {
        let mut j = i;
        for (n, part) in parts.iter().enumerate() {
            if !self.tokens.get(j).is_some_and(|t| t.is_ident(part)) {
                return false;
            }
            j += 1;
            if n + 1 < parts.len() {
                if !(self.tokens.get(j).is_some_and(|t| t.is_punct(':'))
                    && self.tokens.get(j + 1).is_some_and(|t| t.is_punct(':')))
                {
                    return false;
                }
                j += 2;
            }
        }
        true
    }

    /// Rule `privacy-serialize`: sensitive identifiers must never reach a serialization
    /// context — an `impl_json_struct!`-family invocation (except the `redacted:` block of
    /// `impl_json_struct_redacted!`), a string literal used as a manual JSON key, or anywhere
    /// in the server's wire-type code.
    fn privacy_serialize(&mut self) {
        // (a) Serialization-macro invocations, every category: the release boundary is the
        // macro, wherever it is written.
        let mut i = 0;
        while i < self.tokens.len() {
            let t = &self.tokens[i];
            let is_macro = t.kind == TokenKind::Ident
                && SERIALIZE_MACROS.contains(&t.text.as_str())
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
            let is_redacted = t.is_ident("impl_json_struct_redacted")
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if is_macro || is_redacted {
                if let Some(close) = matching(self.tokens, i + 2, '(', ')') {
                    if is_redacted {
                        self.check_redacted_invocation(i + 2, close);
                    } else {
                        self.check_span_for_sensitive(i + 2, close, &t.text.clone());
                    }
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
        }
        // (b) A string literal that *is* a sensitive name — the manual `Json` construction
        // path (`Json::Object(vec![("exact".into(), ...)])`). Test code may name the fields to
        // assert their absence; the lint crate's own deny table is likewise exempt.
        if !self.crate_is("lint") {
            for t in self.tokens {
                if t.kind == TokenKind::StrLit
                    && SENSITIVE_IDENTS.contains(&t.text.as_str())
                    && !self.in_test(t.line)
                {
                    let (line, text) = (t.line, t.text.clone());
                    self.push(
                        "privacy-serialize",
                        line,
                        format!(
                            "string literal \"{text}\" names a sensitive value — manual JSON \
                             construction of unreleased fields is forbidden"
                        ),
                    );
                }
            }
        }
        // (c) Inside the server's wire-type code no sensitive identifier may appear at all:
        // the server only ever sees released values.
        if self.crate_is("server") {
            for t in self.tokens {
                if t.kind == TokenKind::Ident
                    && SENSITIVE_IDENTS.contains(&t.text.as_str())
                    && !self.in_test(t.line)
                {
                    let (line, text) = (t.line, t.text.clone());
                    self.push(
                        "privacy-serialize",
                        line,
                        format!(
                            "sensitive identifier `{text}` in server wire-type code — the \
                             server must only handle released values"
                        ),
                    );
                }
            }
        }
    }

    fn check_span_for_sensitive(&mut self, open: usize, close: usize, macro_name: &str) {
        for j in open..close {
            let t = &self.tokens[j];
            if t.kind == TokenKind::Ident && SENSITIVE_IDENTS.contains(&t.text.as_str()) {
                let (line, text) = (t.line, t.text.clone());
                self.push(
                    "privacy-serialize",
                    line,
                    format!(
                        "sensitive field `{text}` inside `{macro_name}!` — unreleased values \
                         must never serialize (use impl_json_struct_redacted!)"
                    ),
                );
            }
        }
    }

    /// `impl_json_struct_redacted!` is the sanctioned carrier for sensitive in-memory fields:
    /// only its `released:` block serializes, so only that block is checked.
    fn check_redacted_invocation(&mut self, open: usize, close: usize) {
        let mut j = open;
        while j < close {
            if self.tokens[j].is_ident("released")
                && self.tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && self.tokens.get(j + 2).is_some_and(|t| t.is_punct('{'))
            {
                if let Some(block_close) = matching(self.tokens, j + 2, '{', '}') {
                    self.check_span_for_sensitive(j + 3, block_close, "impl_json_struct_redacted");
                    j = block_close + 1;
                    continue;
                }
            }
            j += 1;
        }
    }

    /// Rule `forbid-unsafe`: every crate root must carry `#![forbid(unsafe_code)]`.
    fn forbid_unsafe(&mut self) {
        let parts: Vec<&str> = self.rel.split('/').collect();
        let is_crate_root = matches!(
            parts.as_slice(),
            ["crates", _, "src", "lib.rs" | "main.rs"] | ["src", "workspace_lib.rs"]
        );
        if !is_crate_root {
            return;
        }
        for i in 0..self.tokens.len() {
            if self.tokens[i].is_punct('#')
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && self.tokens.get(i + 2).is_some_and(|t| t.is_punct('['))
                && self.tokens.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
                && self.tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
                && self.tokens.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
            {
                return;
            }
        }
        self.push(
            "forbid-unsafe",
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }

    /// Rule `hash-iter`: no iteration over `HashMap`/`HashSet` storage order outside test
    /// code. Keyed access (`get`, `entry`, `contains_key`, `len`) is fine — only
    /// order-revealing traversal is flagged.
    fn hash_iter(&mut self) {
        let tracked = self.typed_idents(&["HashMap", "HashSet"]);
        if tracked.is_empty() {
            return;
        }
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            if t.kind != TokenKind::Ident || !tracked.contains(&t.text) || self.in_test(t.line) {
                continue;
            }
            // `name.iter()` / `.keys()` / ... — iteration methods on a hash-typed binding.
            if self.tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && self
                    .tokens
                    .get(i + 2)
                    .is_some_and(|m| HASH_ITER_METHODS.contains(&m.text.as_str()))
                && self.tokens.get(i + 3).is_some_and(|p| p.is_punct('('))
            {
                let (line, name, method) =
                    (t.line, t.text.clone(), self.tokens[i + 2].text.clone());
                self.push(
                    "hash-iter",
                    line,
                    format!(
                        "`{name}.{method}()` iterates a hash collection in storage order — \
                         use a sorted/Vec-based form or a BTreeMap"
                    ),
                );
            }
            // `for x in name {` / `for x in &name {` — direct for-loop traversal.
            if i >= 1 {
                let mut j = i - 1;
                while j > 0 && (self.tokens[j].is_punct('&') || self.tokens[j].is_ident("mut")) {
                    j -= 1;
                }
                if self.tokens[j].is_ident("in")
                    && self.tokens.get(i + 1).is_some_and(|n| n.is_punct('{'))
                {
                    let (line, name) = (t.line, t.text.clone());
                    self.push(
                        "hash-iter",
                        line,
                        format!(
                            "`for ... in {name}` traverses a hash collection in storage order — \
                             use a sorted/Vec-based form or a BTreeMap"
                        ),
                    );
                }
            }
        }
    }

    /// Rule `determinism-time`: no wall-clock access in compute crates. The clock is an input
    /// the determinism contract does not admit; `obs`/`server`/`bench` own all timing.
    fn determinism_time(&mut self) {
        if !self.in_deterministic_crate() || self.class.category != Category::Lib {
            return;
        }
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            if self.in_test(t.line) {
                continue;
            }
            if t.is_ident("Instant") || t.is_ident("SystemTime") {
                let (line, text) = (t.line, t.text.clone());
                self.push(
                    "determinism-time",
                    line,
                    format!("`{text}` in a compute crate — wall-clock reads break determinism"),
                );
            } else if self.path_at(i, &["std", "time"]) {
                let line = t.line;
                self.push(
                    "determinism-time",
                    line,
                    "`std::time` in a compute crate — wall-clock reads break determinism"
                        .to_string(),
                );
            }
        }
    }

    /// Rule `determinism-thread`: all thread creation and hardware-parallelism discovery lives
    /// in `crates/par` — the one place the byte-identical-for-any-thread-count contract is
    /// engineered. Everything else (the server's HTTP pool included) must either borrow the
    /// executor or carry an explicit waiver.
    fn determinism_thread(&mut self) {
        if self.crate_is("par") || self.class.category != Category::Lib {
            return;
        }
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            if self.in_test(t.line) {
                continue;
            }
            let hit = if self.path_at(i, &["thread", "spawn"]) {
                Some("thread::spawn")
            } else if self.path_at(i, &["thread", "Builder"]) {
                Some("thread::Builder")
            } else if t.is_ident("available_parallelism") {
                Some("available_parallelism")
            } else {
                None
            };
            if let Some(what) = hit {
                let line = t.line;
                self.push(
                    "determinism-thread",
                    line,
                    format!(
                        "`{what}` outside crates/par — thread management belongs to the \
                         deterministic executor"
                    ),
                );
            }
        }
    }

    /// Rule `allow-attr`: the workspace lint table must not be re-allowed anywhere.
    fn allow_attr(&mut self) {
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            if !t.is_ident("allow") || !self.tokens.get(i + 1).is_some_and(|p| p.is_punct('(')) {
                continue;
            }
            let Some(close) = matching(self.tokens, i + 1, '(', ')') else { continue };
            for j in i + 2..close {
                let inner = &self.tokens[j];
                if inner.kind == TokenKind::Ident
                    && WORKSPACE_LINT_TABLE.contains(&inner.text.as_str())
                {
                    let (line, text) = (t.line, inner.text.clone());
                    self.push(
                        "allow-attr",
                        line,
                        format!(
                            "`#[allow({text})]` re-allows a workspace-table lint — fix the \
                             code instead (tests get unwrap latitude from clippy.toml)"
                        ),
                    );
                }
            }
        }
    }

    /// Rule `obs-read`: compute code may *write* metrics (counters, spans, progress events)
    /// but must never read them back — rendering the registry or calling a getter from a
    /// compute path would let instrumentation feed back into results.
    fn obs_read(&mut self) {
        if !self.in_deterministic_crate() || self.class.category != Category::Lib {
            return;
        }
        let metric_idents = self.typed_idents(&["Counter", "Gauge", "Histogram"]);
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            if self.in_test(t.line) {
                continue;
            }
            // `.render(` / `::render(` — rendering the registry.
            if t.is_ident("render")
                && i >= 1
                && (self.tokens[i - 1].is_punct('.') || self.tokens[i - 1].is_punct(':'))
                && self.tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
            {
                let line = t.line;
                self.push(
                    "obs-read",
                    line,
                    "registry render in a compute crate — observability is write-only from \
                     compute paths"
                        .to_string(),
                );
            }
            // Histogram read-side accessors.
            if (t.is_ident("bucket_counts") || t.is_ident("sum_ns") || t.is_ident("bucket_bound"))
                && self.tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
            {
                let (line, text) = (t.line, t.text.clone());
                self.push(
                    "obs-read",
                    line,
                    format!("`{text}()` reads a histogram from a compute crate"),
                );
            }
            // `metric.get()` on a binding typed Counter/Gauge/Histogram.
            if t.kind == TokenKind::Ident
                && metric_idents.contains(&t.text)
                && self.tokens.get(i + 1).is_some_and(|p| p.is_punct('.'))
                && self.tokens.get(i + 2).is_some_and(|m| m.is_ident("get"))
                && self.tokens.get(i + 3).is_some_and(|p| p.is_punct('('))
            {
                let (line, name) = (t.line, t.text.clone());
                self.push(
                    "obs-read",
                    line,
                    format!("`{name}.get()` reads a metric from a compute crate"),
                );
            }
            // `registry.counter(...).get()` — reading through a freshly-fetched handle.
            if (t.is_ident("counter") || t.is_ident("gauge") || t.is_ident("histogram"))
                && self.tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
            {
                if let Some(close) = matching(self.tokens, i + 1, '(', ')') {
                    if self.tokens.get(close + 1).is_some_and(|p| p.is_punct('.'))
                        && self.tokens.get(close + 2).is_some_and(|m| m.is_ident("get"))
                        && self.tokens.get(close + 3).is_some_and(|p| p.is_punct('('))
                    {
                        let line = self.tokens[close + 2].line;
                        self.push(
                            "obs-read",
                            line,
                            "metric getter chained off the registry in a compute crate".to_string(),
                        );
                    }
                }
            }
        }
    }

    /// Rule `privacy-taint`: flow-aware companion to `privacy-serialize`. Sensitive *sources*
    /// (deny-list names, `// lint:source(sensitive)` functions, and helpers with inferred
    /// tainted returns) propagate through `let` bindings and assignments; a finding fires when
    /// a tainted value reaches a *sink* — a serialization-macro invocation, manual `Json`
    /// construction, or a `pub` return in `crates/server` — without passing a declared
    /// `// lint:sanitizer` release function. This is what catches the rename the deny list
    /// cannot: `let t = exact_triangle_count; Json::Number(t as f64)`.
    fn privacy_taint(&mut self) {
        if self.class.category != Category::Lib {
            return;
        }
        let fns = self.fns.clone();
        for f in &fns {
            let Some((open, close)) = f.body else { continue };
            // A declared sanitizer body is the trusted boundary: it handles raw values by
            // definition, so sink checks are suppressed inside it.
            if f.is_sanitizer || self.ctx.is_sanitizer(&f.name) {
                continue;
            }
            let analysis = taint::analyze(self.tokens, f, self.ctx);
            let excised = taint::excised_mask(self.tokens, open + 1, close, self.ctx);
            let mut i = open + 1;
            while i < close {
                let t = &self.tokens[i];
                let is_macro = t.kind == TokenKind::Ident
                    && SERIALIZE_MACROS.contains(&t.text.as_str())
                    && self.tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
                if is_macro {
                    if let Some(mclose) = matching(self.tokens, i + 2, '(', ')') {
                        self.taint_sink_span(i + 2, mclose, &analysis, &excised, true);
                        i = mclose + 1;
                        continue;
                    }
                }
                let is_json = t.is_ident("Json")
                    && self.tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && self.tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                    && self.tokens.get(i + 3).is_some_and(|n| n.kind == TokenKind::Ident)
                    && self.tokens.get(i + 4).is_some_and(|n| n.is_punct('('));
                if is_json {
                    if let Some(jclose) = matching(self.tokens, i + 4, '(', ')') {
                        self.taint_sink_span(i + 5, jclose, &analysis, &excised, false);
                        i += 5;
                        continue;
                    }
                }
                i += 1;
            }
            // Deny-listed spellings in server code are already rule-c `privacy-serialize`
            // findings; the flow sink only adds the leaks that arrive through renames or
            // call returns.
            if self.crate_is("server")
                && f.is_pub
                && f.has_return_type
                && analysis.return_tainted
                && !analysis.return_deny_listed
            {
                let line = analysis.return_line.unwrap_or(f.line);
                if !self.in_test(line) {
                    let name = f.name.clone();
                    self.push(
                        "privacy-taint",
                        line,
                        format!(
                            "`pub fn {name}` in crates/server returns a value derived from a \
                             sensitive source without passing a declared sanitizer"
                        ),
                    );
                }
            }
        }
    }

    /// Reports every tainted, non-excised token inside a sink span. Bare deny-list names are
    /// skipped where `privacy-serialize` already owns them (serialization macros everywhere,
    /// and all of `crates/server`) so the two rules never double-report one leak.
    fn taint_sink_span(
        &mut self,
        lo: usize,
        hi: usize,
        analysis: &taint::FnTaint,
        excised: &taint::Excised,
        in_macro: bool,
    ) {
        for j in lo..hi.min(self.tokens.len()) {
            let t = &self.tokens[j];
            if excised.contains(j)
                || self.in_test(t.line)
                || !taint::token_tainted(self.tokens, j, &analysis.tainted, self.ctx)
            {
                continue;
            }
            let deny_listed = SENSITIVE_IDENTS.contains(&t.text.as_str());
            if deny_listed && (in_macro || self.crate_is("server")) {
                continue;
            }
            let (line, text) = (t.line, t.text.clone());
            let what = if in_macro { "a serialization macro" } else { "manual Json construction" };
            self.push(
                "privacy-taint",
                line,
                format!(
                    "`{text}` carries a sensitive value into {what} without passing a declared \
                     sanitizer — route it through the DP release functions in crates/dp"
                ),
            );
        }
    }

    /// Rules `executor-capture` and `executor-work-hint`: the executor-contract family.
    ///
    /// Closures in the parallel (`Fn + Sync`) positions of `map_reduce`/`try_map_reduce`/
    /// `fold_reduce` must not mutably borrow captured state or touch interior-mutability
    /// types — cross-thread feedback would break the byte-identical-for-any-thread-count
    /// contract. The sequential fold/merge positions are exempt (they run on the calling
    /// thread, in chunk order). Separately, the cost-hint argument must visibly carry a
    /// `Work` value so new kernels cannot silently opt out of work-aware cutoffs.
    fn executor_contracts(&mut self) {
        if self.class.category != Category::Lib {
            return;
        }
        let work_typed = self.typed_idents(&["Work"]);
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            let is_entry = t.kind == TokenKind::Ident
                && EXECUTOR_ENTRY_POINTS.contains(&t.text.as_str())
                && i > 0
                && self.tokens[i - 1].is_punct('.')
                && self.tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
            if !is_entry || self.in_test(t.line) {
                continue;
            }
            let Some(close) = matching(self.tokens, i + 1, '(', ')') else { continue };
            let args = split_args(self.tokens, i + 2, close);
            let name = t.text.clone();
            if let Some(&(lo, hi)) = args.get(2) {
                let hinted = (lo..hi).any(|j| {
                    let a = &self.tokens[j];
                    a.kind == TokenKind::Ident
                        && (a.text.to_ascii_lowercase().contains("work")
                            || work_typed.contains(&a.text))
                });
                if !hinted {
                    let line = self.tokens[lo].line;
                    self.push(
                        "executor-work-hint",
                        line,
                        format!(
                            "`{name}` call without a visible `Work` cost hint — kernel entry \
                             points must carry one for work-aware sequential cutoffs"
                        ),
                    );
                }
            }
            let parallel_args: &[usize] = if name == "fold_reduce" { &[3, 4] } else { &[3] };
            for &ai in parallel_args {
                if let Some(&(lo, hi)) = args.get(ai) {
                    self.parallel_closure_captures(lo, hi, &name);
                }
            }
        }
    }

    /// Checks one parallel-position argument: if it is a closure literal, its body must not
    /// mutably borrow anything it did not bind itself, nor mention an interior-mutability or
    /// atomic type.
    fn parallel_closure_captures(&mut self, lo: usize, hi: usize, entry: &str) {
        let mut j = lo;
        if self.tokens.get(j).is_some_and(|t| t.is_ident("move")) {
            j += 1;
        }
        if !self.tokens.get(j).is_some_and(|t| t.is_punct('|')) {
            return; // not a closure literal (a named fn or forwarded binding) — out of scope
        }
        let mut params_close = j + 1;
        while params_close < hi && !self.tokens[params_close].is_punct('|') {
            params_close += 1;
        }
        if params_close >= hi {
            return;
        }
        // Closure-locals: parameter bindings plus `let`/`for` bindings in the body. `&mut` on
        // these is fine (per-chunk state); `&mut` on anything else is a captured borrow.
        let mut locals: Vec<String> = Vec::new();
        for k in j + 1..params_close {
            let t = &self.tokens[k];
            if t.kind == TokenKind::Ident && !(k > j + 1 && self.tokens[k - 1].is_punct(':')) {
                locals.push(t.text.clone());
            }
        }
        let body = (params_close + 1, hi);
        for k in body.0..body.1 {
            if self.tokens[k].is_ident("let") {
                let mut m = k + 1;
                while m < body.1 {
                    let t = &self.tokens[m];
                    if t.is_punct('=') || t.is_punct(';') {
                        break;
                    }
                    if t.kind == TokenKind::Ident
                        && !matches!(t.text.as_str(), "mut" | "ref" | "box")
                        && !(m > 0 && self.tokens[m - 1].is_punct(':'))
                    {
                        locals.push(t.text.clone());
                    }
                    m += 1;
                }
            }
            if self.tokens[k].is_ident("for") {
                let mut m = k + 1;
                while m < body.1 && !self.tokens[m].is_ident("in") {
                    if self.tokens[m].kind == TokenKind::Ident {
                        locals.push(self.tokens[m].text.clone());
                    }
                    m += 1;
                }
            }
        }
        for k in body.0..body.1 {
            let t = &self.tokens[k];
            if t.kind == TokenKind::Ident
                && (INTERIOR_MUT_TYPES.contains(&t.text.as_str()) || t.text.starts_with("Atomic"))
            {
                let (line, text) = (t.line, t.text.clone());
                self.push(
                    "executor-capture",
                    line,
                    format!(
                        "`{text}` inside a parallel closure passed to `{entry}` — \
                         interior-mutability shared across worker threads breaks the \
                         deterministic chunk-order contract"
                    ),
                );
            }
            if t.is_punct('&') && self.tokens.get(k + 1).is_some_and(|n| n.is_ident("mut")) {
                let mut target = k + 2;
                while self.tokens.get(target).is_some_and(|x| x.is_punct('*')) {
                    target += 1;
                }
                if let Some(tok) = self.tokens.get(target) {
                    if tok.kind == TokenKind::Ident && !locals.contains(&tok.text) {
                        let (line, text) = (tok.line, tok.text.clone());
                        self.push(
                            "executor-capture",
                            line,
                            format!(
                                "`&mut {text}` borrows captured state inside a parallel \
                                 closure passed to `{entry}` — parallel closures must be \
                                 `Fn + Sync` over their environment"
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Rule `debit-before-enqueue`: in `crates/server`, a `jobs.run(...)`/`jobs.submit(...)`
    /// enqueue must be preceded in the same function by a ledger debit (`try_debit` /
    /// `force_debit`) — the static form of PR 9's debit-before-execute accountant invariant.
    fn debit_before_enqueue(&mut self) {
        if !self.crate_is("server") || self.class.category != Category::Lib {
            return;
        }
        let bodies: Vec<(usize, usize)> = self.fns.iter().filter_map(|f| f.body).collect();
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            let is_enqueue = t.is_ident("jobs")
                && self.tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && self.tokens.get(i + 2).is_some_and(|n| {
                    n.kind == TokenKind::Ident && ENQUEUE_METHODS.contains(&n.text.as_str())
                })
                && self.tokens.get(i + 3).is_some_and(|n| n.is_punct('('));
            if !is_enqueue || self.in_test(t.line) {
                continue;
            }
            let Some(&(open, _)) = bodies.iter().find(|&&(o, c)| (o..=c).contains(&i)) else {
                continue;
            };
            let debited = (open..i).any(|j| {
                let d = &self.tokens[j];
                d.kind == TokenKind::Ident
                    && DEBIT_CALLS.contains(&d.text.as_str())
                    && self.tokens.get(j + 1).is_some_and(|n| n.is_punct('('))
            });
            if !debited {
                let (line, method) = (self.tokens[i + 2].line, self.tokens[i + 2].text.clone());
                self.push(
                    "debit-before-enqueue",
                    line,
                    format!(
                        "`jobs.{method}(...)` without a preceding ledger debit in the same \
                         function — the accountant contract requires debit-before-execute"
                    ),
                );
            }
        }
    }

    /// Identifiers in this file whose declared type (ascription, field, parameter) or
    /// constructor mentions one of `type_names`. Heuristic but source-local, which keeps the
    /// tool fast and offline; fixtures pin the recognized declaration shapes.
    fn typed_idents(&self, type_names: &[&str]) -> Vec<String> {
        let mut found: Vec<String> = Vec::new();
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            // Bindings declared inside test regions never taint non-test code: the rules that
            // consume this list all skip test lines, so a `#[cfg(test)]`-local `m: HashMap`
            // must not turn an unrelated non-test `m` into a tracked hash binding.
            if t.kind != TokenKind::Ident || self.in_test(t.line) {
                continue;
            }
            // `name: ...Type...` up to a shape terminator (single colon only: `a::b` paths
            // must not bind `a`).
            if self.tokens.get(i + 1).is_some_and(|p| p.is_punct(':'))
                && !self.tokens.get(i + 2).is_some_and(|p| p.is_punct(':'))
                && (i == 0 || !self.tokens[i - 1].is_punct(':'))
            {
                let mut j = i + 2;
                let mut angle = 0i64;
                while let Some(tok) = self.tokens.get(j) {
                    match tok.kind {
                        TokenKind::Punct('<') => angle += 1,
                        TokenKind::Punct('>') => angle -= 1,
                        TokenKind::Punct(';' | '=' | '{' | '}') => break,
                        TokenKind::Punct(',' | ')') if angle <= 0 => break,
                        TokenKind::Ident if type_names.contains(&tok.text.as_str()) => {
                            found.push(t.text.clone());
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // `name = Type::...` (constructor binding, e.g. `let m = HashMap::new()`).
            if self.tokens.get(i + 1).is_some_and(|p| p.is_punct('='))
                && self.tokens.get(i + 2).is_some_and(|n| {
                    n.kind == TokenKind::Ident && type_names.contains(&n.text.as_str())
                })
            {
                found.push(t.text.clone());
            }
        }
        found.sort();
        found.dedup();
        found
    }
}
