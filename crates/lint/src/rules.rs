//! The rule table and the per-file scanner.
//!
//! Every rule here encodes a contract the workspace already enforces dynamically somewhere —
//! the `(ε, δ)` release boundary, the identical-seed ⇒ identical-bytes determinism pins, the
//! observability no-feedback invariant — lifted to a static check over every line of every
//! crate. See the README "Static analysis" section for the user-facing rule table.
//!
//! Scoping vocabulary used below:
//!
//! * **compute crates** — the deterministic kernel/algorithm crates
//!   ([`DETERMINISTIC_CRATES`]): everything whose outputs must be byte-identical for a fixed
//!   seed regardless of thread count or wall clock. `obs`, `server` and `bench` are *not*
//!   compute crates (they own time, threads and metric reads by design).
//! * **test code** — files under `tests/`, `benches/` or `examples/`, plus `#[cfg(test)]` /
//!   `#[test]`-gated regions of library files. Most determinism rules skip test code: tests
//!   pin the contracts with their own machinery (timeouts, thread spawns, metric assertions).
//! * **waiver** — `// lint:allow(<rule>, reason = "...")` on the finding's line or the line
//!   directly above. Waivers are counted and reported; a waiver that matches nothing is itself
//!   a finding (`stale-waiver`), so they cannot silently rot.

use crate::lexer::{lex, Token, TokenKind, Waiver};

/// Identifiers that hold *sensitive* (unreleased) values: the exact triangle count and the raw
/// noisy degree sequence, under every name the workspace uses for them. These must never reach
/// a serialization context — the `(ε, δ)`-DP release contract of Mir & Wright §3. The wire
/// boundary (`crates/server/src/api.rs`) enumerates what *is* released; everything here is the
/// complement that `impl_json_struct!`-family macros and manual `Json` construction must not
/// touch.
pub const SENSITIVE_IDENTS: &[&str] =
    &["exact", "noisy_degrees", "exact_triangle_count", "raw_noisy_degrees"];

/// Crates whose outputs must be deterministic: byte-identical for a fixed seed, independent of
/// thread count, wall clock and iteration order. `par` is included — its *results* are part of
/// the determinism contract even though it owns the worker pool (its latency instrumentation
/// sites carry explicit waivers).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "graph",
    "dp",
    "stats",
    "estimate",
    "optim",
    "skg",
    "linalg",
    "core",
    "json",
    "rand",
    "datasets",
    "par",
    "par-queue",
];

/// The workspace lint table (root `Cargo.toml` `[workspace.lints]`): lints that must never be
/// re-allowed with an `#[allow(...)]` attribute anywhere in the tree. Test code gets its
/// unwrap/expect latitude from `clippy.toml` (`allow-unwrap-in-tests`), never from attributes.
pub const WORKSPACE_LINT_TABLE: &[&str] =
    &["unwrap_used", "dbg_macro", "todo", "unimplemented", "unused_must_use", "unsafe_code"];

/// The serialization macros of `kronpriv-json` whose invocations define the release boundary.
const SERIALIZE_MACROS: &[&str] = &[
    "impl_json_struct",
    "impl_json_struct_lenient",
    "impl_json_struct_with_defaults",
    "impl_to_json_struct",
];

/// Hash-collection methods whose call implies iteration in storage order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Every enforceable rule name, in the order findings are reported.
pub const RULES: &[&str] = &[
    "privacy-serialize",
    "forbid-unsafe",
    "hash-iter",
    "determinism-time",
    "determinism-thread",
    "allow-attr",
    "obs-read",
];

/// One violation (or would-be violation, before waiver matching).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name from [`RULES`] (or `waiver-syntax` / `stale-waiver` for waiver hygiene).
    pub rule: String,
    /// Human-readable description of the violation.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
}

/// A finding that was suppressed by an inline waiver (still reported, as accounting).
#[derive(Debug, Clone)]
pub struct WaivedFinding {
    /// The suppressed finding.
    pub finding: Finding,
    /// The waiver's mandatory reason text.
    pub reason: String,
}

/// The scan result for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unwaived findings — these fail the gate.
    pub findings: Vec<Finding>,
    /// Waived findings — reported for accounting, do not fail the gate.
    pub waived: Vec<WaivedFinding>,
}

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Library/binary source under a `src/` directory.
    Lib,
    /// Integration tests under a `tests/` directory.
    Test,
    /// Bench targets under a `benches/` directory.
    Bench,
    /// Examples under an `examples/` directory.
    Example,
    /// Repository tooling (`scripts/*.rs`).
    Tooling,
}

/// The classification of one workspace-relative path.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// The owning crate directory name under `crates/`, or `None` for the root package.
    pub crate_name: Option<String>,
    /// The target category.
    pub category: Category,
}

/// Classifies a workspace-relative, `/`-separated path. Returns `None` for paths the scanner
/// ignores entirely.
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest) = if parts.first() == Some(&"crates") && parts.len() >= 3 {
        (Some(parts[1].to_string()), &parts[2..])
    } else {
        (None, &parts[..])
    };
    let category = match rest.first().copied() {
        Some("src") => Category::Lib,
        Some("tests") => Category::Test,
        Some("benches") => Category::Bench,
        Some("examples") => Category::Example,
        Some("scripts") => Category::Tooling,
        _ => return None,
    };
    Some(FileClass { crate_name, category })
}

/// Scans one file's source text under its workspace-relative path.
pub fn scan_source(rel: &str, source: &str) -> FileReport {
    let Some(class) = classify(rel) else {
        return FileReport::default();
    };
    let lexed = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let test_spans = test_spans(&lexed.tokens);
    let mut scan =
        Scan { rel, class, tokens: &lexed.tokens, lines: &lines, test_spans, raw: Vec::new() };
    scan.privacy_serialize();
    scan.forbid_unsafe();
    scan.hash_iter();
    scan.determinism_time();
    scan.determinism_thread();
    scan.allow_attr();
    scan.obs_read();
    apply_waivers(scan.raw, &lexed.waivers, rel, &lines)
}

/// Matches findings against waivers, producing the final per-file report plus waiver-hygiene
/// findings (malformed, unknown-rule and stale waivers).
fn apply_waivers(raw: Vec<Finding>, waivers: &[Waiver], rel: &str, lines: &[&str]) -> FileReport {
    let mut used = vec![false; waivers.len()];
    let mut report = FileReport::default();
    for finding in raw {
        let matched = waivers.iter().enumerate().find(|(_, w)| {
            w.reason.is_some()
                && w.rule == finding.rule
                && (w.line == finding.line || w.line + 1 == finding.line)
        });
        match matched {
            Some((i, w)) => {
                used[i] = true;
                report
                    .waived
                    .push(WaivedFinding { finding, reason: w.reason.clone().unwrap_or_default() });
            }
            None => report.findings.push(finding),
        }
    }
    for (i, w) in waivers.iter().enumerate() {
        let snippet = snippet_at(lines, w.line);
        if w.reason.is_none() {
            report.findings.push(Finding {
                file: rel.to_string(),
                line: w.line,
                rule: "waiver-syntax".to_string(),
                message: format!(
                    "malformed waiver for rule `{}`: a non-empty reason = \"...\" is required",
                    w.rule
                ),
                snippet,
            });
        } else if !RULES.contains(&w.rule.as_str()) {
            report.findings.push(Finding {
                file: rel.to_string(),
                line: w.line,
                rule: "waiver-syntax".to_string(),
                message: format!("waiver names unknown rule `{}`", w.rule),
                snippet,
            });
        } else if !used[i] {
            report.findings.push(Finding {
                file: rel.to_string(),
                line: w.line,
                rule: "stale-waiver".to_string(),
                message: format!(
                    "waiver for `{}` matches no finding on this or the next line — delete it",
                    w.rule
                ),
                snippet,
            });
        }
    }
    report.findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
    report
}

fn snippet_at(lines: &[&str], line: usize) -> String {
    lines.get(line.saturating_sub(1)).map_or(String::new(), |l| l.trim().to_string())
}

/// Line spans covered by `#[cfg(test)]`- or `#[test]`-gated items.
fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = match_test_attr(tokens, i) {
            let start_line = tokens[i].line;
            let end = skip_item(tokens, after_attr);
            let end_line = tokens.get(end.saturating_sub(1)).map_or(start_line, |t| t.line);
            spans.push((start_line, end_line));
            i = end;
        } else {
            i += 1;
        }
    }
    spans
}

/// If tokens\[i..\] begins a `#[cfg(test)]`-style or `#[test]` attribute, returns the index
/// just past the closing `]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !(tokens.get(i)?.is_punct('#') && tokens.get(i + 1)?.is_punct('[')) {
        return None;
    }
    let close = matching(tokens, i + 1, '[', ']')?;
    let inner = &tokens[i + 2..close];
    let is_test = match inner.first() {
        Some(t) if t.is_ident("test") && inner.len() == 1 => true,
        Some(t) if t.is_ident("cfg") => inner.iter().any(|t| t.is_ident("test")),
        _ => false,
    };
    is_test.then_some(close + 1)
}

/// Index of the matching `close` for the `open` delimiter at `start` (which must hold `open`).
fn matching(tokens: &[Token], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Skips one item starting at `i` (past its attributes): ends after the first `;` outside any
/// braces, or after the matching `}` of the item's body. Intermediate attributes are consumed.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Consume any further attributes on the item.
    while tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        match matching(tokens, i + 1, '[', ']') {
            Some(close) => i = close + 1,
            None => return tokens.len(),
        }
    }
    let mut paren = 0i64;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => paren += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => paren -= 1,
            TokenKind::Punct(';') if paren == 0 => return i + 1,
            TokenKind::Punct('{') if paren == 0 => {
                return matching(tokens, i, '{', '}').map_or(tokens.len(), |j| j + 1);
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

struct Scan<'a> {
    rel: &'a str,
    class: FileClass,
    tokens: &'a [Token],
    lines: &'a [&'a str],
    test_spans: Vec<(usize, usize)>,
    raw: Vec<Finding>,
}

impl Scan<'_> {
    fn in_test(&self, line: usize) -> bool {
        self.class.category != Category::Lib
            || self.test_spans.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    fn crate_is(&self, name: &str) -> bool {
        self.class.crate_name.as_deref() == Some(name)
    }

    fn in_deterministic_crate(&self) -> bool {
        self.class.crate_name.as_deref().is_some_and(|c| DETERMINISTIC_CRATES.contains(&c))
    }

    fn push(&mut self, rule: &str, line: usize, message: String) {
        // One finding per (rule, line): a single `use std::time::Instant;` is one violation.
        if self.raw.iter().any(|f| f.rule == rule && f.line == line) {
            return;
        }
        self.raw.push(Finding {
            file: self.rel.to_string(),
            line,
            rule: rule.to_string(),
            message,
            snippet: snippet_at(self.lines, line),
        });
    }

    /// Does an ident path `a::b` start at `i`? (`parts` are the idents; `::` is implied.)
    fn path_at(&self, i: usize, parts: &[&str]) -> bool {
        let mut j = i;
        for (n, part) in parts.iter().enumerate() {
            if !self.tokens.get(j).is_some_and(|t| t.is_ident(part)) {
                return false;
            }
            j += 1;
            if n + 1 < parts.len() {
                if !(self.tokens.get(j).is_some_and(|t| t.is_punct(':'))
                    && self.tokens.get(j + 1).is_some_and(|t| t.is_punct(':')))
                {
                    return false;
                }
                j += 2;
            }
        }
        true
    }

    /// Rule `privacy-serialize`: sensitive identifiers must never reach a serialization
    /// context — an `impl_json_struct!`-family invocation (except the `redacted:` block of
    /// `impl_json_struct_redacted!`), a string literal used as a manual JSON key, or anywhere
    /// in the server's wire-type code.
    fn privacy_serialize(&mut self) {
        // (a) Serialization-macro invocations, every category: the release boundary is the
        // macro, wherever it is written.
        let mut i = 0;
        while i < self.tokens.len() {
            let t = &self.tokens[i];
            let is_macro = t.kind == TokenKind::Ident
                && SERIALIZE_MACROS.contains(&t.text.as_str())
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
            let is_redacted = t.is_ident("impl_json_struct_redacted")
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if is_macro || is_redacted {
                if let Some(close) = matching(self.tokens, i + 2, '(', ')') {
                    if is_redacted {
                        self.check_redacted_invocation(i + 2, close);
                    } else {
                        self.check_span_for_sensitive(i + 2, close, &t.text.clone());
                    }
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
        }
        // (b) A string literal that *is* a sensitive name — the manual `Json` construction
        // path (`Json::Object(vec![("exact".into(), ...)])`). Test code may name the fields to
        // assert their absence; the lint crate's own deny table is likewise exempt.
        if !self.crate_is("lint") {
            for t in self.tokens {
                if t.kind == TokenKind::StrLit
                    && SENSITIVE_IDENTS.contains(&t.text.as_str())
                    && !self.in_test(t.line)
                {
                    let (line, text) = (t.line, t.text.clone());
                    self.push(
                        "privacy-serialize",
                        line,
                        format!(
                            "string literal \"{text}\" names a sensitive value — manual JSON \
                             construction of unreleased fields is forbidden"
                        ),
                    );
                }
            }
        }
        // (c) Inside the server's wire-type code no sensitive identifier may appear at all:
        // the server only ever sees released values.
        if self.crate_is("server") {
            for t in self.tokens {
                if t.kind == TokenKind::Ident
                    && SENSITIVE_IDENTS.contains(&t.text.as_str())
                    && !self.in_test(t.line)
                {
                    let (line, text) = (t.line, t.text.clone());
                    self.push(
                        "privacy-serialize",
                        line,
                        format!(
                            "sensitive identifier `{text}` in server wire-type code — the \
                             server must only handle released values"
                        ),
                    );
                }
            }
        }
    }

    fn check_span_for_sensitive(&mut self, open: usize, close: usize, macro_name: &str) {
        for j in open..close {
            let t = &self.tokens[j];
            if t.kind == TokenKind::Ident && SENSITIVE_IDENTS.contains(&t.text.as_str()) {
                let (line, text) = (t.line, t.text.clone());
                self.push(
                    "privacy-serialize",
                    line,
                    format!(
                        "sensitive field `{text}` inside `{macro_name}!` — unreleased values \
                         must never serialize (use impl_json_struct_redacted!)"
                    ),
                );
            }
        }
    }

    /// `impl_json_struct_redacted!` is the sanctioned carrier for sensitive in-memory fields:
    /// only its `released:` block serializes, so only that block is checked.
    fn check_redacted_invocation(&mut self, open: usize, close: usize) {
        let mut j = open;
        while j < close {
            if self.tokens[j].is_ident("released")
                && self.tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && self.tokens.get(j + 2).is_some_and(|t| t.is_punct('{'))
            {
                if let Some(block_close) = matching(self.tokens, j + 2, '{', '}') {
                    self.check_span_for_sensitive(j + 3, block_close, "impl_json_struct_redacted");
                    j = block_close + 1;
                    continue;
                }
            }
            j += 1;
        }
    }

    /// Rule `forbid-unsafe`: every crate root must carry `#![forbid(unsafe_code)]`.
    fn forbid_unsafe(&mut self) {
        let parts: Vec<&str> = self.rel.split('/').collect();
        let is_crate_root = matches!(
            parts.as_slice(),
            ["crates", _, "src", "lib.rs" | "main.rs"] | ["src", "workspace_lib.rs"]
        );
        if !is_crate_root {
            return;
        }
        for i in 0..self.tokens.len() {
            if self.tokens[i].is_punct('#')
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && self.tokens.get(i + 2).is_some_and(|t| t.is_punct('['))
                && self.tokens.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
                && self.tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
                && self.tokens.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
            {
                return;
            }
        }
        self.push(
            "forbid-unsafe",
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }

    /// Rule `hash-iter`: no iteration over `HashMap`/`HashSet` storage order outside test
    /// code. Keyed access (`get`, `entry`, `contains_key`, `len`) is fine — only
    /// order-revealing traversal is flagged.
    fn hash_iter(&mut self) {
        let tracked = self.typed_idents(&["HashMap", "HashSet"]);
        if tracked.is_empty() {
            return;
        }
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            if t.kind != TokenKind::Ident || !tracked.contains(&t.text) || self.in_test(t.line) {
                continue;
            }
            // `name.iter()` / `.keys()` / ... — iteration methods on a hash-typed binding.
            if self.tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && self
                    .tokens
                    .get(i + 2)
                    .is_some_and(|m| HASH_ITER_METHODS.contains(&m.text.as_str()))
                && self.tokens.get(i + 3).is_some_and(|p| p.is_punct('('))
            {
                let (line, name, method) =
                    (t.line, t.text.clone(), self.tokens[i + 2].text.clone());
                self.push(
                    "hash-iter",
                    line,
                    format!(
                        "`{name}.{method}()` iterates a hash collection in storage order — \
                         use a sorted/Vec-based form or a BTreeMap"
                    ),
                );
            }
            // `for x in name {` / `for x in &name {` — direct for-loop traversal.
            if i >= 1 {
                let mut j = i - 1;
                while j > 0 && (self.tokens[j].is_punct('&') || self.tokens[j].is_ident("mut")) {
                    j -= 1;
                }
                if self.tokens[j].is_ident("in")
                    && self.tokens.get(i + 1).is_some_and(|n| n.is_punct('{'))
                {
                    let (line, name) = (t.line, t.text.clone());
                    self.push(
                        "hash-iter",
                        line,
                        format!(
                            "`for ... in {name}` traverses a hash collection in storage order — \
                             use a sorted/Vec-based form or a BTreeMap"
                        ),
                    );
                }
            }
        }
    }

    /// Rule `determinism-time`: no wall-clock access in compute crates. The clock is an input
    /// the determinism contract does not admit; `obs`/`server`/`bench` own all timing.
    fn determinism_time(&mut self) {
        if !self.in_deterministic_crate() || self.class.category != Category::Lib {
            return;
        }
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            if self.in_test(t.line) {
                continue;
            }
            if t.is_ident("Instant") || t.is_ident("SystemTime") {
                let (line, text) = (t.line, t.text.clone());
                self.push(
                    "determinism-time",
                    line,
                    format!("`{text}` in a compute crate — wall-clock reads break determinism"),
                );
            } else if self.path_at(i, &["std", "time"]) {
                let line = t.line;
                self.push(
                    "determinism-time",
                    line,
                    "`std::time` in a compute crate — wall-clock reads break determinism"
                        .to_string(),
                );
            }
        }
    }

    /// Rule `determinism-thread`: all thread creation and hardware-parallelism discovery lives
    /// in `crates/par` — the one place the byte-identical-for-any-thread-count contract is
    /// engineered. Everything else (the server's HTTP pool included) must either borrow the
    /// executor or carry an explicit waiver.
    fn determinism_thread(&mut self) {
        if self.crate_is("par") || self.class.category != Category::Lib {
            return;
        }
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            if self.in_test(t.line) {
                continue;
            }
            let hit = if self.path_at(i, &["thread", "spawn"]) {
                Some("thread::spawn")
            } else if self.path_at(i, &["thread", "Builder"]) {
                Some("thread::Builder")
            } else if t.is_ident("available_parallelism") {
                Some("available_parallelism")
            } else {
                None
            };
            if let Some(what) = hit {
                let line = t.line;
                self.push(
                    "determinism-thread",
                    line,
                    format!(
                        "`{what}` outside crates/par — thread management belongs to the \
                         deterministic executor"
                    ),
                );
            }
        }
    }

    /// Rule `allow-attr`: the workspace lint table must not be re-allowed anywhere.
    fn allow_attr(&mut self) {
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            if !t.is_ident("allow") || !self.tokens.get(i + 1).is_some_and(|p| p.is_punct('(')) {
                continue;
            }
            let Some(close) = matching(self.tokens, i + 1, '(', ')') else { continue };
            for j in i + 2..close {
                let inner = &self.tokens[j];
                if inner.kind == TokenKind::Ident
                    && WORKSPACE_LINT_TABLE.contains(&inner.text.as_str())
                {
                    let (line, text) = (t.line, inner.text.clone());
                    self.push(
                        "allow-attr",
                        line,
                        format!(
                            "`#[allow({text})]` re-allows a workspace-table lint — fix the \
                             code instead (tests get unwrap latitude from clippy.toml)"
                        ),
                    );
                }
            }
        }
    }

    /// Rule `obs-read`: compute code may *write* metrics (counters, spans, progress events)
    /// but must never read them back — rendering the registry or calling a getter from a
    /// compute path would let instrumentation feed back into results.
    fn obs_read(&mut self) {
        if !self.in_deterministic_crate() || self.class.category != Category::Lib {
            return;
        }
        let metric_idents = self.typed_idents(&["Counter", "Gauge", "Histogram"]);
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            if self.in_test(t.line) {
                continue;
            }
            // `.render(` / `::render(` — rendering the registry.
            if t.is_ident("render")
                && i >= 1
                && (self.tokens[i - 1].is_punct('.') || self.tokens[i - 1].is_punct(':'))
                && self.tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
            {
                let line = t.line;
                self.push(
                    "obs-read",
                    line,
                    "registry render in a compute crate — observability is write-only from \
                     compute paths"
                        .to_string(),
                );
            }
            // Histogram read-side accessors.
            if (t.is_ident("bucket_counts") || t.is_ident("sum_ns") || t.is_ident("bucket_bound"))
                && self.tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
            {
                let (line, text) = (t.line, t.text.clone());
                self.push(
                    "obs-read",
                    line,
                    format!("`{text}()` reads a histogram from a compute crate"),
                );
            }
            // `metric.get()` on a binding typed Counter/Gauge/Histogram.
            if t.kind == TokenKind::Ident
                && metric_idents.contains(&t.text)
                && self.tokens.get(i + 1).is_some_and(|p| p.is_punct('.'))
                && self.tokens.get(i + 2).is_some_and(|m| m.is_ident("get"))
                && self.tokens.get(i + 3).is_some_and(|p| p.is_punct('('))
            {
                let (line, name) = (t.line, t.text.clone());
                self.push(
                    "obs-read",
                    line,
                    format!("`{name}.get()` reads a metric from a compute crate"),
                );
            }
            // `registry.counter(...).get()` — reading through a freshly-fetched handle.
            if (t.is_ident("counter") || t.is_ident("gauge") || t.is_ident("histogram"))
                && self.tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
            {
                if let Some(close) = matching(self.tokens, i + 1, '(', ')') {
                    if self.tokens.get(close + 1).is_some_and(|p| p.is_punct('.'))
                        && self.tokens.get(close + 2).is_some_and(|m| m.is_ident("get"))
                        && self.tokens.get(close + 3).is_some_and(|p| p.is_punct('('))
                    {
                        let line = self.tokens[close + 2].line;
                        self.push(
                            "obs-read",
                            line,
                            "metric getter chained off the registry in a compute crate".to_string(),
                        );
                    }
                }
            }
        }
    }

    /// Identifiers in this file whose declared type (ascription, field, parameter) or
    /// constructor mentions one of `type_names`. Heuristic but source-local, which keeps the
    /// tool fast and offline; fixtures pin the recognized declaration shapes.
    fn typed_idents(&self, type_names: &[&str]) -> Vec<String> {
        let mut found: Vec<String> = Vec::new();
        for i in 0..self.tokens.len() {
            let t = &self.tokens[i];
            // Bindings declared inside test regions never taint non-test code: the rules that
            // consume this list all skip test lines, so a `#[cfg(test)]`-local `m: HashMap`
            // must not turn an unrelated non-test `m` into a tracked hash binding.
            if t.kind != TokenKind::Ident || self.in_test(t.line) {
                continue;
            }
            // `name: ...Type...` up to a shape terminator (single colon only: `a::b` paths
            // must not bind `a`).
            if self.tokens.get(i + 1).is_some_and(|p| p.is_punct(':'))
                && !self.tokens.get(i + 2).is_some_and(|p| p.is_punct(':'))
                && (i == 0 || !self.tokens[i - 1].is_punct(':'))
            {
                let mut j = i + 2;
                let mut angle = 0i64;
                while let Some(tok) = self.tokens.get(j) {
                    match tok.kind {
                        TokenKind::Punct('<') => angle += 1,
                        TokenKind::Punct('>') => angle -= 1,
                        TokenKind::Punct(';' | '=' | '{' | '}') => break,
                        TokenKind::Punct(',' | ')') if angle <= 0 => break,
                        TokenKind::Ident if type_names.contains(&tok.text.as_str()) => {
                            found.push(t.text.clone());
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // `name = Type::...` (constructor binding, e.g. `let m = HashMap::new()`).
            if self.tokens.get(i + 1).is_some_and(|p| p.is_punct('='))
                && self.tokens.get(i + 2).is_some_and(|n| {
                    n.kind == TokenKind::Ident && type_names.contains(&n.text.as_str())
                })
            {
                found.push(t.text.clone());
            }
        }
        found.sort();
        found.dedup();
        found
    }
}
