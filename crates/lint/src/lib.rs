//! `kronpriv-lint` — an offline invariant checker for the kronpriv workspace.
//!
//! The workspace's value rests on three contracts that are otherwise only enforced
//! dynamically, by example-based tests:
//!
//! 1. **Privacy flow** — sensitive values (the exact triangle count, the raw noisy degree
//!    sequence) must never serialize: the `(ε, δ)`-DP release boundary of Mir & Wright §3.
//! 2. **Determinism** — identical seeds produce byte-identical results for any thread count:
//!    no hash-order iteration, no wall clock, no ad-hoc threads in compute crates.
//! 3. **Observability no-feedback** — compute paths may *write* metrics but never read them.
//!
//! This crate lifts those contracts to a static check over every line of every crate: a small
//! hand-rolled lexer ([`lexer`]) feeds a rule scanner ([`rules`]) — no `syn`, no network, no
//! `rustc` invocation, so the tool runs in milliseconds as a CI hard gate. Violations can be
//! waived inline with `// lint:allow(<rule>, reason = "...")`; waivers are counted, reported
//! and themselves linted (a waiver that matches nothing is a finding).
//!
//! Run it as `cargo run -p kronpriv-lint -- --workspace-root .` (add `--json` for
//! machine-readable findings). The fixture corpus under `crates/lint/fixtures/` is a miniature
//! workspace of deliberate violations that the test suite requires the tool to flag.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{
    classify, scan_source, Category, FileClass, FileReport, Finding, WaivedFinding,
    DETERMINISTIC_CRATES, RULES, SENSITIVE_IDENTS, WORKSPACE_LINT_TABLE,
};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The aggregate result of scanning a workspace tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived findings across all files, in (file, line) order. Non-empty ⇒ the gate fails.
    pub findings: Vec<Finding>,
    /// Waived findings with their reasons, for the accounting summary.
    pub waived: Vec<WaivedFinding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Directories never scanned: build output, VCS metadata, and the lint tool's own fixture
/// corpus of deliberate violations (scanned only by its test suite, never by the real gate).
fn skip_dir(rel: &str) -> bool {
    rel == "target" || rel == ".git" || rel == "crates/lint/fixtures" || rel.starts_with('.')
}

/// Recursively collects workspace-relative paths of `.rs` files under `root`, sorted so scan
/// output is deterministic.
fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel_dir) = stack.pop() {
        let abs = root.join(&rel_dir);
        for entry in fs::read_dir(&abs)? {
            let entry = entry?;
            let name = entry.file_name();
            let rel = if rel_dir.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                rel_dir.join(&name)
            };
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if !skip_dir(&rel_str) {
                    stack.push(rel);
                }
            } else if ty.is_file() && rel_str.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans every `.rs` file in the workspace rooted at `root` and aggregates the per-file
/// reports. Fails only on I/O errors; findings are data, not errors.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for rel in collect_rs_files(root)? {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if rules::classify(&rel_str).is_none() {
            continue;
        }
        let source = fs::read_to_string(root.join(&rel))?;
        let file_report = scan_source(&rel_str, &source);
        report.findings.extend(file_report.findings);
        report.waived.extend(file_report.waived);
        report.files_scanned += 1;
    }
    report.findings.sort_by(|a, b| a.file.cmp(&b.file).then_with(|| a.line.cmp(&b.line)));
    report.waived.sort_by(|a, b| {
        a.finding.file.cmp(&b.finding.file).then_with(|| a.finding.line.cmp(&b.finding.line))
    });
    Ok(report)
}

impl Report {
    /// Renders the human-readable text report (findings, waiver accounting, summary line).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    {}\n",
                f.file, f.line, f.rule, f.message, f.snippet
            ));
        }
        if !self.waived.is_empty() {
            out.push_str(&format!("waivers in effect: {}\n", self.waived.len()));
            for w in &self.waived {
                out.push_str(&format!(
                    "    {}:{} [{}] reason: {}\n",
                    w.finding.file, w.finding.line, w.finding.rule, w.reason
                ));
            }
        }
        out.push_str(&format!(
            "kronpriv-lint: {} files scanned, {} finding(s), {} waiver(s)\n",
            self.files_scanned,
            self.findings.len(),
            self.waived.len()
        ));
        out
    }

    /// Renders the machine-readable JSON report consumed by the CI annotation step.
    pub fn to_json(&self) -> kronpriv_json::Json {
        use kronpriv_json::Json;
        let finding_doc = |f: &Finding| {
            Json::Object(vec![
                ("file".to_string(), Json::String(f.file.clone())),
                ("line".to_string(), Json::Number(f.line as f64)),
                ("rule".to_string(), Json::String(f.rule.clone())),
                ("message".to_string(), Json::String(f.message.clone())),
                ("snippet".to_string(), Json::String(f.snippet.clone())),
            ])
        };
        Json::Object(vec![
            ("files_scanned".to_string(), Json::Number(self.files_scanned as f64)),
            ("findings".to_string(), Json::Array(self.findings.iter().map(finding_doc).collect())),
            (
                "waivers".to_string(),
                Json::Array(
                    self.waived
                        .iter()
                        .map(|w| {
                            let mut doc = match finding_doc(&w.finding) {
                                Json::Object(fields) => fields,
                                _ => unreachable!("finding_doc always returns an object"),
                            };
                            doc.push(("reason".to_string(), Json::String(w.reason.clone())));
                            Json::Object(doc)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}
