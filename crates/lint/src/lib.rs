//! `kronpriv-lint` — an offline invariant checker for the kronpriv workspace.
//!
//! The workspace's value rests on three contracts that are otherwise only enforced
//! dynamically, by example-based tests:
//!
//! 1. **Privacy flow** — sensitive values (the exact triangle count, the raw noisy degree
//!    sequence) must never serialize: the `(ε, δ)`-DP release boundary of Mir & Wright §3.
//! 2. **Determinism** — identical seeds produce byte-identical results for any thread count:
//!    no hash-order iteration, no wall clock, no ad-hoc threads in compute crates.
//! 3. **Observability no-feedback** — compute paths may *write* metrics but never read them.
//!
//! v1 enforced these with a lexer ([`lexer`]) and per-line rules ([`rules`]). v2 adds a
//! flow-aware layer: a lightweight parse pass ([`parse`]) builds per-file function tables, a
//! best-effort workspace call graph ([`callgraph`]) merges `// lint:source(sensitive)` /
//! `// lint:sanitizer` annotations with inferred return taint, and a taint analysis
//! ([`taint`]) tracks sensitive *values* (not spellings) from sources through renames,
//! assignments and helper returns to serialization sinks. Executor-contract rules
//! (`executor-capture`, `executor-work-hint`) and the accountant rule
//! (`debit-before-enqueue`) statically pin the `kronpriv-par` and PR 9 ledger contracts.
//! Still no `syn`, no network, no `rustc` invocation — the whole gate runs in milliseconds,
//! and the workspace walk itself runs on `kronpriv-par` with a fixed path-order reduction, so
//! report bytes are identical for any thread count.
//!
//! Violations can be waived inline with `// lint:allow(<rule>, reason = "...")`; waivers are
//! counted, reported and themselves linted (a waiver that matches nothing is a finding).
//!
//! Run it as `cargo run -p kronpriv-lint -- --workspace-root .` (add `--json` for
//! machine-readable findings, `--sarif` for SARIF 2.1.0). The fixture corpus under
//! `crates/lint/fixtures/` is a miniature workspace of deliberate violations that the test
//! suite requires the tool to flag.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod taint;

pub use callgraph::{build_context, Context, FnFacts};
pub use rules::{
    classify, scan_source, scan_source_with, Category, FileClass, FileReport, Finding,
    WaivedFinding, DETERMINISTIC_CRATES, RULES, SENSITIVE_IDENTS, WORKSPACE_LINT_TABLE,
};

use kronpriv_par::{Executor, Work};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The aggregate result of scanning a workspace tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived findings across all files, in (file, line, rule) order. Non-empty ⇒ the gate
    /// fails.
    pub findings: Vec<Finding>,
    /// Waived findings with their reasons, for the accounting summary.
    pub waived: Vec<WaivedFinding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Directories never scanned: build output, VCS metadata, and the lint tool's own fixture
/// corpus of deliberate violations (scanned only by its test suite, never by the real gate).
fn skip_dir(rel: &str) -> bool {
    rel == "target" || rel == ".git" || rel == "crates/lint/fixtures" || rel.starts_with('.')
}

/// Recursively collects workspace-relative paths of `.rs` files under `root`, sorted so scan
/// output is deterministic.
fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel_dir) = stack.pop() {
        let abs = root.join(&rel_dir);
        for entry in fs::read_dir(&abs)? {
            let entry = entry?;
            let name = entry.file_name();
            let rel = if rel_dir.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                rel_dir.join(&name)
            };
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if !skip_dir(&rel_str) {
                    stack.push(rel);
                }
            } else if ty.is_file() && rel_str.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Per-file scan cost: lexing plus a handful of token passes over a few-KB source file.
const FILE_SCAN_WORK: Work = Work::per_item_ns(200_000);

/// Scans every `.rs` file in the workspace rooted at `root` on an automatically sized
/// executor. See [`scan_workspace_with`].
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    scan_workspace_with(root, &Executor::auto())
}

/// Scans every `.rs` file in the workspace rooted at `root` and aggregates the per-file
/// reports. Fails only on I/O errors; findings are data, not errors.
///
/// Two phases: a sequential read pass collects every classifiable file and builds the
/// workspace flow context (annotation-seeded call-graph facts closed under return-taint
/// propagation), then the per-file rule scan fans out over `exec`. Files are sorted and the
/// chunk-order reduction concatenates per-file reports in that fixed path order, so the
/// resulting report — down to the byte — is independent of the thread count.
pub fn scan_workspace_with(root: &Path, exec: &Executor) -> io::Result<Report> {
    let mut files: Vec<(String, String)> = Vec::new();
    for rel in collect_rs_files(root)? {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if rules::classify(&rel_str).is_none() {
            continue;
        }
        let source = fs::read_to_string(root.join(&rel))?;
        files.push((rel_str, source));
    }
    let ctx = build_context(&files);

    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    let per_file = exec.map_reduce(
        files.len(),
        4,
        FILE_SCAN_WORK,
        |range| {
            files[range]
                .iter()
                .map(|(rel, source)| scan_source_with(rel, source, &ctx))
                .collect::<Vec<FileReport>>()
        },
        |mut acc: Vec<FileReport>, chunk| {
            acc.extend(chunk);
            acc
        },
        Vec::with_capacity(files.len()),
    );
    for file_report in per_file {
        report.findings.extend(file_report.findings);
        report.waived.extend(file_report.waived);
    }
    report.findings.sort_by(|a, b| {
        a.file.cmp(&b.file).then_with(|| a.line.cmp(&b.line)).then_with(|| a.rule.cmp(&b.rule))
    });
    report.waived.sort_by(|a, b| {
        a.finding
            .file
            .cmp(&b.finding.file)
            .then_with(|| a.finding.line.cmp(&b.finding.line))
            .then_with(|| a.finding.rule.cmp(&b.finding.rule))
    });
    Ok(report)
}

impl Report {
    /// Renders the human-readable text report (findings, waiver accounting, summary line).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    {}\n",
                f.file, f.line, f.rule, f.message, f.snippet
            ));
        }
        if !self.waived.is_empty() {
            out.push_str(&format!("waivers in effect: {}\n", self.waived.len()));
            for w in &self.waived {
                out.push_str(&format!(
                    "    {}:{} [{}] reason: {}\n",
                    w.finding.file, w.finding.line, w.finding.rule, w.reason
                ));
            }
        }
        out.push_str(&format!(
            "kronpriv-lint: {} files scanned, {} finding(s), {} waiver(s)\n",
            self.files_scanned,
            self.findings.len(),
            self.waived.len()
        ));
        out
    }

    /// Renders the machine-readable JSON report consumed by the CI annotation step. Findings
    /// are emitted in (file, line, rule) order, so the document is byte-stable across runs.
    pub fn to_json(&self) -> kronpriv_json::Json {
        use kronpriv_json::Json;
        let finding_doc = |f: &Finding| {
            Json::Object(vec![
                ("file".to_string(), Json::String(f.file.clone())),
                ("line".to_string(), Json::Number(f.line as f64)),
                ("rule".to_string(), Json::String(f.rule.clone())),
                ("message".to_string(), Json::String(f.message.clone())),
                ("snippet".to_string(), Json::String(f.snippet.clone())),
            ])
        };
        Json::Object(vec![
            ("files_scanned".to_string(), Json::Number(self.files_scanned as f64)),
            ("findings".to_string(), Json::Array(self.findings.iter().map(finding_doc).collect())),
            (
                "waivers".to_string(),
                Json::Array(
                    self.waived
                        .iter()
                        .map(|w| {
                            let mut doc = match finding_doc(&w.finding) {
                                Json::Object(fields) => fields,
                                _ => unreachable!("finding_doc always returns an object"),
                            };
                            doc.push(("reason".to_string(), Json::String(w.reason.clone())));
                            Json::Object(doc)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders a minimal SARIF 2.1.0 document for code-scanning upload. Unwaived findings are
    /// `error`-level results; waived findings are included with an `inSource` suppression
    /// carrying the waiver reason, so suppressed results stay visible to reviewers.
    pub fn to_sarif(&self) -> kronpriv_json::Json {
        use kronpriv_json::Json;
        let location = |f: &Finding| {
            Json::Array(vec![Json::Object(vec![(
                "physicalLocation".to_string(),
                Json::Object(vec![
                    (
                        "artifactLocation".to_string(),
                        Json::Object(vec![("uri".to_string(), Json::String(f.file.clone()))]),
                    ),
                    (
                        "region".to_string(),
                        Json::Object(vec![("startLine".to_string(), Json::Number(f.line as f64))]),
                    ),
                ]),
            )])])
        };
        let result = |f: &Finding, suppression: Option<&str>| {
            let mut fields = vec![
                ("ruleId".to_string(), Json::String(f.rule.clone())),
                ("level".to_string(), Json::String("error".to_string())),
                (
                    "message".to_string(),
                    Json::Object(vec![("text".to_string(), Json::String(f.message.clone()))]),
                ),
                ("locations".to_string(), location(f)),
            ];
            if let Some(reason) = suppression {
                fields.push((
                    "suppressions".to_string(),
                    Json::Array(vec![Json::Object(vec![
                        ("kind".to_string(), Json::String("inSource".to_string())),
                        ("justification".to_string(), Json::String(reason.to_string())),
                    ])]),
                ));
            }
            Json::Object(fields)
        };
        let mut results: Vec<Json> = self.findings.iter().map(|f| result(f, None)).collect();
        results.extend(self.waived.iter().map(|w| result(&w.finding, Some(&w.reason))));
        let rules_doc = Json::Array(
            RULES
                .iter()
                .map(|r| Json::Object(vec![("id".to_string(), Json::String((*r).to_string()))]))
                .collect(),
        );
        Json::Object(vec![
            (
                "$schema".to_string(),
                Json::String("https://json.schemastore.org/sarif-2.1.0.json".to_string()),
            ),
            ("version".to_string(), Json::String("2.1.0".to_string())),
            (
                "runs".to_string(),
                Json::Array(vec![Json::Object(vec![
                    (
                        "tool".to_string(),
                        Json::Object(vec![(
                            "driver".to_string(),
                            Json::Object(vec![
                                ("name".to_string(), Json::String("kronpriv-lint".to_string())),
                                (
                                    "informationUri".to_string(),
                                    Json::String(
                                        "https://example.invalid/kronpriv-lint".to_string(),
                                    ),
                                ),
                                ("rules".to_string(), rules_doc),
                            ]),
                        )]),
                    ),
                    ("results".to_string(), Json::Array(results)),
                ])]),
            ),
        ])
    }
}
