//! Flow-aware taint analysis over one function body.
//!
//! The model is deliberately small and conservative in one direction only:
//!
//! * **Sources** — any identifier on the sensitive deny list ([`crate::rules::SENSITIVE_IDENTS`],
//!   bare or as a field projection), and any call to a function the workspace
//!   [`Context`](crate::callgraph::Context) marks as tainting (annotated
//!   `// lint:source(sensitive)`, or with an inferred tainted return).
//! * **Propagation** — `let` bindings and (compound) assignments: a binding whose initializer
//!   span contains taint becomes tainted; taint is sticky (reassignment never clears it —
//!   a lint should not reason about liveness).
//! * **Sanitizers** — a call to a `// lint:sanitizer` function *excises* its whole call span:
//!   `release(exact)` is clean, `release(exact) + exact` is still tainted.
//!
//! Sinks are the rule layer's business ([`crate::rules`]); this module only answers "which
//! names are tainted here" and "is the returned value tainted".

use std::collections::BTreeSet;

use crate::callgraph::Context;
use crate::lexer::{Token, TokenKind};
use crate::parse::{matching, FnInfo};
use crate::rules::SENSITIVE_IDENTS;

/// The taint analysis result for one function body.
#[derive(Debug, Default)]
pub struct FnTaint {
    /// Local binding names that hold sensitive values.
    pub tainted: BTreeSet<String>,
    /// Whether the function's returned value (tail expression or any `return`) is tainted.
    pub return_tainted: bool,
    /// Line of the first tainted token in a returned expression, when `return_tainted`.
    pub return_line: Option<usize>,
    /// Whether that first tainted return token is itself a deny-listed spelling — the
    /// spelling-based rules already own those, so flow rules can skip them.
    pub return_deny_listed: bool,
}

/// Upper bound on the intra-body fixpoint. Each round can only lengthen def-use chains by one
/// statement; real bodies converge in two or three.
const MAX_ROUNDS: usize = 12;

/// Runs the taint analysis over `f`'s body (no-op for bodiless declarations).
pub fn analyze(tokens: &[Token], f: &FnInfo, ctx: &Context) -> FnTaint {
    let Some((open, close)) = f.body else { return FnTaint::default() };
    let excised = excised_mask(tokens, open + 1, close, ctx);
    let mut out = FnTaint::default();
    for _ in 0..MAX_ROUNDS {
        let before = out.tainted.len();
        propagate(tokens, open + 1, close, &excised, ctx, &mut out.tainted);
        if out.tainted.len() == before {
            break;
        }
    }
    if f.has_return_type {
        if let Some((line, deny_listed)) =
            returned_taint(tokens, open, close, &excised, ctx, &out.tainted)
        {
            out.return_tainted = true;
            out.return_line = Some(line);
            out.return_deny_listed = deny_listed;
        }
    }
    out
}

/// True when the token at `i` carries taint under the current tainted-local set.
pub fn token_tainted(
    tokens: &[Token],
    i: usize,
    tainted: &BTreeSet<String>,
    ctx: &Context,
) -> bool {
    let t = &tokens[i];
    if t.kind != TokenKind::Ident {
        return false;
    }
    // Deny-list names are sources wherever they appear: bare bindings, parameters, and
    // `.exact`-style field projections all count.
    if SENSITIVE_IDENTS.contains(&t.text.as_str()) {
        return true;
    }
    let is_call = tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
    if is_call && ctx.call_taints(&t.text) {
        return true;
    }
    // A tainted local — but never through a field/method position (`x.count` must not match a
    // tainted local named `count`), and never a call (handled above by workspace facts).
    if !is_call
        && tainted.contains(&t.text)
        && !(i > 0 && (tokens[i - 1].is_punct('.') || tokens[i - 1].is_punct(':')))
    {
        return true;
    }
    false
}

/// True when any non-excised token in `lo..hi` is tainted.
pub fn span_tainted(
    tokens: &[Token],
    lo: usize,
    hi: usize,
    excised: &Excised,
    tainted: &BTreeSet<String>,
    ctx: &Context,
) -> bool {
    (lo..hi.min(tokens.len()))
        .any(|i| !excised.contains(i) && token_tainted(tokens, i, tainted, ctx))
}

/// Token indices removed from taint evaluation: every declared-sanitizer call span (callee
/// ident through its matching close paren).
#[derive(Debug, Default)]
pub struct Excised {
    spans: Vec<(usize, usize)>,
}

impl Excised {
    /// Is token index `i` inside a sanitizer call?
    pub fn contains(&self, i: usize) -> bool {
        self.spans.iter().any(|&(a, b)| (a..=b).contains(&i))
    }
}

/// Computes the sanitizer-call mask for `lo..hi`.
pub fn excised_mask(tokens: &[Token], lo: usize, hi: usize, ctx: &Context) -> Excised {
    let mut spans = Vec::new();
    for i in lo..hi.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident
            && ctx.is_sanitizer(&t.text)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(end) = matching(tokens, i + 1, '(', ')') {
                spans.push((i, end));
            }
        }
    }
    Excised { spans }
}

/// One propagation pass: `let` bindings and assignments whose right-hand side is tainted
/// taint their bound names.
fn propagate(
    tokens: &[Token],
    lo: usize,
    hi: usize,
    excised: &Excised,
    ctx: &Context,
    tainted: &mut BTreeSet<String>,
) {
    let mut i = lo;
    while i < hi {
        if tokens[i].is_ident("let") {
            // In `if let` / `while let`, the scrutinee is a condition: it ends at the `{`
            // opening the body (struct literals are illegal in condition position, so a
            // depth-0 `{` is unambiguous). Without this stop the whole body would count as
            // the initializer and taint the binding from unrelated statements.
            let is_cond =
                i > 0 && (tokens[i - 1].is_ident("if") || tokens[i - 1].is_ident("while"));
            let (pattern, eq) = let_pattern(tokens, i + 1, hi);
            if let Some(eq) = eq {
                let end = if is_cond {
                    cond_end(tokens, eq + 1, hi)
                } else {
                    expr_end(tokens, eq + 1, hi)
                };
                if span_tainted(tokens, eq + 1, end, excised, tainted, ctx) {
                    tainted.extend(pattern);
                }
                i = eq + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if let Some(eq) = assignment_eq(tokens, i) {
            let target = tokens[i].text.clone();
            let end = expr_end(tokens, eq + 1, hi);
            if span_tainted(tokens, eq + 1, end, excised, tainted, ctx) {
                tainted.insert(target);
            }
            i = eq + 1;
            continue;
        }
        i += 1;
    }
}

/// Collects the binding names of a `let` pattern starting at `i` and the index of its `=`,
/// if the statement has an initializer. Ascribed types contribute no names.
fn let_pattern(tokens: &[Token], mut i: usize, hi: usize) -> (Vec<String>, Option<usize>) {
    let mut names = Vec::new();
    let mut depth = 0i64;
    let mut in_type = false;
    while i < hi {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct('(')
            | TokenKind::Punct('[')
            | TokenKind::Punct('{')
            | TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
            TokenKind::Punct('>') if !(i > 0 && tokens[i - 1].is_punct('-')) => depth -= 1,
            TokenKind::Punct(':') if depth <= 0 => {
                if !tokens.get(i + 1).is_some_and(|n| n.is_punct(':')) {
                    in_type = true;
                } else {
                    i += 1; // skip the second `:` of a path
                }
            }
            TokenKind::Punct('=') if depth <= 0 => {
                // `==` cannot appear in a pattern; `=` always starts the initializer.
                return (names, Some(i));
            }
            TokenKind::Punct(';') if depth <= 0 => return (names, None),
            TokenKind::Ident
                if !in_type && !matches!(t.text.as_str(), "mut" | "ref" | "_" | "box") =>
            {
                names.push(t.text.clone());
            }
            _ => {}
        }
        i += 1;
    }
    (names, None)
}

/// If tokens[i] anchors an assignment (`name = ...`, `name += ...`), the index of its `=`.
fn assignment_eq(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens[i].kind != TokenKind::Ident {
        return None;
    }
    let next = tokens.get(i + 1)?;
    if next.is_punct('=') {
        // Exclude `==` and `=>`.
        let after = tokens.get(i + 2);
        if after.is_some_and(|t| t.is_punct('=') || t.is_punct('>')) {
            return None;
        }
        return Some(i + 1);
    }
    // Compound assignment: `name += expr` and friends.
    if matches!(next.kind, TokenKind::Punct('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct('='))
        && !tokens.get(i + 3).is_some_and(|t| t.is_punct('='))
    {
        return Some(i + 2);
    }
    None
}

/// End (exclusive) of the expression starting at `lo`: the first `;` at the expression's own
/// delimiter depth, or `hi`. Over-extends across statement-position blocks (`if let`), which
/// only ever over-taints.
fn expr_end(tokens: &[Token], lo: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().take(hi.min(tokens.len())).skip(lo) {
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            TokenKind::Punct(';') if depth <= 0 => return i,
            _ => {}
        }
    }
    hi
}

/// End (exclusive) of an `if let` / `while let` scrutinee starting at `lo`: the first `{` at
/// depth 0 (the block the condition guards), a statement end, or `hi`.
fn cond_end(tokens: &[Token], lo: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().take(hi.min(tokens.len())).skip(lo) {
        match t.kind {
            TokenKind::Punct('{') if depth <= 0 => return i,
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            TokenKind::Punct(';') if depth <= 0 => return i,
            _ => {}
        }
    }
    hi
}

/// Is the function's returned value tainted: any `return <expr>;` or the body's tail
/// expression. Returns `(line, deny_listed)` of the first tainted token when so.
fn returned_taint(
    tokens: &[Token],
    open: usize,
    close: usize,
    excised: &Excised,
    ctx: &Context,
    tainted: &BTreeSet<String>,
) -> Option<(usize, bool)> {
    let first_tainted = |lo: usize, hi: usize| {
        (lo..hi.min(tokens.len()))
            .find(|&i| !excised.contains(i) && token_tainted(tokens, i, tainted, ctx))
            .map(|i| (tokens[i].line, SENSITIVE_IDENTS.contains(&tokens[i].text.as_str())))
    };
    for i in open + 1..close {
        if tokens[i].is_ident("return") {
            let end = expr_end(tokens, i + 1, close);
            if let Some(hit) = first_tainted(i + 1, end) {
                return Some(hit);
            }
        }
    }
    // Tail expression: everything after the last top-level `;` (or the whole body).
    let mut depth = 0i64;
    let mut tail_start = open + 1;
    for (i, t) in tokens.iter().enumerate().take(close).skip(open + 1) {
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
            TokenKind::Punct(';') if depth == 0 => tail_start = i + 1,
            _ => {}
        }
    }
    first_tainted(tail_start, close)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build_context;
    use crate::lexer::lex;
    use crate::parse::parse_fns;

    fn analyze_named(src: &str, name: &str) -> FnTaint {
        let rel = "crates/dp/src/t.rs";
        let ctx = build_context(&[(rel.to_string(), src.to_string())]);
        let lexed = lex(src);
        let fns = parse_fns(&lexed.tokens, &lexed.annotations);
        let f = fns.iter().find(|f| f.name == name).expect("fn present");
        analyze(&lexed.tokens, f, &ctx)
    }

    #[test]
    fn rename_propagates_taint() {
        let t = analyze_named(
            "pub fn f(exact_triangle_count: u64) -> u64 {\n    let laundered = exact_triangle_count;\n    laundered\n}\n",
            "f",
        );
        assert!(t.tainted.contains("laundered"));
        assert!(t.return_tainted);
    }

    #[test]
    fn chained_lets_and_compound_assignment_propagate() {
        let t = analyze_named(
            "pub fn f(noisy_degrees: &[f64]) -> f64 {\n    let a = noisy_degrees[0];\n    let mut b = 0.0;\n    b += a;\n    b\n}\n",
            "f",
        );
        assert!(t.tainted.contains("a") && t.tainted.contains("b"));
        assert!(t.return_tainted);
    }

    #[test]
    fn sanitizer_call_spans_are_excised() {
        let src = "// lint:sanitizer\nfn release(v: f64) -> f64 { v }\npub fn ok(exact: f64) -> f64 {\n    let out = release(exact);\n    out\n}\npub fn bad(exact: f64) -> f64 {\n    let out = release(exact) + exact;\n    out\n}\n";
        let ok = analyze_named(src, "ok");
        assert!(!ok.tainted.contains("out") && !ok.return_tainted);
        let bad = analyze_named(src, "bad");
        assert!(bad.tainted.contains("out") && bad.return_tainted);
    }

    #[test]
    fn field_projection_on_deny_listed_name_is_a_source() {
        let t = analyze_named(
            "pub fn f(seq: &Released) -> f64 {\n    let raw = seq.noisy_degrees[0];\n    raw\n}\n",
            "f",
        );
        assert!(t.tainted.contains("raw"));
    }

    #[test]
    fn unrelated_locals_stay_clean() {
        let t = analyze_named(
            "pub fn f(exact: u64, n: u64) -> u64 {\n    let clean = n + 1;\n    let also = clean * 2;\n    also\n}\n",
            "f",
        );
        assert!(t.tainted.is_empty());
        assert!(!t.return_tainted, "tail mentions only clean locals");
    }

    #[test]
    fn if_let_scrutinee_ends_at_the_body_brace() {
        // `name` binds `&spec.dataset` (clean); the *body* of the `if let` touches a tainted
        // local, which must not leak backwards into the binding.
        let t = analyze_named(
            "pub fn f(spec: &Spec, exact: u64) -> u64 {\n    let secret = exact;\n    if let Some(name) = &spec.dataset {\n        use_it(name, secret);\n    }\n    0\n}\n",
            "f",
        );
        assert!(t.tainted.contains("secret"));
        assert!(!t.tainted.contains("name"), "the if-let body must not taint the binding");
    }

    #[test]
    fn tainted_local_does_not_match_field_positions() {
        let t = analyze_named(
            "pub fn f(exact: u64, s: &Stats) -> u64 {\n    let count = exact;\n    let other = s.count;\n    other\n}\n",
            "f",
        );
        assert!(t.tainted.contains("count"));
        assert!(!t.tainted.contains("other"), "`s.count` is a field, not the tainted local");
    }
}
