//! The `kronpriv-lint` command-line gate.
//!
//! ```text
//! cargo run -p kronpriv-lint -- --workspace-root .          # human-readable findings
//! cargo run -p kronpriv-lint -- --workspace-root . --json   # machine-readable, for CI
//! cargo run -p kronpriv-lint -- --workspace-root . --sarif  # SARIF 2.1.0, for code scanning
//! ```
//!
//! Exit status 0 means zero unwaived findings; any finding (including waiver-hygiene findings)
//! exits 1, which is what makes `scripts/verify.sh` and CI hard gates.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut sarif = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace-root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => {
                    eprintln!("--workspace-root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--help" | "-h" => {
                eprintln!("usage: kronpriv-lint [--workspace-root PATH] [--json | --sarif]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let report = match kronpriv_lint::scan_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("kronpriv-lint: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    if sarif {
        println!("{}", report.to_sarif().to_pretty_string());
    } else if json {
        println!("{}", report.to_json().to_pretty_string());
    } else {
        print!("{}", report.to_text());
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
