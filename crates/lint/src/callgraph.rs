//! A best-effort workspace call graph: per-function flow facts keyed by bare function name.
//!
//! The lint tool has no type information, so calls are resolved by name alone: every function
//! in any library file with a given bare name contributes to that name's merged
//! [`FnFacts`]. This over-approximates (two unrelated `fit` functions share facts) in the
//! conservative direction — a name is treated as sensitive if *any* definition is — while a
//! declared sanitizer always wins over inferred taint, so release boundaries never false-fire.
//!
//! Facts are seeded from `// lint:source(sensitive)` / `// lint:sanitizer` annotations and
//! then closed under intra-file return-taint propagation ([`crate::taint`]) with a bounded
//! fixpoint: a helper that returns a value derived from a sensitive source becomes a source
//! for its own callers, across files.

use std::collections::BTreeMap;

use crate::lexer::{lex, Lexed};
use crate::parse::{parse_fns, FnInfo};
use crate::rules::{classify, Category};
use crate::taint;

/// Merged flow facts for one bare function name.
#[derive(Debug, Clone, Copy, Default)]
pub struct FnFacts {
    /// Some definition is annotated `// lint:source(sensitive)`.
    pub source: bool,
    /// Some definition is annotated `// lint:sanitizer`. Sanitizer status dominates: a
    /// sanitizer name is never simultaneously a source or a tainted return.
    pub sanitizer: bool,
    /// Return-taint was inferred for some definition: the function returns a value derived
    /// from a sensitive source without passing a sanitizer.
    pub tainted_return: bool,
}

impl FnFacts {
    /// True when calling this function yields a tainted value.
    pub fn taints_result(&self) -> bool {
        !self.sanitizer && (self.source || self.tainted_return)
    }
}

/// The workspace flow context consumed by the taint analysis.
#[derive(Debug, Default)]
pub struct Context {
    fns: BTreeMap<String, FnFacts>,
}

impl Context {
    /// An empty context (no known functions) — every call is treated as clean.
    pub fn empty() -> Context {
        Context::default()
    }

    /// The merged facts for a bare function name, if any definition is known.
    pub fn facts(&self, name: &str) -> Option<FnFacts> {
        self.fns.get(name).copied()
    }

    /// True when `name` is a declared sanitizer.
    pub fn is_sanitizer(&self, name: &str) -> bool {
        self.facts(name).is_some_and(|f| f.sanitizer)
    }

    /// True when a call to `name` yields a tainted value.
    pub fn call_taints(&self, name: &str) -> bool {
        self.facts(name).is_some_and(|f| f.taints_result())
    }
}

/// Upper bound on propagation rounds: each round can only lengthen source→sink chains by one
/// call edge, and real chains are short; the bound keeps pathological inputs linear.
const MAX_ROUNDS: usize = 10;

/// Builds the workspace context from `(workspace-relative path, source text)` pairs.
///
/// Only library files contribute (test helpers must not poison production names), and the
/// result is deterministic: facts live in a `BTreeMap` and files are processed in the caller's
/// (sorted) order.
pub fn build_context(files: &[(String, String)]) -> Context {
    let parsed: Vec<(Lexed, Vec<FnInfo>)> = files
        .iter()
        .filter(|(rel, _)| classify(rel).is_some_and(|c| c.category == Category::Lib))
        .map(|(_, source)| {
            let lexed = lex(source);
            let fns = parse_fns(&lexed.tokens, &lexed.annotations);
            (lexed, fns)
        })
        .collect();

    let mut ctx = Context::default();
    for (_, fns) in &parsed {
        for f in fns {
            let facts = ctx.fns.entry(f.name.clone()).or_default();
            facts.source |= f.is_source;
            facts.sanitizer |= f.is_sanitizer;
        }
    }

    for _ in 0..MAX_ROUNDS {
        let mut newly_tainted: Vec<String> = Vec::new();
        for (lexed, fns) in &parsed {
            for f in fns {
                if !f.has_return_type || f.body.is_none() {
                    continue;
                }
                let facts = ctx.facts(&f.name).unwrap_or_default();
                if facts.sanitizer || facts.tainted_return {
                    continue;
                }
                if taint::analyze(&lexed.tokens, f, &ctx).return_tainted {
                    newly_tainted.push(f.name.clone());
                }
            }
        }
        if newly_tainted.is_empty() {
            break;
        }
        for name in newly_tainted {
            if let Some(facts) = ctx.fns.get_mut(&name) {
                facts.tainted_return = true;
            }
        }
    }
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> (String, String) {
        (rel.to_string(), src.to_string())
    }

    #[test]
    fn annotations_seed_facts_and_sanitizer_dominates() {
        let ctx = build_context(&[file(
            "crates/dp/src/a.rs",
            "// lint:source(sensitive)\nfn exact() -> u64 { 0 }\n// lint:sanitizer\nfn release(v: f64) -> f64 { v }\n",
        )]);
        assert!(ctx.call_taints("exact"));
        assert!(ctx.is_sanitizer("release"));
        assert!(!ctx.call_taints("release"));
    }

    #[test]
    fn return_taint_propagates_across_files() {
        let ctx = build_context(&[
            file(
                "crates/graph/src/a.rs",
                "// lint:source(sensitive)\npub fn exact_stat(n: usize) -> u64 { n as u64 }\n",
            ),
            file(
                "crates/stats/src/b.rs",
                "pub fn helper(n: usize) -> u64 { exact_stat(n) }\npub fn clean(n: usize) -> u64 { n as u64 }\n",
            ),
        ]);
        assert!(ctx.call_taints("helper"), "helper returns a source-derived value");
        assert!(!ctx.call_taints("clean"));
    }

    #[test]
    fn sanitized_returns_are_not_tainted() {
        let ctx = build_context(&[file(
            "crates/dp/src/a.rs",
            "// lint:source(sensitive)\nfn exact() -> u64 { 0 }\n// lint:sanitizer\nfn release(v: f64) -> f64 { v }\npub fn private(n: usize) -> f64 { release(exact() as f64) }\n",
        )]);
        assert!(!ctx.call_taints("private"), "the sanitizer call launders the source");
    }

    #[test]
    fn test_files_do_not_contribute_facts() {
        let ctx = build_context(&[file(
            "crates/dp/tests/t.rs",
            "// lint:source(sensitive)\nfn exact() -> u64 { 0 }\n",
        )]);
        assert!(ctx.facts("exact").is_none());
    }
}
