//! The lint tool's own acceptance suite.
//!
//! Three layers of pinning:
//!
//! 1. **Fixture corpus** — `fixtures/tree` is a miniature workspace of deliberate violations
//!    (every rule has at least one) interleaved with passing near-misses; the expected finding
//!    set is asserted exactly, (file, line, rule) by (file, line, rule).
//! 2. **Deny-list guards** — removing an entry from [`SENSITIVE_IDENTS`] or
//!    [`WORKSPACE_LINT_TABLE`], or weakening the obs no-feedback rule, fails these tests even
//!    if the fixture files were edited to match.
//! 3. **Real tree** — the actual workspace must scan clean: zero unwaived findings, and every
//!    waiver carries a reason.

use kronpriv_lint::{
    scan_source, scan_workspace, scan_workspace_with, SENSITIVE_IDENTS, WORKSPACE_LINT_TABLE,
};
use kronpriv_par::Executor;
use std::path::Path;

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/tree"))
}

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// The exact expected finding set for the fixture corpus. Every entry is a planted violation;
/// every near-miss in the same files must stay absent from the scan.
const EXPECTED: &[(&str, usize, &str)] = &[
    ("crates/dp/src/allow_bad.rs", 4, "allow-attr"),
    ("crates/dp/src/allow_bad.rs", 10, "allow-attr"),
    ("crates/dp/src/hash_bad.rs", 6, "hash-iter"),
    ("crates/dp/src/hash_bad.rs", 10, "hash-iter"),
    ("crates/dp/src/hash_bad.rs", 18, "hash-iter"),
    ("crates/dp/src/obs_bad.rs", 5, "obs-read"),
    ("crates/dp/src/obs_bad.rs", 11, "obs-read"),
    ("crates/dp/src/obs_bad.rs", 16, "obs-read"),
    ("crates/dp/src/obs_bad.rs", 21, "obs-read"),
    ("crates/dp/src/privacy_bad.rs", 9, "privacy-serialize"),
    ("crates/dp/src/privacy_bad.rs", 12, "privacy-serialize"),
    ("crates/dp/src/privacy_bad.rs", 16, "privacy-serialize"),
    ("crates/dp/src/privacy_redacted_bad.rs", 6, "privacy-serialize"),
    ("crates/dp/src/taint_helper_bad.rs", 15, "privacy-taint"),
    ("crates/dp/src/taint_rename_bad.rs", 5, "privacy-taint"),
    ("crates/dp/src/time_bad.rs", 4, "determinism-time"),
    ("crates/dp/src/time_bad.rs", 8, "determinism-time"),
    ("crates/dp/src/time_bad.rs", 11, "determinism-time"),
    ("crates/dp/src/waiver_bad.rs", 4, "waiver-syntax"),
    ("crates/dp/src/waiver_bad.rs", 5, "determinism-time"),
    ("crates/dp/src/waiver_bad.rs", 8, "waiver-syntax"),
    ("crates/dp/src/waiver_bad.rs", 12, "waiver-syntax"),
    ("crates/dp/src/waiver_bad.rs", 16, "stale-waiver"),
    ("crates/graph/src/lib.rs", 1, "forbid-unsafe"),
    ("crates/server/src/enqueue_bad.rs", 3, "debit-before-enqueue"),
    ("crates/server/src/pub_return_bad.rs", 9, "privacy-taint"),
    ("crates/server/src/wire_bad.rs", 7, "privacy-serialize"),
    ("crates/server/src/wire_bad.rs", 9, "privacy-serialize"),
    ("crates/server/src/wire_v1_bad.rs", 7, "privacy-serialize"),
    ("crates/server/src/wire_v1_bad.rs", 9, "privacy-serialize"),
    ("crates/stats/src/exec_capture_bad.rs", 11, "executor-capture"),
    ("crates/stats/src/exec_capture_bad.rs", 27, "executor-capture"),
    ("crates/stats/src/exec_work_bad.rs", 6, "executor-work-hint"),
    ("crates/stats/src/taint_cross_bad.rs", 5, "privacy-taint"),
    ("crates/stats/src/thread_bad.rs", 5, "determinism-thread"),
    ("crates/stats/src/thread_bad.rs", 8, "determinism-thread"),
    ("crates/stats/src/thread_bad.rs", 11, "determinism-thread"),
];

#[test]
fn fixture_corpus_is_flagged_exactly() {
    let report = scan_workspace(fixture_root()).expect("fixture tree scans");
    let got: Vec<(String, usize, String)> =
        report.findings.iter().map(|f| (f.file.clone(), f.line, f.rule.clone())).collect();
    let want: Vec<(String, usize, String)> =
        EXPECTED.iter().map(|&(f, l, r)| (f.to_string(), l, r.to_string())).collect();
    assert_eq!(
        got,
        want,
        "fixture findings diverged from the expectations table:\n{}",
        report.to_text()
    );
}

#[test]
fn fixture_waivers_are_counted_with_reasons() {
    let report = scan_workspace(fixture_root()).expect("fixture tree scans");
    // waiver_ok.rs demonstrates both accepted placements: line-above and same-line.
    let waived: Vec<(String, usize, String)> = report
        .waived
        .iter()
        .map(|w| (w.finding.file.clone(), w.finding.line, w.finding.rule.clone()))
        .collect();
    assert_eq!(
        waived,
        vec![
            ("crates/dp/src/waiver_ok.rs".to_string(), 4, "determinism-time".to_string()),
            ("crates/dp/src/waiver_ok.rs".to_string(), 7, "determinism-time".to_string()),
        ]
    );
    for w in &report.waived {
        assert!(!w.reason.trim().is_empty(), "waiver without a reason survived: {w:?}");
    }
}

#[test]
fn every_rule_has_a_failing_fixture() {
    let report = scan_workspace(fixture_root()).expect("fixture tree scans");
    for rule in kronpriv_lint::RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == *rule),
            "rule `{rule}` has no failing fixture in the corpus"
        );
    }
}

/// The tentpole's proof obligation: a deny-listed value laundered through a rename reaches a
/// serialization sink. v1's spelling-based rules produce *nothing* for this file — only the
/// flow-aware taint rule catches it.
#[test]
fn renamed_sensitive_value_is_invisible_to_v1_rules_but_caught_by_taint() {
    let report = scan_workspace(fixture_root()).expect("fixture tree scans");
    let rename_findings: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.file == "crates/dp/src/taint_rename_bad.rs")
        .map(|f| f.rule.as_str())
        .collect();
    assert!(!rename_findings.is_empty(), "the rename leak was not caught at all");
    assert!(
        rename_findings.iter().all(|r| *r == "privacy-taint"),
        "only the v2 taint rule can see the rename leak; v1 rules fired: {rename_findings:?}"
    );
}

/// The parallel workspace walk must be thread-count-invariant down to the byte: the fixed
/// path-order reduction makes one thread and four produce identical reports.
#[test]
fn report_bytes_are_identical_for_any_thread_count() {
    let one = scan_workspace_with(fixture_root(), &Executor::new(1)).expect("scan on 1 thread");
    let four = scan_workspace_with(fixture_root(), &Executor::new(4)).expect("scan on 4 threads");
    assert_eq!(one.to_text(), four.to_text());
    assert_eq!(one.to_json().to_pretty_string(), four.to_json().to_pretty_string());
    assert_eq!(one.to_sarif().to_pretty_string(), four.to_sarif().to_pretty_string());
}

/// Deleting an entry from the sensitive-identifier deny list must fail the gate: every entry
/// placed inside a serialization macro in a compute crate yields a privacy finding.
#[test]
fn every_sensitive_ident_is_denied_in_macros() {
    for ident in SENSITIVE_IDENTS {
        let source = format!("impl_json_struct!(Doc {{ value, {ident} }});\n");
        let report = scan_source("crates/dp/src/synthetic.rs", &source);
        assert!(
            report.findings.iter().any(|f| f.rule == "privacy-serialize" && f.line == 1),
            "sensitive identifier `{ident}` was not flagged inside impl_json_struct!"
        );
    }
}

/// Deleting an entry from the workspace lint table must fail the gate: re-allowing any table
/// lint by attribute is always a finding.
#[test]
fn every_workspace_table_lint_is_guarded() {
    for lint in WORKSPACE_LINT_TABLE {
        for attr in [format!("#[allow({lint})]"), format!("#[allow(clippy::{lint})]")] {
            let source = format!("{attr}\npub fn f() {{}}\n");
            let report = scan_source("crates/dp/src/synthetic.rs", &source);
            assert!(
                report.findings.iter().any(|f| f.rule == "allow-attr"),
                "`{attr}` was not flagged"
            );
        }
    }
}

/// Reading the observability registry from a compute crate must fail the gate — the ISSUE's
/// canary for the no-feedback contract.
#[test]
fn obs_registry_read_from_dp_is_a_finding() {
    let source = "pub fn leak(reg: &Registry) -> String { reg.render() }\n";
    let report = scan_source("crates/dp/src/synthetic.rs", source);
    assert!(
        report.findings.iter().any(|f| f.rule == "obs-read"),
        "registry render from crates/dp was not flagged"
    );
}

#[test]
fn real_tree_scans_clean() {
    let report = scan_workspace(workspace_root()).expect("workspace scans");
    assert!(
        report.findings.is_empty(),
        "the real tree has unwaived findings:\n{}",
        report.to_text()
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned — wrong root?");
    for w in &report.waived {
        assert!(!w.reason.trim().is_empty(), "waiver without a reason: {w:?}");
    }
}
