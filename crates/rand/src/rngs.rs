//! Concrete generators. Only [`StdRng`] exists: the workspace constructs every RNG through
//! `StdRng::seed_from_u64` (and derives per-stream children with [`StdRng::split`]).

use crate::xoshiro::{splitmix64, Xoshiro256PlusPlus};
use crate::{RngCore, SeedableRng};

/// Domain-separation tag mixed into every [`StdRng::split`] derivation. It separates the
/// *derivation arithmetic* — `seed.split(stream)` can never equal `seed'.split(stream')` by
/// the trivial collision `seed + γ·stream == seed' + γ·stream'` alone — not the resulting
/// streams: a split child is seeded through `seed_from_u64(derived)`, so it *is* the stream of
/// that derived seed (as any 64-bit-seeded child must be).
const SPLIT_STREAM_TAG: u64 = 0x5EED_517E_AD5E_ED00;

/// The workspace's standard generator: xoshiro256++ behind the same name real `rand` uses, so
/// `use rand::rngs::StdRng` keeps compiling verbatim.
///
/// Unlike upstream `StdRng` (which documents *no* cross-version reproducibility), this shim
/// guarantees the seed → stream mapping is stable forever; the reproduction's seeded
/// experiments depend on it. The same stability contract covers [`StdRng::split`].
#[derive(Clone, Debug)]
pub struct StdRng {
    inner: Xoshiro256PlusPlus,
    /// The construction seed, retained so [`StdRng::split`] is a pure function of
    /// `(seed, stream)` — independent of how far this generator has already advanced.
    seed: u64,
}

impl StdRng {
    /// Derives the child generator for stream `stream`: a deterministic function of this
    /// generator's **construction seed** and the stream index only.
    ///
    /// Child seeding is SplitMix64-based (the xoshiro authors' recommended expander): the
    /// construction seed is finalised once, the stream index is folded in through an odd-
    /// constant multiply (a bijection, so distinct streams can never collide), and the result
    /// is finalised again before seeding the child. Two properties matter to callers:
    ///
    /// * **position-independent** — `rng.split(i)` returns the same child whether `rng` is
    ///   fresh or has already produced values, so parallel workers can derive their streams
    ///   without coordinating over the parent's state;
    /// * **pairwise decorrelated** — distinct stream indices map to distinct, SplitMix64-
    ///   finalised child seeds, so the child streams are disjoint on any practically
    ///   observable prefix (pinned by `tests/kronfit_parallel_consistency.rs`).
    ///
    /// This is what makes "one chain per stream" algorithms depend only on their *stream
    /// count* (an algorithm parameter), never on the thread count executing them.
    pub fn split(&self, stream: u64) -> StdRng {
        let mut state = self.seed ^ SPLIT_STREAM_TAG;
        let root = splitmix64(&mut state);
        // Odd multiplier ⇒ `stream → root + stream·M` is injective over u64, so every stream
        // index lands on a distinct pre-finalisation state.
        let mut child = root.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        StdRng::seed_from_u64(splitmix64(&mut child))
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        Self { inner: Xoshiro256PlusPlus::seed_from_u64(state), seed: state }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn split_is_independent_of_the_parent_position() {
        let fresh = StdRng::seed_from_u64(7);
        let mut advanced = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            advanced.gen::<u64>();
        }
        let mut a = fresh.split(3);
        let mut b = advanced.split(3);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn split_streams_differ_from_each_other_and_from_the_parent() {
        let parent = StdRng::seed_from_u64(11);
        let prefix = |mut rng: StdRng| -> Vec<u64> { (0..64).map(|_| rng.gen()).collect() };
        let parent_prefix = prefix(parent.clone());
        let s0 = prefix(parent.split(0));
        let s1 = prefix(parent.split(1));
        assert_ne!(s0, s1);
        assert_ne!(s0, parent_prefix);
        assert_ne!(s1, parent_prefix);
    }

    #[test]
    fn split_seed_mapping_is_pinned_forever() {
        // Like the SplitMix64 reference-vector test: these constants pin the split derivation
        // so a refactor cannot silently change every multi-chain experiment in the workspace.
        let parent = StdRng::seed_from_u64(42);
        let first = |mut rng: StdRng| rng.gen::<u64>();
        assert_eq!(first(parent.split(0)), 5_993_037_491_886_591_478);
        assert_eq!(first(parent.split(1)), 243_206_769_653_588_092);
        assert_eq!(first(parent.split(2)), 13_838_181_863_229_586_816);
    }
}
