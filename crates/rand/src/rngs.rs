//! Concrete generators. Only [`StdRng`] exists: the workspace constructs every RNG through
//! `StdRng::seed_from_u64`.

use crate::xoshiro::Xoshiro256PlusPlus;
use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ behind the same name real `rand` uses, so
/// `use rand::rngs::StdRng` keeps compiling verbatim.
///
/// Unlike upstream `StdRng` (which documents *no* cross-version reproducibility), this shim
/// guarantees the seed → stream mapping is stable forever; the reproduction's seeded
/// experiments depend on it.
#[derive(Clone, Debug)]
pub struct StdRng {
    inner: Xoshiro256PlusPlus,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        Self { inner: Xoshiro256PlusPlus::seed_from_u64(state) }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
