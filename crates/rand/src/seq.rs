//! Sequence-related sampling: the [`SliceRandom`] extension trait (`choose` / `shuffle`).

use crate::distributions::uniform_u64;
use crate::RngCore;

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Returns a uniformly chosen reference, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64(rng, self.len() as u64) as usize])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}
