//! Offline, in-workspace replacement for the slice of the `rand` 0.8 API that the kronpriv
//! workspace actually uses. The build environment has no access to crates.io, so instead of an
//! external dependency the workspace carries this ~300-line shim:
//!
//! * [`rngs::StdRng`] — a seeded xoshiro256++ generator (SplitMix64 seed expansion),
//! * [`SeedableRng::seed_from_u64`] — the only construction path used by the workspace,
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`Rng::gen_ratio`],
//! * [`seq::SliceRandom::choose`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is deterministic across platforms and releases: every seed maps to the same
//! stream forever, which the reproduction relies on for its seeded tests and experiments.
//!
//! This is **not** a cryptographic RNG and deliberately implements nothing beyond the surface
//! above. If the workspace ever regains network access, deleting this crate and pointing the
//! `rand` dependency back at crates.io is the intended migration path; call sites need no edits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

mod distributions;
mod xoshiro;

pub use distributions::{SampleRange, Standard};

/// The raw 64-bit generator interface. Mirrors `rand_core::RngCore` minus the byte-fill
/// methods, which the workspace never calls.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction of a generator from a seed. Only the `seed_from_u64` entry point of the real
/// trait is exposed; the workspace never builds RNGs from byte arrays.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution: `f64`/`f32` uniform in `[0, 1)`,
    /// `bool` as a fair coin, integers uniform over their full range.
    fn gen<T>(&mut self) -> T
    where
        T: SampleUniformStandard,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} is not in [0, 1]");
        distributions::unit_f64(self.next_u64()) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    /// Panics if `denominator == 0` or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(numerator <= denominator, "gen_ratio: {numerator}/{denominator} exceeds 1");
        distributions::uniform_u64(self, denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution via [`Rng::gen`].
///
/// This plays the role of `Distribution<T> for Standard` in real `rand`, flattened into a
/// single trait because the workspace only ever calls `rng.gen::<T>()`.
pub trait SampleUniformStandard {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let collisions = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn unit_floats_stay_in_range_and_average_near_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "sample {x} outside [0, 1)");
            sum += x;
        }
        let mean = sum / n as f64;
        // Standard error of the mean is ~1/sqrt(12 n) ≈ 0.002; allow 5 sigma.
        assert!((mean - 0.5).abs() < 0.011, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_integers_cover_the_range_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for (value, &count) in counts.iter().enumerate() {
            let expected = n as f64 / 10.0;
            assert!(
                (count as f64 - expected).abs() < 0.08 * expected,
                "value {value} drawn {count} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn gen_range_floats_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
        for _ in 0..1_000 {
            let x = rng.gen_range(3.0..=3.5);
            assert!((3.0..=3.5).contains(&x));
        }
    }

    #[test]
    fn gen_range_inclusive_integers_hit_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1_000 {
            match rng.gen_range(0..=3u32) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                1 | 2 => {}
                other => panic!("gen_range(0..=3) produced {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn gen_bool_edge_cases_and_bias() {
        let mut rng = StdRng::seed_from_u64(19);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 20_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn gen_ratio_matches_its_fraction() {
        let mut rng = StdRng::seed_from_u64(23);
        let hits = (0..20_000).filter(|_| rng.gen_ratio(1, 3)).count();
        assert!((hits as f64 / 20_000.0 - 1.0 / 3.0).abs() < 0.02);
        assert!((0..100).all(|_| rng.gen_ratio(5, 5)));
        assert!((0..100).all(|_| !rng.gen_ratio(0, 5)));
    }

    #[test]
    fn choose_is_uniform_and_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(29);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [10, 20, 30, 40];
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            let &picked = items.choose(&mut rng).unwrap();
            counts[(picked / 10 - 1) as usize] += 1;
        }
        for &count in &counts {
            assert!((count as f64 - 10_000.0).abs() < 700.0);
        }
    }

    #[test]
    fn shuffle_permutes_without_losing_elements() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut values: Vec<u32> = (0..100).collect();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With 100 elements a fixed-point-free-ish shuffle is overwhelmingly likely; demand
        // that at least half the positions moved so an identity "shuffle" cannot pass.
        let moved = values.iter().enumerate().filter(|&(i, &v)| v != i as u32).count();
        assert!(moved >= 50, "only {moved} elements moved");
    }

    #[test]
    fn choose_works_through_a_generic_rng_parameter() {
        // Mirrors how `kronpriv-graph` calls `choose(rng)` with `rng: &mut R, R: Rng`.
        fn pick<R: Rng>(rng: &mut R) -> u8 {
            *[1u8, 2, 3].choose(rng).unwrap()
        }
        let mut rng = StdRng::seed_from_u64(37);
        let picked = pick(&mut rng);
        assert!((1..=3).contains(&picked));
    }
}
