//! The xoshiro256++ generator (Blackman & Vigna, 2019) with SplitMix64 seed expansion — the
//! deterministic core behind [`crate::rngs::StdRng`].

/// SplitMix64 step: advances `state` and returns the next output. Used to expand a single
/// 64-bit seed into the 256-bit xoshiro state, exactly as the xoshiro authors recommend.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state. All-zero state is unreachable via SplitMix64 expansion.
#[derive(Clone, Debug)]
pub(crate) struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    pub(crate) fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain SplitMix64 C source.
        let mut state = 1234567u64;
        let expected = [
            6_457_827_717_110_365_317u64,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for &want in &expected {
            assert_eq!(splitmix64(&mut state), want);
        }
    }

    #[test]
    fn xoshiro_produces_distinct_nonzero_words() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(rng.next_u64());
        }
        assert_eq!(seen.len(), 1_000);
    }
}
