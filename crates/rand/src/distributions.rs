//! Sampling primitives: the [`Standard`] distribution marker, uniform integer sampling without
//! modulo bias, and the [`SampleRange`] trait behind [`crate::Rng::gen_range`].

use crate::{RngCore, SampleUniformStandard};
use std::ops::{Range, RangeInclusive};

/// Marker type mirroring `rand::distributions::Standard`. The shim routes `rng.gen()` through
/// [`SampleUniformStandard`] directly, but the name is kept for drop-in compatibility with
/// code that imports it.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

/// Converts 64 random bits into an `f64` uniform in `[0, 1)` using the 53-bit mantissa
/// technique (multiply by 2^-53), the same construction real `rand` uses.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Converts 32 random bits into an `f32` uniform in `[0, 1)` (24-bit mantissa).
pub(crate) fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Draws a `u64` uniform in `[0, bound)` by widening multiplication with rejection
/// (Lemire's method), avoiding modulo bias.
///
/// # Panics
/// Panics if `bound == 0`.
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "uniform_u64: empty bound");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(bound);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

impl SampleUniformStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl SampleUniformStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u32())
    }
}

impl SampleUniformStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty),+) => {$(
        impl SampleUniformStandard for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )+};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`crate::Rng::gen_range`]. Implemented for `a..b` and `a..=b` over the
/// integer and float types the workspace uses.
///
/// The trait is generic over the output type `T` (rather than using an associated type) so that
/// type inference can flow *backwards* from the expected result into the range literal —
/// `let i: usize = rng.gen_range(0..10)` types `0..10` as `Range<usize>`, exactly as real
/// `rand` does.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $ty)
            }
        }
    )+};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $ty;
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                // The CLOSED unit interval: 53 uniform bits divided by 2^53 − 1 reach both
                // 0.0 and exactly 1.0, so — unlike the half-open `a..b` mapping — `hi` itself
                // is a possible draw, as the inclusive contract promises. The final `min`
                // clamps the one-ulp overshoot `lo + 1.0·(hi − lo)` can produce when the
                // subtraction rounds up.
                let unit = ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64) as $ty;
                (lo + unit * (hi - lo)).min(hi)
            }
        }
    )+};
}

// Only `f64` ranges are exposed: a second float impl would make `gen_range(0.0..1.0)`
// ambiguous (no literal fallback with two candidate impls), and the workspace never samples
// `f32` ranges.
impl_sample_range_float!(f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn unit_f64_extremes() {
        assert_eq!(unit_f64(0), 0.0);
        let max = unit_f64(u64::MAX);
        assert!(max < 1.0 && max > 0.9999999);
    }

    #[test]
    fn uniform_u64_is_exhaustive_for_small_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[uniform_u64(&mut rng, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    /// A generator pinned to one 64-bit word, for driving samplers onto their extreme outputs.
    struct ConstRng(u64);

    impl RngCore for ConstRng {
        fn next_u64(&mut self) -> u64 {
            self.0
        }
    }

    #[test]
    fn inclusive_float_range_reaches_both_endpoints() {
        // Regression: the inclusive sampler used to reuse the half-open [0, 1) unit mapping,
        // so `gen_range(a..=b)` could never return `b` — the all-ones draw must now land on
        // the upper endpoint exactly, and the all-zeros draw on the lower one.
        assert_eq!((3.0..=3.5).sample_from(&mut ConstRng(u64::MAX)), 3.5);
        assert_eq!((3.0..=3.5).sample_from(&mut ConstRng(0)), 3.0);
        assert_eq!((-2.0..=7.0).sample_from(&mut ConstRng(u64::MAX)), 7.0);
        // Degenerate single-point range: always that point.
        assert_eq!((1.25..=1.25).sample_from(&mut ConstRng(u64::MAX)), 1.25);
        assert_eq!((1.25..=1.25).sample_from(&mut ConstRng(12345)), 1.25);
    }

    #[test]
    fn inclusive_float_range_stays_inside_its_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let x = (0.25..=0.75).sample_from(&mut rng);
            assert!((0.25..=0.75).contains(&x), "sample {x} escaped the range");
            sum += x;
        }
        let mean = sum / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from the range midpoint");
    }

    #[test]
    fn signed_ranges_work() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x = Range { start: -5i64, end: 5 }.sample_from(&mut rng);
            assert!((-5..5).contains(&x));
        }
    }
}
