//! Box-constrained Nelder–Mead simplex minimisation.
//!
//! The implementation follows the standard Nelder–Mead moves (reflection, expansion,
//! contraction, shrink) with the conventional coefficients. Box constraints are handled the way
//! MATLAB's widely used `fminsearchbnd` wrapper does (the strategy behind the reference
//! Gleich–Owen fitting code): each bounded coordinate is re-parametrised as
//! `x = lower + (upper − lower)·sin²(z)` and the simplex runs unconstrained in `z`-space.
//! Unlike naive projection this cannot collapse the simplex onto a boundary face, so boundary
//! optima (`c = 0` estimates like AS20 in Table 1 are exactly such a case) are reached reliably.
//! The public entry point [`nelder_mead`] additionally wraps the core iteration in a small
//! number of *restarts* from the incumbent best point, the standard practical remedy for
//! premature convergence of Nelder–Mead.

/// Lower and upper bounds describing an axis-aligned box.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    /// Per-coordinate lower bounds.
    pub lower: Vec<f64>,
    /// Per-coordinate upper bounds.
    pub upper: Vec<f64>,
}

impl Bounds {
    /// Creates bounds, validating that the two vectors have equal length and `lower ≤ upper`
    /// component-wise.
    ///
    /// # Panics
    /// Panics on length mismatch or inverted bounds.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "bounds length mismatch");
        for (l, u) in lower.iter().zip(&upper) {
            assert!(l <= u, "lower bound {l} exceeds upper bound {u}");
        }
        Bounds { lower, upper }
    }

    /// The unit box `[0, 1]^dim`.
    pub fn unit(dim: usize) -> Self {
        Bounds { lower: vec![0.0; dim], upper: vec![1.0; dim] }
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Projects `x` into the box in place.
    pub fn project(&self, x: &mut [f64]) {
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = xi.clamp(self.lower[i], self.upper[i]);
        }
    }

    /// Returns true if `x` lies inside the box (within a small tolerance).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.iter()
            .zip(self.lower.iter().zip(&self.upper))
            .all(|(xi, (l, u))| *xi >= l - 1e-12 && *xi <= u + 1e-12)
    }
}

/// Options controlling the simplex iteration.
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadOptions {
    /// Maximum number of objective evaluations across all restarts.
    pub max_evaluations: usize,
    /// Terminate a run when the spread of objective values across the simplex falls below this.
    pub f_tolerance: f64,
    /// Terminate a run when the simplex diameter falls below this.
    pub x_tolerance: f64,
    /// Relative size of the initial simplex (fraction of each coordinate's box width).
    pub initial_step: f64,
    /// Maximum number of restarts after the first run (0 disables restarting).
    pub max_restarts: usize,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evaluations: 4000,
            f_tolerance: 1e-10,
            x_tolerance: 1e-8,
            initial_step: 0.1,
            max_restarts: 4,
        }
    }
}

/// The outcome of a minimisation run.
#[derive(Debug, Clone)]
pub struct OptimizationResult {
    /// The best point found.
    pub point: Vec<f64>,
    /// Objective value at [`OptimizationResult::point`].
    pub value: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
    /// Whether a tolerance-based convergence criterion was met (as opposed to running out of
    /// evaluations).
    pub converged: bool,
}

/// The sin² change of variables mapping unconstrained `z`-space into the box.
struct BoxTransform {
    lower: Vec<f64>,
    width: Vec<f64>,
}

impl BoxTransform {
    fn new(bounds: &Bounds) -> Self {
        let width: Vec<f64> = bounds.upper.iter().zip(&bounds.lower).map(|(u, l)| u - l).collect();
        BoxTransform { lower: bounds.lower.clone(), width }
    }

    /// `x_i = lower_i + width_i · sin²(z_i)`; degenerate coordinates stay fixed at the bound.
    fn to_x(&self, z: &[f64]) -> Vec<f64> {
        z.iter()
            .enumerate()
            .map(|(i, &zi)| {
                if self.width[i] <= 0.0 {
                    self.lower[i]
                } else {
                    self.lower[i] + self.width[i] * zi.sin().powi(2)
                }
            })
            .collect()
    }

    /// Inverse mapping for an in-box point: `z_i = asin(sqrt((x_i − lower_i) / width_i))`.
    fn to_z(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(i, &xi)| {
                if self.width[i] <= 0.0 {
                    0.0
                } else {
                    let t = ((xi - self.lower[i]) / self.width[i]).clamp(0.0, 1.0);
                    t.sqrt().asin()
                }
            })
            .collect()
    }
}

/// Minimises `f` over the box `bounds` starting from `start` using restarted Nelder–Mead in the
/// sin²-transformed coordinates.
///
/// # Panics
/// Panics if `start` has a different dimension than `bounds` or the dimension is zero.
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    start: &[f64],
    bounds: &Bounds,
    options: &NelderMeadOptions,
) -> OptimizationResult {
    let dim = bounds.dim();
    assert_eq!(start.len(), dim, "start point dimension mismatch");
    assert!(dim > 0, "cannot optimise a zero-dimensional problem");

    let transform = BoxTransform::new(bounds);
    let mut evaluations = 0usize;
    let mut best_x = start.to_vec();
    bounds.project(&mut best_x);
    let mut best_value = f64::INFINITY;
    let mut converged = false;

    // Objective in z-space.
    let mut g = |z: &[f64]| f(&transform.to_x(z));

    let mut step = options.initial_step;
    for restart in 0..=options.max_restarts {
        if evaluations >= options.max_evaluations {
            break;
        }
        let start_z = transform.to_z(&best_x);
        let run = run_simplex(&mut g, &start_z, options, step, &mut evaluations);
        let improved = run.1 < best_value - options.f_tolerance.max(1e-15);
        if run.1 < best_value {
            best_x = transform.to_x(&run.0);
            best_value = run.1;
        }
        converged = run.2;
        // A restart that converged without improving means the incumbent is (locally) as good
        // as this strategy will get; stop early.
        if restart > 0 && !improved && run.2 {
            break;
        }
        step *= 0.5;
    }

    bounds.project(&mut best_x);
    OptimizationResult { point: best_x, value: best_value, evaluations, converged }
}

/// One unconstrained Nelder–Mead run in `z`-space from `start`. Returns
/// `(best_point, best_value, converged)` and charges objective evaluations against the shared
/// counter, respecting the global budget.
fn run_simplex<F: FnMut(&[f64]) -> f64>(
    f: &mut F,
    start: &[f64],
    options: &NelderMeadOptions,
    initial_step: f64,
    evaluations: &mut usize,
) -> (Vec<f64>, f64, bool) {
    let dim = start.len();
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Build the initial simplex: the start plus one perturbed vertex per axis. In z-space the
    // box width corresponds to a half-period (pi/2) of the sin² transform.
    let mut simplex: Vec<Vec<f64>> = vec![start.to_vec()];
    for i in 0..dim {
        let mut v = start.to_vec();
        let step = (initial_step * std::f64::consts::FRAC_PI_2).max(1e-10);
        v[i] += step;
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| eval(v, evaluations)).collect();

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut converged = false;

    while *evaluations < options.max_evaluations {
        // Order the simplex by objective value.
        let mut order: Vec<usize> = (0..simplex.len()).collect();
        order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
        simplex = order.iter().map(|&i| simplex[i].clone()).collect();
        values = order.iter().map(|&i| values[i]).collect();

        // Convergence checks.
        let f_spread = values[dim] - values[0];
        let x_spread = simplex[1..]
            .iter()
            .map(|v| v.iter().zip(&simplex[0]).map(|(a, b)| (a - b).abs()).fold(0.0_f64, f64::max))
            .fold(0.0_f64, f64::max);
        if f_spread.abs() <= options.f_tolerance && x_spread <= options.x_tolerance {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; dim];
        for v in &simplex[..dim] {
            for i in 0..dim {
                centroid[i] += v[i] / dim as f64;
            }
        }

        let worst = simplex[dim].clone();
        let reflected: Vec<f64> =
            centroid.iter().zip(&worst).map(|(c, w)| c + alpha * (c - w)).collect();
        let f_reflected = eval(&reflected, evaluations);

        if f_reflected < values[0] {
            // Try to expand further in the same direction.
            let expanded: Vec<f64> =
                centroid.iter().zip(&reflected).map(|(c, r)| c + gamma * (r - c)).collect();
            let f_expanded = eval(&expanded, evaluations);
            if f_expanded < f_reflected {
                simplex[dim] = expanded;
                values[dim] = f_expanded;
            } else {
                simplex[dim] = reflected;
                values[dim] = f_reflected;
            }
        } else if f_reflected < values[dim - 1] {
            simplex[dim] = reflected;
            values[dim] = f_reflected;
        } else {
            // Contract towards the centroid.
            let contracted: Vec<f64> =
                centroid.iter().zip(&worst).map(|(c, w)| c + rho * (w - c)).collect();
            let f_contracted = eval(&contracted, evaluations);
            if f_contracted < values[dim] {
                simplex[dim] = contracted;
                values[dim] = f_contracted;
            } else {
                // Shrink the whole simplex towards the best vertex.
                let best = simplex[0].clone();
                for idx in 1..=dim {
                    for i in 0..dim {
                        simplex[idx][i] = best[i] + sigma * (simplex[idx][i] - best[i]);
                    }
                    values[idx] = eval(&simplex[idx], evaluations);
                }
            }
        }
    }

    let best_idx = (0..values.len())
        .min_by(|&i, &j| values[i].total_cmp(&values[j]))
        .expect("the simplex always holds dim + 1 points");
    (simplex[best_idx].clone(), values[best_idx], converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bounds_project_clamps_each_coordinate() {
        let b = Bounds::new(vec![0.0, -1.0], vec![1.0, 1.0]);
        let mut x = vec![2.0, -3.0];
        b.project(&mut x);
        assert_eq!(x, vec![1.0, -1.0]);
        assert!(b.contains(&x));
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn bounds_reject_inverted_ranges() {
        let _ = Bounds::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn minimizes_a_quadratic_bowl() {
        let target = [0.3, 0.7];
        let result = nelder_mead(
            |x| (x[0] - target[0]).powi(2) + (x[1] - target[1]).powi(2),
            &[0.9, 0.1],
            &Bounds::unit(2),
            &NelderMeadOptions::default(),
        );
        assert!(result.converged);
        assert!((result.point[0] - target[0]).abs() < 1e-4, "{:?}", result.point);
        assert!((result.point[1] - target[1]).abs() < 1e-4, "{:?}", result.point);
        assert!(result.value < 1e-7);
    }

    #[test]
    fn minimizes_rosenbrock_inside_box() {
        // The banana function restricted to [0, 2]^2 has its global minimum at (1, 1).
        let result = nelder_mead(
            |x| 100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2),
            &[0.2, 1.8],
            &Bounds::new(vec![0.0, 0.0], vec![2.0, 2.0]),
            &NelderMeadOptions { max_evaluations: 8000, ..Default::default() },
        );
        assert!((result.point[0] - 1.0).abs() < 1e-3, "{:?}", result.point);
        assert!((result.point[1] - 1.0).abs() < 1e-3, "{:?}", result.point);
    }

    #[test]
    fn respects_active_box_constraints() {
        // Unconstrained minimum at (-1, -1) is outside the unit box; the constrained minimum is
        // the origin corner.
        let result = nelder_mead(
            |x| (x[0] + 1.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.5, 0.5],
            &Bounds::unit(2),
            &NelderMeadOptions::default(),
        );
        assert!(result.point[0] < 1e-5, "{:?}", result.point);
        assert!(result.point[1] < 1e-5, "{:?}", result.point);
        assert!(Bounds::unit(2).contains(&result.point));
    }

    #[test]
    fn recovers_from_boundary_collapse_via_restarts() {
        // Start at a corner far from the minimum with a strongly anisotropic objective. A single
        // projected run tends to collapse onto the boundary; restarts must recover.
        let (tx, ty) = (0.0, 0.13);
        let result = nelder_mead(
            |x| (x[0] - tx).powi(2) + 3.0 * (x[1] - ty).powi(2),
            &[0.86, 0.84],
            &Bounds::unit(2),
            &NelderMeadOptions::default(),
        );
        assert!((result.point[0] - tx).abs() < 1e-3, "{:?}", result.point);
        assert!((result.point[1] - ty).abs() < 1e-3, "{:?}", result.point);
    }

    #[test]
    fn one_dimensional_problems_work() {
        let result = nelder_mead(
            |x| (x[0] - 0.25).powi(2),
            &[0.9],
            &Bounds::unit(1),
            &NelderMeadOptions::default(),
        );
        assert!((result.point[0] - 0.25).abs() < 1e-5);
    }

    #[test]
    fn nan_objective_values_are_treated_as_infinite() {
        // The objective is NaN on half the box; the optimiser should still find the minimum of
        // the valid half instead of propagating NaN.
        let result = nelder_mead(
            |x| if x[0] < 0.5 { f64::NAN } else { (x[0] - 0.75).powi(2) },
            &[0.9],
            &Bounds::unit(1),
            &NelderMeadOptions::default(),
        );
        assert!((result.point[0] - 0.75).abs() < 1e-4, "{:?}", result.point);
        assert!(result.value.is_finite());
    }

    #[test]
    fn respects_evaluation_budget() {
        let mut count = 0usize;
        let _ = nelder_mead(
            |x| {
                count += 1;
                x.iter().map(|v| v * v).sum()
            },
            &[0.5, 0.5, 0.5],
            &Bounds::unit(3),
            &NelderMeadOptions { max_evaluations: 50, ..Default::default() },
        );
        // The shrink step may overshoot the budget by at most the simplex size per restart.
        assert!(count <= 50 + 8, "used {count} evaluations");
    }

    #[test]
    fn start_on_upper_boundary_still_builds_a_valid_simplex() {
        let result = nelder_mead(
            |x| (x[0] - 0.4).powi(2) + (x[1] - 0.6).powi(2),
            &[1.0, 1.0],
            &Bounds::unit(2),
            &NelderMeadOptions::default(),
        );
        assert!((result.point[0] - 0.4).abs() < 1e-4);
        assert!((result.point[1] - 0.6).abs() < 1e-4);
    }

    #[test]
    fn zero_restarts_still_returns_a_result() {
        let result = nelder_mead(
            |x| (x[0] - 0.5).powi(2),
            &[0.1],
            &Bounds::unit(1),
            &NelderMeadOptions { max_restarts: 0, ..Default::default() },
        );
        assert!((result.point[0] - 0.5).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn start_dimension_must_match_bounds() {
        let _ = nelder_mead(|x| x[0], &[0.1, 0.2], &Bounds::unit(1), &NelderMeadOptions::default());
    }

    // Former proptest property, now a deterministic seeded loop.
    #[test]
    fn result_is_always_inside_the_box_and_no_worse_than_start() {
        let mut rng = StdRng::seed_from_u64(0x0E7_7001);
        for _ in 0..32 {
            let (sx, sy) = (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let (tx, ty) = (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let bounds = Bounds::unit(2);
            let objective = |x: &[f64]| (x[0] - tx).powi(2) + 3.0 * (x[1] - ty).powi(2);
            let start = [sx, sy];
            let start_value = objective(&start);
            let result = nelder_mead(objective, &start, &bounds, &NelderMeadOptions::default());
            assert!(bounds.contains(&result.point));
            assert!(result.value <= start_value + 1e-12);
            // For a convex quadratic the restarted optimiser should find the target accurately.
            assert!((result.point[0] - tx).abs() < 1e-3, "{:?} vs ({tx}, {ty})", result.point);
            assert!((result.point[1] - ty).abs() < 1e-3, "{:?} vs ({tx}, {ty})", result.point);
        }
    }
}
