//! Coarse grid evaluation over a box.
//!
//! The moment-matching objective can have several local minima (especially when the triangle
//! count is noisy), so the fitting code first scans a coarse lattice over the parameter box and
//! then refines the most promising cells with Nelder–Mead. This module provides the scan.

use crate::nelder_mead::Bounds;

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Coordinates of the grid point.
    pub point: Vec<f64>,
    /// Objective value at the point.
    pub value: f64,
}

/// Evaluates `f` on a regular lattice with `points_per_axis` points per axis (endpoints
/// included) and returns all evaluated points sorted by increasing objective value. NaN
/// objective values are treated as `+∞`.
///
/// The lattice has `points_per_axis ^ dim` points, so this is intended for low-dimensional
/// problems (the estimators use `dim = 3`).
///
/// # Panics
/// Panics if `points_per_axis < 2` or the dimension is zero.
pub fn grid_search<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    bounds: &Bounds,
    points_per_axis: usize,
) -> Vec<GridPoint> {
    let dim = bounds.dim();
    assert!(dim > 0, "cannot grid-search a zero-dimensional problem");
    assert!(points_per_axis >= 2, "need at least two points per axis");

    let total = points_per_axis.pow(dim as u32);
    let mut results = Vec::with_capacity(total);
    let mut index = vec![0usize; dim];
    for _ in 0..total {
        let point: Vec<f64> = (0..dim)
            .map(|i| {
                let t = index[i] as f64 / (points_per_axis - 1) as f64;
                bounds.lower[i] + t * (bounds.upper[i] - bounds.lower[i])
            })
            .collect();
        let raw = f(&point);
        let value = if raw.is_nan() { f64::INFINITY } else { raw };
        results.push(GridPoint { point, value });
        // Odometer increment.
        for digit in index.iter_mut() {
            *digit += 1;
            if *digit < points_per_axis {
                break;
            }
            *digit = 0;
        }
    }
    results.sort_by(|a, b| a.value.partial_cmp(&b.value).unwrap());
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_expected_number_of_points() {
        let pts = grid_search(|x| x.iter().sum(), &Bounds::unit(2), 5);
        assert_eq!(pts.len(), 25);
    }

    #[test]
    fn results_are_sorted_by_value() {
        let pts = grid_search(|x| (x[0] - 0.5).abs(), &Bounds::unit(1), 11);
        assert!(pts.windows(2).all(|w| w[0].value <= w[1].value));
        assert!((pts[0].point[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn endpoints_are_included() {
        let pts = grid_search(|x| x[0], &Bounds::new(vec![-1.0], vec![3.0]), 3);
        let coords: Vec<f64> = pts.iter().map(|p| p.point[0]).collect();
        assert!(coords.contains(&-1.0));
        assert!(coords.contains(&1.0));
        assert!(coords.contains(&3.0));
    }

    #[test]
    fn finds_the_best_cell_of_a_multimodal_function() {
        // Two wells at x=0.1 and x=0.9; the deeper one is at 0.9.
        let f = |x: &[f64]| {
            let w1 = (x[0] - 0.1).powi(2);
            let w2 = (x[0] - 0.9).powi(2) - 0.5;
            w1.min(w2)
        };
        let pts = grid_search(f, &Bounds::unit(1), 21);
        assert!((pts[0].point[0] - 0.9).abs() < 0.06);
    }

    #[test]
    fn nan_values_sort_last() {
        let pts = grid_search(
            |x| if x[0] < 0.5 { f64::NAN } else { x[0] },
            &Bounds::unit(1),
            5,
        );
        assert!(pts.first().unwrap().value.is_finite());
        assert!(pts.last().unwrap().value.is_infinite());
    }

    #[test]
    fn three_dimensional_grid_has_cubic_size() {
        let pts = grid_search(|x| x.iter().sum(), &Bounds::unit(3), 4);
        assert_eq!(pts.len(), 64);
        // Best point of a sum objective on the unit box is the origin.
        assert!(pts[0].point.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn rejects_degenerate_grids() {
        let _ = grid_search(|x| x[0], &Bounds::unit(1), 1);
    }
}
