//! Coarse grid evaluation over a box.
//!
//! The moment-matching objective can have several local minima (especially when the triangle
//! count is noisy), so the fitting code first scans a coarse lattice over the parameter box and
//! then refines the most promising cells with Nelder–Mead. This module provides the scan.

use crate::nelder_mead::Bounds;
use kronpriv_par::{Executor, Work};

/// Lattice indices per chunk of the parallel scan. Fixed (thread-count-independent) so the
/// evaluation set decomposes identically for every `Executor`.
const GRID_CHUNK: usize = 32;

/// Cost hint for one lattice evaluation: the objectives scanned here (moment discrepancies,
/// likelihoods) are far heavier than the per-point bookkeeping.
const GRID_WORK: Work = Work::HEAVY;

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Coordinates of the grid point.
    pub point: Vec<f64>,
    /// Objective value at the point.
    pub value: f64,
}

/// The coordinates of lattice point `index` (row-major with the first axis fastest — the same
/// enumeration order for the sequential and the parallel scan, so the two produce bit-identical
/// coordinates).
fn lattice_point(index: usize, bounds: &Bounds, points_per_axis: usize) -> Vec<f64> {
    let mut rest = index;
    (0..bounds.dim())
        .map(|i| {
            let digit = rest % points_per_axis;
            rest /= points_per_axis;
            let t = digit as f64 / (points_per_axis - 1) as f64;
            bounds.lower[i] + t * (bounds.upper[i] - bounds.lower[i])
        })
        .collect()
}

fn check_grid_arguments(bounds: &Bounds, points_per_axis: usize) -> usize {
    assert!(bounds.dim() > 0, "cannot grid-search a zero-dimensional problem");
    assert!(points_per_axis >= 2, "need at least two points per axis");
    points_per_axis.pow(bounds.dim() as u32)
}

/// Sorts evaluated lattice points by increasing value; the sort is stable, so equal-valued
/// points stay in lattice-enumeration order (the tie-break the multistart seeding relies on).
fn sort_grid(mut results: Vec<GridPoint>) -> Vec<GridPoint> {
    results.sort_by(|a, b| a.value.total_cmp(&b.value));
    results
}

/// Evaluates `f` on a regular lattice with `points_per_axis` points per axis (endpoints
/// included) and returns all evaluated points sorted by increasing objective value. NaN
/// objective values are treated as `+∞`.
///
/// The lattice has `points_per_axis ^ dim` points, so this is intended for low-dimensional
/// problems (the estimators use `dim = 3`).
///
/// # Panics
/// Panics if `points_per_axis < 2` or the dimension is zero.
pub fn grid_search<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    bounds: &Bounds,
    points_per_axis: usize,
) -> Vec<GridPoint> {
    let total = check_grid_arguments(bounds, points_per_axis);
    let mut results = Vec::with_capacity(total);
    for index in 0..total {
        let point = lattice_point(index, bounds, points_per_axis);
        let raw = f(&point);
        let value = if raw.is_nan() { f64::INFINITY } else { raw };
        results.push(GridPoint { point, value });
    }
    sort_grid(results)
}

/// Parallel form of [`grid_search`]: the lattice is split into fixed [`GRID_CHUNK`]-sized index
/// chunks evaluated concurrently and concatenated in chunk order, so the output — including the
/// stable-sort order of equal-valued points — is **bit-identical** to the sequential scan for
/// every thread count. Requires `Fn` (not `FnMut`): the objective is shared by the workers, so
/// it must be a pure function of the point.
///
/// # Panics
/// Panics if `points_per_axis < 2` or the dimension is zero.
pub fn grid_search_par(
    f: impl Fn(&[f64]) -> f64 + Sync,
    bounds: &Bounds,
    points_per_axis: usize,
    exec: &Executor,
) -> Vec<GridPoint> {
    let total = check_grid_arguments(bounds, points_per_axis);
    let results = exec.map_reduce(
        total,
        GRID_CHUNK,
        GRID_WORK,
        |range| {
            range
                .map(|index| {
                    let point = lattice_point(index, bounds, points_per_axis);
                    let raw = f(&point);
                    let value = if raw.is_nan() { f64::INFINITY } else { raw };
                    GridPoint { point, value }
                })
                .collect::<Vec<_>>()
        },
        |mut acc: Vec<GridPoint>, chunk| {
            acc.extend(chunk);
            acc
        },
        Vec::with_capacity(total),
    );
    sort_grid(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_expected_number_of_points() {
        let pts = grid_search(|x| x.iter().sum(), &Bounds::unit(2), 5);
        assert_eq!(pts.len(), 25);
    }

    #[test]
    fn results_are_sorted_by_value() {
        let pts = grid_search(|x| (x[0] - 0.5).abs(), &Bounds::unit(1), 11);
        assert!(pts.windows(2).all(|w| w[0].value <= w[1].value));
        assert!((pts[0].point[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn endpoints_are_included() {
        let pts = grid_search(|x| x[0], &Bounds::new(vec![-1.0], vec![3.0]), 3);
        let coords: Vec<f64> = pts.iter().map(|p| p.point[0]).collect();
        assert!(coords.contains(&-1.0));
        assert!(coords.contains(&1.0));
        assert!(coords.contains(&3.0));
    }

    #[test]
    fn finds_the_best_cell_of_a_multimodal_function() {
        // Two wells at x=0.1 and x=0.9; the deeper one is at 0.9.
        let f = |x: &[f64]| {
            let w1 = (x[0] - 0.1).powi(2);
            let w2 = (x[0] - 0.9).powi(2) - 0.5;
            w1.min(w2)
        };
        let pts = grid_search(f, &Bounds::unit(1), 21);
        assert!((pts[0].point[0] - 0.9).abs() < 0.06);
    }

    #[test]
    fn nan_values_sort_last() {
        let pts = grid_search(|x| if x[0] < 0.5 { f64::NAN } else { x[0] }, &Bounds::unit(1), 5);
        assert!(pts.first().unwrap().value.is_finite());
        assert!(pts.last().unwrap().value.is_infinite());
    }

    #[test]
    fn three_dimensional_grid_has_cubic_size() {
        let pts = grid_search(|x| x.iter().sum(), &Bounds::unit(3), 4);
        assert_eq!(pts.len(), 64);
        // Best point of a sum objective on the unit box is the origin.
        assert!(pts[0].point.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn rejects_degenerate_grids() {
        let _ = grid_search(|x| x[0], &Bounds::unit(1), 1);
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_sequential_for_all_thread_counts() {
        // A non-trivial multimodal objective over a 3D lattice large enough to span many
        // chunks; includes exact value ties (the objective only depends on two coordinates) so
        // the stable tie-break order is exercised.
        let f =
            |x: &[f64]| ((x[0] - 0.3).abs() * 10.0).round() + ((x[1] - 0.7).abs() * 10.0).round();
        let bounds = Bounds::unit(3);
        let reference = grid_search(f, &bounds, 9);
        for threads in [1usize, 2, 8] {
            let got = grid_search_par(f, &bounds, 9, &Executor::new(threads));
            assert_eq!(got.len(), reference.len(), "threads {threads}");
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "threads {threads}");
                assert_eq!(a.point.len(), b.point.len());
                for (pa, pb) in a.point.iter().zip(&b.point) {
                    assert_eq!(pa.to_bits(), pb.to_bits(), "threads {threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_scan_handles_nan_like_sequential() {
        let f = |x: &[f64]| if x[0] < 0.5 { f64::NAN } else { x[0] };
        let seq = grid_search(f, &Bounds::unit(1), 129);
        let par = grid_search_par(f, &Bounds::unit(1), 129, &Executor::new(4));
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        assert!(par.last().unwrap().value.is_infinite());
    }
}
