//! `kronpriv-optim` — derivative-free box-constrained minimisation.
//!
//! The moment-matching objective of Equation (2) is a smooth but non-convex function of the
//! three initiator parameters over the box `0 ≤ c ≤ a ≤ 1`, `0 ≤ b ≤ 1`. Gleich & Owen's
//! reference MATLAB code minimises it with `fminsearch` (Nelder–Mead) from a handful of starting
//! points; this crate reproduces that strategy from scratch:
//!
//! * [`nelder_mead`] — a projection-based box-constrained Nelder–Mead simplex method,
//! * [`grid`] — coarse grid evaluation used to seed the simplex,
//! * [`multistart`] — the driver that combines the two and returns the best local minimum.
//!
//! The code is written against a plain `Fn(&[f64]) -> f64` objective so the estimators stay
//! decoupled from the optimiser. The grid scan and the multistart restarts also come in
//! parallel forms ([`grid_search_par`], [`multistart_minimize_par`]) built on the
//! deterministic `kronpriv-par` executor: for a pure (`Fn + Sync`) objective they return
//! bit-identical results for every thread count, so the thread knob is purely a performance
//! control — the same contract the counting kernels already honour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod multistart;
pub mod nelder_mead;

pub use grid::{grid_search, grid_search_par};
pub use multistart::{multistart_minimize, multistart_minimize_par, MultistartOptions};
pub use nelder_mead::{nelder_mead, Bounds, NelderMeadOptions, OptimizationResult};
