//! Multi-start minimisation: coarse grid scan followed by Nelder–Mead refinement of the most
//! promising starting points. This is the driver the KronMom and private estimators call.

use crate::grid::grid_search;
use crate::nelder_mead::{nelder_mead, Bounds, NelderMeadOptions, OptimizationResult};

/// Options for [`multistart_minimize`].
#[derive(Debug, Clone, Copy)]
pub struct MultistartOptions {
    /// Points per axis of the seeding grid.
    pub grid_points_per_axis: usize,
    /// How many of the best grid points to refine with Nelder–Mead.
    pub refine_top: usize,
    /// Options forwarded to each Nelder–Mead run.
    pub nelder_mead: NelderMeadOptions,
}

impl Default for MultistartOptions {
    fn default() -> Self {
        MultistartOptions {
            grid_points_per_axis: 7,
            refine_top: 5,
            nelder_mead: NelderMeadOptions::default(),
        }
    }
}

/// Minimises `f` over `bounds`: evaluates a coarse grid, refines the `refine_top` best grid
/// points with Nelder–Mead (plus any caller-provided extra starting points) and returns the best
/// result found.
pub fn multistart_minimize<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    bounds: &Bounds,
    extra_starts: &[Vec<f64>],
    options: &MultistartOptions,
) -> OptimizationResult {
    let grid = grid_search(&mut f, bounds, options.grid_points_per_axis);
    let mut starts: Vec<Vec<f64>> = grid
        .iter()
        .take(options.refine_top.max(1))
        .map(|p| p.point.clone())
        .collect();
    for s in extra_starts {
        let mut s = s.clone();
        bounds.project(&mut s);
        starts.push(s);
    }

    let mut best: Option<OptimizationResult> = None;
    let mut total_evaluations = grid.len();
    for start in &starts {
        let result = nelder_mead(&mut f, start, bounds, &options.nelder_mead);
        total_evaluations += result.evaluations;
        let replace = match &best {
            None => true,
            Some(b) => result.value < b.value,
        };
        if replace {
            best = Some(result);
        }
    }
    let mut best = best.expect("at least one start point is always refined");
    best.evaluations = total_evaluations;
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_global_minimum_of_a_two_well_function() {
        // Local minimum near (0.2, 0.2) with value ~0.05; global minimum near (0.8, 0.8) with
        // value ~0. Plain Nelder-Mead from a bad start can land in the shallow well; the grid
        // seeding should find the deep one.
        let f = |x: &[f64]| {
            let local = (x[0] - 0.2).powi(2) + (x[1] - 0.2).powi(2) + 0.05;
            let global = (x[0] - 0.8).powi(2) + (x[1] - 0.8).powi(2);
            local.min(global)
        };
        let result =
            multistart_minimize(f, &Bounds::unit(2), &[], &MultistartOptions::default());
        assert!((result.point[0] - 0.8).abs() < 1e-3, "{:?}", result.point);
        assert!((result.point[1] - 0.8).abs() < 1e-3, "{:?}", result.point);
        assert!(result.value < 1e-6);
    }

    #[test]
    fn extra_starts_are_used() {
        // Narrow spike minimum that a 3-point grid misses entirely; the caller-provided start is
        // right next to it.
        let f = |x: &[f64]| {
            let d = (x[0] - 0.33).abs();
            if d < 0.02 {
                d - 1.0
            } else {
                d
            }
        };
        let opts = MultistartOptions {
            grid_points_per_axis: 3,
            refine_top: 1,
            nelder_mead: NelderMeadOptions { initial_step: 0.01, ..Default::default() },
        };
        let result = multistart_minimize(f, &Bounds::unit(1), &[vec![0.335]], &opts);
        assert!(result.value < -0.9, "value {}", result.value);
    }

    #[test]
    fn evaluation_count_includes_grid_and_refinements() {
        let opts = MultistartOptions {
            grid_points_per_axis: 4,
            refine_top: 2,
            nelder_mead: NelderMeadOptions { max_evaluations: 30, ..Default::default() },
        };
        let result =
            multistart_minimize(|x| x[0] * x[0], &Bounds::unit(1), &[], &opts);
        assert!(result.evaluations >= 4, "grid evaluations should be counted");
        assert!(result.evaluations <= 4 + 2 * 40, "refinements are budget-limited");
    }

    #[test]
    fn result_stays_inside_the_box() {
        let bounds = Bounds::new(vec![0.2, 0.3], vec![0.8, 0.9]);
        let result = multistart_minimize(
            |x| (x[0] + 2.0).powi(2) + (x[1] + 2.0).powi(2),
            &bounds,
            &[],
            &MultistartOptions::default(),
        );
        assert!(bounds.contains(&result.point));
        assert!((result.point[0] - 0.2).abs() < 1e-6);
        assert!((result.point[1] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn three_dimensional_recovery_matches_target() {
        // Structured like the (a, b, c) fitting problem: recover a known triple from a smooth
        // discrepancy function.
        let target = [0.99, 0.45, 0.25];
        let f = |x: &[f64]| {
            x.iter().zip(&target).map(|(xi, ti)| (xi - ti) * (xi - ti)).sum::<f64>()
        };
        let result =
            multistart_minimize(f, &Bounds::unit(3), &[], &MultistartOptions::default());
        for (p, t) in result.point.iter().zip(&target) {
            assert!((p - t).abs() < 1e-3, "{:?}", result.point);
        }
    }
}
