//! Multi-start minimisation: coarse grid scan followed by Nelder–Mead refinement of the most
//! promising starting points. This is the driver the KronMom and private estimators call.
//!
//! Two forms are provided. [`multistart_minimize`] is the original sequential driver over an
//! arbitrary `FnMut` objective. [`multistart_minimize_par`] runs the grid scan and every
//! Nelder–Mead restart as independent chunked tasks on an [`Executor`]; because each restart
//! is a deterministic function of its start point and the per-restart outcomes are reduced in
//! start-index order with a lowest-objective / lowest-index tie-break, the parallel driver
//! returns **bit-identical** results for every thread count — and bit-identical to the
//! sequential driver on the same (pure) objective.

use crate::grid::{grid_search, grid_search_par, GridPoint};
use crate::nelder_mead::{nelder_mead, Bounds, NelderMeadOptions, OptimizationResult};
use kronpriv_par::{Executor, Work};

/// Cost hint for one Nelder–Mead restart: each restart runs up to hundreds of objective
/// evaluations, so a restart always dwarfs the spawn overhead.
const RESTART_WORK: Work = Work::per_item_ns(1_000_000);

/// Options for [`multistart_minimize`].
#[derive(Debug, Clone, Copy)]
pub struct MultistartOptions {
    /// Points per axis of the seeding grid.
    pub grid_points_per_axis: usize,
    /// How many of the best grid points to refine with Nelder–Mead.
    pub refine_top: usize,
    /// Options forwarded to each Nelder–Mead run.
    pub nelder_mead: NelderMeadOptions,
}

impl Default for MultistartOptions {
    fn default() -> Self {
        MultistartOptions {
            grid_points_per_axis: 7,
            refine_top: 5,
            nelder_mead: NelderMeadOptions::default(),
        }
    }
}

/// The refinement start list: the `refine_top` best grid points followed by the caller's extra
/// starts (projected into the box). Shared by the sequential and parallel drivers so their
/// restart sets — and therefore their results — are identical.
fn collect_starts(
    grid: &[GridPoint],
    bounds: &Bounds,
    extra_starts: &[Vec<f64>],
    options: &MultistartOptions,
) -> Vec<Vec<f64>> {
    let mut starts: Vec<Vec<f64>> =
        grid.iter().take(options.refine_top.max(1)).map(|p| p.point.clone()).collect();
    for s in extra_starts {
        let mut s = s.clone();
        bounds.project(&mut s);
        starts.push(s);
    }
    starts
}

/// Folds per-restart outcomes **in start-index order**, keeping the strictly-better result —
/// i.e. the lowest objective value, with ties broken towards the lowest start index. This is
/// the same selection rule as the sequential loop, stated once so both drivers share it.
fn select_best(
    outcomes: impl IntoIterator<Item = OptimizationResult>,
    grid_evaluations: usize,
) -> OptimizationResult {
    let mut best: Option<OptimizationResult> = None;
    let mut total_evaluations = grid_evaluations;
    for result in outcomes {
        total_evaluations += result.evaluations;
        let replace = match &best {
            None => true,
            Some(b) => result.value < b.value,
        };
        if replace {
            best = Some(result);
        }
    }
    let mut best = best.expect("at least one start point is always refined");
    best.evaluations = total_evaluations;
    best
}

/// Minimises `f` over `bounds`: evaluates a coarse grid, refines the `refine_top` best grid
/// points with Nelder–Mead (plus any caller-provided extra starting points) and returns the best
/// result found.
pub fn multistart_minimize<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    bounds: &Bounds,
    extra_starts: &[Vec<f64>],
    options: &MultistartOptions,
) -> OptimizationResult {
    let grid = grid_search(&mut f, bounds, options.grid_points_per_axis);
    let starts = collect_starts(&grid, bounds, extra_starts, options);
    let outcomes =
        starts.iter().map(|start| nelder_mead(&mut f, start, bounds, &options.nelder_mead));
    // `select_best` needs the outcomes one at a time while `f` is mutably borrowed by the
    // iterator, so collect first.
    let outcomes: Vec<OptimizationResult> = outcomes.collect();
    select_best(outcomes, grid.len())
}

/// Parallel form of [`multistart_minimize`]: the seeding grid is scanned with
/// [`grid_search_par`] and every Nelder–Mead restart runs as an independent chunked task on
/// `exec`. Each restart is a pure function of its start point, the per-restart outcomes are
/// reduced in start-index order, and ties in the final objective value are broken towards the
/// lowest start index — so the result (point, value and evaluation count) is **bit-identical**
/// for every thread count, and bit-identical to the sequential driver. Requires a `Fn + Sync`
/// objective: workers share `f` by reference and need no locking.
pub fn multistart_minimize_par(
    f: impl Fn(&[f64]) -> f64 + Sync,
    bounds: &Bounds,
    extra_starts: &[Vec<f64>],
    options: &MultistartOptions,
    exec: &Executor,
) -> OptimizationResult {
    let grid = grid_search_par(&f, bounds, options.grid_points_per_axis, exec);
    let starts = collect_starts(&grid, bounds, extra_starts, options);
    // One restart per chunk: restarts are few (single digits) and each is orders of magnitude
    // heavier than the chunk bookkeeping, so the finest decomposition gives the best balance.
    let outcomes = exec.map_reduce(
        starts.len(),
        1,
        RESTART_WORK,
        |range| {
            range
                .map(|i| nelder_mead(&f, &starts[i], bounds, &options.nelder_mead))
                .collect::<Vec<_>>()
        },
        |mut acc: Vec<OptimizationResult>, chunk| {
            acc.extend(chunk);
            acc
        },
        Vec::with_capacity(starts.len()),
    );
    select_best(outcomes, grid.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_global_minimum_of_a_two_well_function() {
        // Local minimum near (0.2, 0.2) with value ~0.05; global minimum near (0.8, 0.8) with
        // value ~0. Plain Nelder-Mead from a bad start can land in the shallow well; the grid
        // seeding should find the deep one.
        let f = |x: &[f64]| {
            let local = (x[0] - 0.2).powi(2) + (x[1] - 0.2).powi(2) + 0.05;
            let global = (x[0] - 0.8).powi(2) + (x[1] - 0.8).powi(2);
            local.min(global)
        };
        let result = multistart_minimize(f, &Bounds::unit(2), &[], &MultistartOptions::default());
        assert!((result.point[0] - 0.8).abs() < 1e-3, "{:?}", result.point);
        assert!((result.point[1] - 0.8).abs() < 1e-3, "{:?}", result.point);
        assert!(result.value < 1e-6);
    }

    #[test]
    fn extra_starts_are_used() {
        // Narrow spike minimum that a 3-point grid misses entirely; the caller-provided start is
        // right next to it.
        let f = |x: &[f64]| {
            let d = (x[0] - 0.33).abs();
            if d < 0.02 {
                d - 1.0
            } else {
                d
            }
        };
        let opts = MultistartOptions {
            grid_points_per_axis: 3,
            refine_top: 1,
            nelder_mead: NelderMeadOptions { initial_step: 0.01, ..Default::default() },
        };
        let result = multistart_minimize(f, &Bounds::unit(1), &[vec![0.335]], &opts);
        assert!(result.value < -0.9, "value {}", result.value);
    }

    #[test]
    fn evaluation_count_includes_grid_and_refinements() {
        let opts = MultistartOptions {
            grid_points_per_axis: 4,
            refine_top: 2,
            nelder_mead: NelderMeadOptions { max_evaluations: 30, ..Default::default() },
        };
        let result = multistart_minimize(|x| x[0] * x[0], &Bounds::unit(1), &[], &opts);
        assert!(result.evaluations >= 4, "grid evaluations should be counted");
        assert!(result.evaluations <= 4 + 2 * 40, "refinements are budget-limited");
    }

    #[test]
    fn result_stays_inside_the_box() {
        let bounds = Bounds::new(vec![0.2, 0.3], vec![0.8, 0.9]);
        let result = multistart_minimize(
            |x| (x[0] + 2.0).powi(2) + (x[1] + 2.0).powi(2),
            &bounds,
            &[],
            &MultistartOptions::default(),
        );
        assert!(bounds.contains(&result.point));
        assert!((result.point[0] - 0.2).abs() < 1e-6);
        assert!((result.point[1] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn parallel_driver_is_bit_identical_to_sequential_for_all_thread_counts() {
        let f = |x: &[f64]| {
            let local = (x[0] - 0.2).powi(2) + (x[1] - 0.2).powi(2) + 0.05;
            let global = (x[0] - 0.8).powi(2) + (x[1] - 0.8).powi(2);
            local.min(global)
        };
        let bounds = Bounds::unit(2);
        let opts = MultistartOptions::default();
        let reference = multistart_minimize(f, &bounds, &[vec![0.5, 0.1]], &opts);
        for threads in [1usize, 2, 8] {
            let got = multistart_minimize_par(
                f,
                &bounds,
                &[vec![0.5, 0.1]],
                &opts,
                &Executor::new(threads),
            );
            assert_eq!(got.value.to_bits(), reference.value.to_bits(), "threads {threads}");
            assert_eq!(got.evaluations, reference.evaluations, "threads {threads}");
            for (a, b) in got.point.iter().zip(&reference.point) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads {threads}");
            }
        }
    }

    #[test]
    fn equal_objective_ties_break_towards_the_lowest_index_start() {
        // Two flat-bottomed wells that both reach exactly 0.0, so several restarts tie on the
        // final objective value. The deterministic rule — lowest objective, then lowest start
        // index — must pick the same well for every thread count (and for the sequential
        // driver): the left well, because the stable grid sort puts its seed first.
        let f = |x: &[f64]| {
            let d = (x[0] - 0.25).abs().min((x[0] - 0.75).abs());
            (d - 0.1).max(0.0)
        };
        let bounds = Bounds::unit(1);
        let opts = MultistartOptions {
            grid_points_per_axis: 5, // lattice {0, 0.25, 0.5, 0.75, 1}: seeds in both wells
            refine_top: 2,
            nelder_mead: NelderMeadOptions::default(),
        };
        let reference = multistart_minimize(f, &bounds, &[], &opts);
        assert_eq!(reference.value, 0.0);
        assert!(reference.point[0] < 0.5, "tie must resolve to the left well: {reference:?}");
        for threads in [1usize, 2, 8] {
            let got = multistart_minimize_par(f, &bounds, &[], &opts, &Executor::new(threads));
            assert_eq!(got.value, 0.0, "threads {threads}");
            assert_eq!(
                got.point[0].to_bits(),
                reference.point[0].to_bits(),
                "threads {threads}: {got:?}"
            );
        }
    }

    #[test]
    fn three_dimensional_recovery_matches_target() {
        // Structured like the (a, b, c) fitting problem: recover a known triple from a smooth
        // discrepancy function.
        let target = [0.99, 0.45, 0.25];
        let f =
            |x: &[f64]| x.iter().zip(&target).map(|(xi, ti)| (xi - ti) * (xi - ti)).sum::<f64>();
        let result = multistart_minimize(f, &Bounds::unit(3), &[], &MultistartOptions::default());
        for (p, t) in result.point.iter().zip(&target) {
            assert!((p - t).abs() < 1e-3, "{:?}", result.point);
        }
    }
}
