//! The process-global instrument registry and its Prometheus-style text dump.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A registered instrument: one name plus a sorted label set maps to exactly one of these.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// `(metric name, labels sorted by key)` — the identity of one time series.
type Key = (String, Vec<(String, String)>);

/// A get-or-create registry of named instruments with a deterministic text dump.
///
/// Hot paths resolve their handles once (e.g. into a `OnceLock`) and never touch the registry
/// mutex again; the mutex only guards registration and scraping. The dump order is fully
/// determined by the registered names and labels (a `BTreeMap` walk), so two scrapes of the
/// same set of series differ only in the sampled values.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<Key, Instrument>>,
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses [`Registry::global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry every subsystem records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// A shared handle to the counter `name{labels}`, creating it on first use.
    ///
    /// # Panics
    /// On malformed names/labels or if the series was already registered as another kind —
    /// both are programmer errors, caught by the first scrape in any test run.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.instrument(name, labels, || Instrument::Counter(Arc::new(Counter::new()))) {
            Instrument::Counter(c) => c,
            other => panic!("{name} is registered as a {}, not a counter", other.kind()),
        }
    }

    /// A shared handle to the gauge `name{labels}`, creating it on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.instrument(name, labels, || Instrument::Gauge(Arc::new(Gauge::new()))) {
            Instrument::Gauge(g) => g,
            other => panic!("{name} is registered as a {}, not a gauge", other.kind()),
        }
    }

    /// A shared handle to the histogram `name{labels}`, creating it on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.instrument(name, labels, || Instrument::Histogram(Arc::new(Histogram::new()))) {
            Instrument::Histogram(h) => h,
            other => panic!("{name} is registered as a {}, not a histogram", other.kind()),
        }
    }

    fn instrument(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        create: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?} on metric {name}");
        }
        let mut sorted: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        sorted.sort();
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        inner.entry((name.to_string(), sorted)).or_insert_with(create).clone()
    }

    /// Renders every registered series in the Prometheus text exposition format.
    ///
    /// Output is stable: series appear sorted by name then label set, each name introduced by
    /// a single `# TYPE` line, histograms expanded into cumulative `_bucket{le=...}` lines
    /// plus `_sum` and `_count`.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("obs registry poisoned");
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for ((name, labels), instrument) in inner.iter() {
            if last_name != Some(name.as_str()) {
                out.push_str(&format!("# TYPE {name} {}\n", instrument.kind()));
                last_name = Some(name.as_str());
            }
            match instrument {
                Instrument::Counter(c) => {
                    out.push_str(&format!("{name}{} {}\n", render_labels(labels, None), c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!("{name}{} {}\n", render_labels(labels, None), g.get()));
                }
                Instrument::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, bucket) in counts.iter().enumerate() {
                        cumulative += bucket;
                        let le = match Histogram::bucket_bound(i) {
                            Some(bound) => bound.to_string(),
                            None => "+Inf".to_string(),
                        };
                        out.push_str(&format!(
                            "{name}_bucket{} {cumulative}\n",
                            render_labels(labels, Some(&le)),
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        render_labels(labels, None),
                        h.sum_ns()
                    ));
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        render_labels(labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }
}

/// Starts an RAII span over the global `kronpriv_stage_ns{stage=...}` histogram and bumps the
/// matching `kronpriv_stage_total` counter — the one-liner the pipeline stages use. Stages run
/// once per estimate, so the registry lookup cost is irrelevant here.
pub fn stage_span(stage: &str) -> crate::Span {
    let registry = Registry::global();
    registry.counter("kronpriv_stage_total", &[("stage", stage)]).inc();
    registry.histogram("kronpriv_stage_ns", &[("stage", stage)]).span()
}

/// Renders `{k="v",...}` (empty string for no labels), appending `le` when given.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Prometheus label-value escaping: backslash, double quote and newline.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — the Prometheus metric-name grammar.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `[a-zA-Z_][a-zA-Z0-9_]*` — the Prometheus label-name grammar.
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Whether one line of a text exposition is well-formed: a `# TYPE`/`# HELP` comment, or
/// `name{labels} value` with a valid metric name and a parseable (or `+Inf`) value.
///
/// This is the shape every scrape validator in the workspace enforces — the server's own
/// tests, `kronpriv-serve --metrics`, and the CI gate that scrapes a live server — so it
/// lives here rather than being re-derived per consumer.
pub fn well_formed_exposition_line(line: &str) -> bool {
    if line.starts_with('#') {
        return line.starts_with("# TYPE ") || line.starts_with("# HELP ");
    }
    let (series, value) = match line.rsplit_once(' ') {
        Some(parts) => parts,
        None => return false,
    };
    let name = series.split('{').next().unwrap_or("");
    valid_metric_name(name) && (value.parse::<f64>().is_ok() || value == "+Inf")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let r = Registry::new();
        r.counter("requests_total", &[("path", "/x")]).add(2);
        r.counter("requests_total", &[("path", "/x")]).inc();
        assert_eq!(r.counter("requests_total", &[("path", "/x")]).get(), 3);
        // A different label set is a different series.
        assert_eq!(r.counter("requests_total", &[("path", "/y")]).get(), 0);
        // Label order does not matter: the key is sorted.
        r.counter("pairs_total", &[("a", "1"), ("b", "2")]).inc();
        assert_eq!(r.counter("pairs_total", &[("b", "2"), ("a", "1")]).get(), 1);
    }

    #[test]
    fn render_is_stable_and_well_formed() {
        let r = Registry::new();
        r.counter("beta_total", &[("work", "light")]).add(7);
        r.counter("beta_total", &[("work", "heavy")]).add(1);
        r.gauge("alpha_size", &[]).set(4);
        r.histogram("gamma_ns", &[]).record_ns(1000);
        let text = r.render();
        assert_eq!(text, r.render(), "scrapes of unchanged values must be identical");
        assert!(text.contains("# TYPE alpha_size gauge\nalpha_size 4\n"));
        // Sorted: heavy before light; exactly one TYPE line for the family.
        let beta = "# TYPE beta_total counter\nbeta_total{work=\"heavy\"} 1\nbeta_total{work=\"light\"} 7\n";
        assert!(text.contains(beta), "{text}");
        assert_eq!(text.matches("# TYPE beta_total").count(), 1);
        // Histogram family: cumulative buckets, +Inf, sum and count.
        assert!(text.contains("gamma_ns_bucket{le=\"1024\"} 1\n"));
        assert!(text.contains("gamma_ns_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("gamma_ns_sum 1000\n"));
        assert!(text.contains("gamma_ns_count 1\n"));
        // Every line is a comment or `name{...} value` — the verify-script contract.
        for line in text.lines() {
            assert!(well_formed_exposition_line(line), "malformed: {line}");
        }
    }

    #[test]
    fn exposition_line_validator_rejects_garbage() {
        for good in ["# TYPE x counter", "# HELP x help", "x_total 1", "x{a=\"b\"} 1.5e3"] {
            assert!(well_formed_exposition_line(good), "{good}");
        }
        for bad in ["# COMMENT", "bare-words here no", "x_total", "1x_total 2", "x_total one"] {
            assert!(!well_formed_exposition_line(bad), "{bad}");
        }
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("thing", &[]);
        r.gauge("thing", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_panic() {
        Registry::new().counter("bad name", &[]);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Registry::global();
        let b = Registry::global();
        assert!(std::ptr::eq(a, b));
    }
}
