//! Lock-free instruments: counters, gauges, power-of-two histograms and RAII spans.
//!
//! Everything here is write-mostly: the hot paths (executor dispatch, kernel inner loops)
//! only ever `fetch_add` with relaxed ordering, and nothing they record is ever read back by
//! compute code — see the crate-level no-feedback invariant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of histogram buckets. Bucket `i < HISTOGRAM_BUCKETS - 1` holds values
/// `v <= 2^i` nanoseconds (and greater than the previous bound); the last bucket is `+Inf`.
/// 39 finite bounds cover `2^38` ns ≈ 4.6 minutes, far beyond any span the workspace times.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero. Most callers get shared handles from [`crate::Registry`].
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (reporting only).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (pool sizes, in-flight job counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero (a late decrement after a reset must not wrap).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Current value (reporting only).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram of nanosecond durations over fixed power-of-two buckets.
///
/// Recording is branch-light: the bucket index is derived from the leading zeros of the
/// value, then two relaxed `fetch_add`s (bucket + sum) and a count increment. Buckets are
/// monotonic — they only ever grow — so concurrent scrapes see a consistent-enough snapshot
/// without any locking.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The bucket an observation of `ns` lands in: the smallest `i` with `ns <= 2^i`,
    /// clamped into the final `+Inf` bucket.
    fn bucket_index(ns: u64) -> usize {
        if ns <= 1 { 0 } else { (u64::BITS - (ns - 1).leading_zeros()) as usize }
            .min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive upper bound of finite bucket `i` (`2^i` ns); `None` for the `+Inf` bucket.
    pub fn bucket_bound(i: usize) -> Option<u64> {
        (i < HISTOGRAM_BUCKETS - 1).then(|| 1u64 << i)
    }

    /// Per-bucket counts (reporting only).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total nanoseconds observed (reporting only).
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Number of observations (reporting only).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Starts an RAII span that records its elapsed time into this histogram on drop.
    pub fn span(self: &Arc<Histogram>) -> Span {
        Span { histogram: Arc::clone(self), start: Instant::now() }
    }
}

/// An RAII timer: created against a histogram, records the elapsed nanoseconds when dropped.
/// The elapsed time is write-only — a span exposes no way to read the clock back, keeping the
/// no-feedback invariant syntactically obvious at every call site.
#[derive(Debug)]
pub struct Span {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.histogram.record_ns(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(3);
        g.inc();
        g.dec();
        assert_eq!(g.get(), 3);
        g.set(0);
        g.dec();
        assert_eq!(g.get(), 0, "gauge must saturate at zero");
    }

    #[test]
    fn histogram_buckets_are_powers_of_two_and_cumulative_counts_add_up() {
        let h = Histogram::new();
        for ns in [0, 1, 2, 3, 4, 1000, 1024, 1025, u64::MAX] {
            h.record_ns(ns);
        }
        let counts = h.bucket_counts();
        // 0 and 1 land in bucket 0; 2 in bucket 1; 3 and 4 in bucket 2.
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 2);
        // 1000 and 1024 are <= 2^10; 1025 goes one bucket up.
        assert_eq!(counts[10], 2);
        assert_eq!(counts[11], 1);
        // u64::MAX overflows every finite bound into the +Inf bucket.
        assert_eq!(counts[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.count(), 9);
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        assert_eq!(Histogram::bucket_bound(10), Some(1024));
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn span_records_exactly_one_observation_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _span = h.span();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum_ns() >= 1_000_000, "1ms sleep must record >= 1ms");
    }
}
