//! `kronpriv-obs` — the workspace's std-only observability core.
//!
//! Three small layers, shared by every crate from the executor up to the HTTP server:
//!
//! * [`Counter`], [`Gauge`] and [`Histogram`] — lock-free atomic instruments. Histograms use
//!   fixed power-of-two nanosecond buckets so recording is a shift and two atomic adds.
//! * [`Registry`] — a process-global, get-or-create instrument registry keyed by
//!   `(name, sorted labels)`, with a deterministic Prometheus-style text dump ([`Registry::render`]).
//! * [`ProgressEvent`] / [`ProgressSink`] — typed progress hooks the estimator loops emit into
//!   (stage boundaries, per-chain KronFit steps) so callers such as the HTTP job store can
//!   stream live progress without the compute code knowing about HTTP or JSON.
//!
//! # The no-feedback invariant
//!
//! Instrumentation must never change what is computed. Code in this crate reads clocks and
//! bumps atomics strictly for *reporting*: no instrument value ever flows back into a branch,
//! a chunk size, a scheduling decision or an RNG. Consequently a run with every span recorded
//! and the registry scraped mid-flight is byte-identical to the same seed with the
//! instrumentation left cold — pinned by `tests/observability_determinism.rs` at the
//! workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod progress;
mod registry;

pub use metrics::{Counter, Gauge, Histogram, Span, HISTOGRAM_BUCKETS};
pub use progress::{CollectingSink, NullSink, ProgressEvent, ProgressSink};
pub use registry::{stage_span, well_formed_exposition_line, Registry};
