//! Typed progress events and the sink trait the estimator loops emit into.
//!
//! The compute crates (`kronpriv-dp`, `kronpriv-estimate`, `kronpriv`) take a
//! `&dyn ProgressSink` in their `*_observed` entry points and call [`ProgressSink::emit`] at
//! stage boundaries and per-chain KronFit steps. What a sink *does* with an event — append it
//! to a job log, stream it over HTTP, drop it — is entirely the caller's business; nothing a
//! sink returns can alter the computation (emit returns `()`), preserving the crate-level
//! no-feedback invariant.

use std::sync::Mutex;

/// One typed progress observation from inside a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// A named pipeline stage began (e.g. `degree_release`, `isotonic`, `triangle_release`,
    /// `fit`).
    StageStarted {
        /// Stable stage identifier.
        stage: &'static str,
    },
    /// The named pipeline stage finished.
    StageFinished {
        /// Stable stage identifier.
        stage: &'static str,
    },
    /// One KronFit gradient-ascent step finished on one MCMC chain.
    ChainStep {
        /// Chain index in `0..chains`.
        chain: usize,
        /// Gradient step index in `0..total_steps` (zero-based).
        step: usize,
        /// Configured number of gradient steps.
        total_steps: usize,
        /// Log-likelihood of the chain's current state, when the sink asked for it via
        /// [`ProgressSink::wants_chain_likelihood`]; `NaN` otherwise. The extra likelihood
        /// evaluation consumes no randomness, so requesting it never changes results.
        log_likelihood: f64,
    },
}

/// Receiver of [`ProgressEvent`]s. Implementations must be cheap and non-blocking-ish: events
/// are emitted from inside parallel estimator loops.
pub trait ProgressSink: Sync {
    /// Receives one event. The return type is `()` by design — sinks cannot steer compute.
    fn emit(&self, event: &ProgressEvent);

    /// Whether [`ProgressEvent::ChainStep`] events should carry a freshly evaluated
    /// log-likelihood. Defaults to `false` so un-observed runs skip the extra evaluation.
    fn wants_chain_likelihood(&self) -> bool {
        false
    }
}

/// Discards every event — the default sink behind the plain (non-`_observed`) entry points.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn emit(&self, _event: &ProgressEvent) {}
}

/// Collects every event in order — for tests and the determinism pin.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<ProgressEvent>>,
    want_likelihood: bool,
}

impl CollectingSink {
    /// A collector that does not request chain likelihoods.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// A collector that requests per-step chain log-likelihoods.
    pub fn with_chain_likelihood() -> CollectingSink {
        CollectingSink { events: Mutex::new(Vec::new()), want_likelihood: true }
    }

    /// Everything emitted so far, in emission order.
    pub fn events(&self) -> Vec<ProgressEvent> {
        self.events.lock().expect("collecting sink poisoned").clone()
    }
}

impl ProgressSink for CollectingSink {
    fn emit(&self, event: &ProgressEvent) {
        self.events.lock().expect("collecting sink poisoned").push(event.clone());
    }

    fn wants_chain_likelihood(&self) -> bool {
        self.want_likelihood
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_sink_preserves_order_and_contents() {
        let sink = CollectingSink::new();
        sink.emit(&ProgressEvent::StageStarted { stage: "degree_release" });
        sink.emit(&ProgressEvent::ChainStep {
            chain: 1,
            step: 0,
            total_steps: 5,
            log_likelihood: -12.5,
        });
        sink.emit(&ProgressEvent::StageFinished { stage: "degree_release" });
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0], ProgressEvent::StageStarted { stage: "degree_release" });
        assert!(matches!(events[1], ProgressEvent::ChainStep { chain: 1, .. }));
        assert!(!sink.wants_chain_likelihood());
        assert!(CollectingSink::with_chain_likelihood().wants_chain_likelihood());
    }

    #[test]
    fn null_sink_is_object_safe_and_silent() {
        let sink: &dyn ProgressSink = &NullSink;
        sink.emit(&ProgressEvent::StageStarted { stage: "fit" });
        assert!(!sink.wants_chain_likelihood());
    }
}
