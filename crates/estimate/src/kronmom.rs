//! The KronMom estimator (Gleich & Owen): moment matching via the objective of Equation (2).
//!
//! Fitting is a three-dimensional box-constrained minimisation of [`MomentObjective`] over
//! `(a, b, c) ∈ [0, 1]³`; the `a ≥ c` convention is restored afterwards by canonicalising the
//! initiator (the objective is symmetric under swapping `a` and `c`, so this loses nothing).
//! The optimiser is the grid-seeded multistart Nelder–Mead of `kronpriv-optim`, which mirrors
//! the `fminsearch`-based reference implementation.

use crate::objective::MomentObjective;
use crate::{kronecker_order_for, FittedInitiator};
use kronpriv_graph::{Graph, MatchingStatistics};
use kronpriv_json::impl_json_struct_with_defaults;
use kronpriv_optim::{multistart_minimize_par, Bounds, MultistartOptions, NelderMeadOptions};
use kronpriv_par::Executor;
use kronpriv_skg::Initiator2;

/// Options for the KronMom fit.
#[derive(Debug, Clone, Copy)]
pub struct KronMomOptions {
    /// Grid resolution per axis for the multistart seeding.
    pub grid_points_per_axis: usize,
    /// How many grid cells to refine with Nelder–Mead.
    pub refine_top: usize,
    /// Maximum objective evaluations per Nelder–Mead run.
    pub max_evaluations: usize,
    /// Worker-pool size for the parallel fitting stage (grid scan + Nelder–Mead restarts);
    /// `0` means one worker per available hardware thread. The entry points without an `_on`
    /// suffix build one [`Executor`] of this size per fit; callers that already own a pool use
    /// the `_on` variants and this field is ignored. The parallel optimiser is bit-identical
    /// for every pool size, so this is purely a performance knob. When the fit runs inside
    /// `PrivateEstimator`, that estimator's own `compute_threads` governs the whole pipeline
    /// and overrides this field.
    pub compute_threads: usize,
}

// `compute_threads` may be *omitted* by older clients — absent means 0 ("auto") — while the
// pre-existing fields stay required. Same wire-compatibility treatment as
// `PrivateEstimatorOptions`.
impl_json_struct_with_defaults!(KronMomOptions {
    required: { grid_points_per_axis, refine_top, max_evaluations },
    defaults: { compute_threads: 0 },
});

impl Default for KronMomOptions {
    fn default() -> Self {
        KronMomOptions {
            grid_points_per_axis: 7,
            refine_top: 5,
            max_evaluations: 4000,
            compute_threads: 0,
        }
    }
}

impl KronMomOptions {
    /// Builds the [`Executor`] the suffix-free entry points run on (`0` ⇒ auto-sized pool).
    pub fn executor(&self) -> Executor {
        Executor::new(self.compute_threads)
    }
}

/// The KronMom estimator.
#[derive(Debug, Clone, Default)]
pub struct KronMomEstimator {
    options: KronMomOptions,
}

impl KronMomEstimator {
    /// Creates an estimator with the given options.
    pub fn new(options: KronMomOptions) -> Self {
        KronMomEstimator { options }
    }

    /// Fits an initiator to the observed graph: computes the exact matching statistics and
    /// minimises the standard objective. Builds a fresh pool per
    /// [`KronMomOptions::compute_threads`]; see [`Self::fit_graph_on`] to reuse one.
    pub fn fit_graph(&self, g: &Graph) -> FittedInitiator {
        self.fit_graph_on(g, &self.options.executor())
    }

    /// [`Self::fit_graph`] on a caller-owned executor (`options.compute_threads` is ignored).
    pub fn fit_graph_on(&self, g: &Graph, exec: &Executor) -> FittedInitiator {
        let stats = MatchingStatistics::of_graph(g);
        let k = kronecker_order_for(g.node_count());
        self.fit_statistics_on(&stats, k, exec)
    }

    /// Fits an initiator to pre-computed matching statistics for a graph of Kronecker order `k`.
    pub fn fit_statistics(&self, stats: &MatchingStatistics, k: u32) -> FittedInitiator {
        self.fit_statistics_on(stats, k, &self.options.executor())
    }

    /// [`Self::fit_statistics`] on a caller-owned executor.
    pub fn fit_statistics_on(
        &self,
        stats: &MatchingStatistics,
        k: u32,
        exec: &Executor,
    ) -> FittedInitiator {
        self.fit_objective_on(&MomentObjective::standard(stats, k), exec)
    }

    /// Fits an initiator by minimising an arbitrary (possibly non-default) moment objective.
    /// This is the entry point the private estimator and the objective-grid ablation use.
    pub fn fit_objective(&self, objective: &MomentObjective) -> FittedInitiator {
        self.fit_objective_on(objective, &self.options.executor())
    }

    /// [`Self::fit_objective`] on a caller-owned executor.
    pub fn fit_objective_on(
        &self,
        objective: &MomentObjective,
        exec: &Executor,
    ) -> FittedInitiator {
        let bounds = Bounds::unit(3);
        let nm = NelderMeadOptions {
            max_evaluations: self.options.max_evaluations,
            ..NelderMeadOptions::default()
        };
        let opts = MultistartOptions {
            grid_points_per_axis: self.options.grid_points_per_axis,
            refine_top: self.options.refine_top,
            nelder_mead: nm,
        };
        // Extra start: a "typical" real-network corner (high a, moderate b, low c), which is
        // where all of the paper's fits land; cheap insurance against a coarse grid.
        let extra = vec![vec![0.99, 0.5, 0.2]];
        // The objective moves behind an `Arc` so the per-restart workers of the parallel
        // multistart share the observed statistics without copying or locking; the optimiser
        // is bit-identical for every thread count, so `compute_threads` never changes the fit.
        let shared = objective.clone().into_shared();
        let result = multistart_minimize_par(
            move |p| shared.evaluate_params(p),
            &bounds,
            &extra,
            &opts,
            exec,
        );
        let theta =
            Initiator2::clamped(result.point[0], result.point[1], result.point[2]).canonicalized();
        FittedInitiator {
            theta,
            k: objective.k,
            objective_value: result.value,
            evaluations: result.evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{DistanceKind, NormalizationKind};
    use kronpriv_skg::moments::ExpectedMoments;
    use kronpriv_skg::sample::{sample_fast, SamplerOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stats_from_moments(theta: &Initiator2, k: u32) -> MatchingStatistics {
        let m = ExpectedMoments::of(theta, k);
        MatchingStatistics {
            edges: m.edges,
            hairpins: m.hairpins,
            tripins: m.tripins,
            triangles: m.triangles,
        }
    }

    #[test]
    fn recovers_parameters_from_noiseless_moments() {
        // Feeding the exact expected moments back into the fit must recover the generating
        // parameters: the objective has a zero at the truth.
        let truth = Initiator2::new(0.99, 0.45, 0.25);
        let k = 14;
        let fit = KronMomEstimator::default().fit_statistics(&stats_from_moments(&truth, k), k);
        assert!(fit.objective_value < 1e-8, "objective {}", fit.objective_value);
        assert!((fit.theta.a - truth.a).abs() < 0.02, "{:?}", fit.theta);
        assert!((fit.theta.b - truth.b).abs() < 0.02, "{:?}", fit.theta);
        assert!((fit.theta.c - truth.c).abs() < 0.02, "{:?}", fit.theta);
    }

    #[test]
    fn recovers_parameters_from_a_sampled_graph() {
        // Sample a synthetic Kronecker graph and recover its parameters from the observed
        // counts — the Table 1 "Synthetic" row in miniature (k = 11 to keep the test quick).
        let truth = Initiator2::new(0.99, 0.45, 0.25);
        let k = 11;
        let mut rng = StdRng::seed_from_u64(1);
        let g = sample_fast(&truth, k, &SamplerOptions::default(), &mut rng);
        let fit = KronMomEstimator::default().fit_graph(&g);
        assert_eq!(fit.k, k);
        // Sampling noise at this size keeps the estimates within a few hundredths, matching the
        // spread the paper reports between the three estimators.
        assert!((fit.theta.a - truth.a).abs() < 0.08, "{:?}", fit.theta);
        assert!((fit.theta.b - truth.b).abs() < 0.08, "{:?}", fit.theta);
        assert!((fit.theta.c - truth.c).abs() < 0.08, "{:?}", fit.theta);
    }

    #[test]
    fn canonicalisation_keeps_a_above_c() {
        let truth = Initiator2::new(0.3, 0.5, 0.9); // deliberately reversed
        let k = 10;
        let fit = KronMomEstimator::default().fit_statistics(&stats_from_moments(&truth, k), k);
        assert!(fit.theta.a >= fit.theta.c);
    }

    #[test]
    fn alternative_objectives_still_recover_the_truth() {
        let truth = Initiator2::new(0.9, 0.55, 0.15);
        let k = 12;
        let stats = stats_from_moments(&truth, k);
        // The Absolute/ExpectedSquared combination is intentionally omitted: its objective
        // decays like 1/E as the candidate model grows, so the all-ones corner forms a broad
        // spurious basin — exactly the fragility that leads Gleich & Owen to recommend
        // DistSq/NormF². The objective-grid ablation in the bench harness quantifies this.
        for (dist, norm) in [
            (DistanceKind::Squared, NormalizationKind::Expected),
            (DistanceKind::Absolute, NormalizationKind::Observed),
        ] {
            let objective =
                MomentObjective::standard(&stats, k).with_distance(dist).with_normalization(norm);
            let fit = KronMomEstimator::default().fit_objective(&objective);
            assert!(fit.theta.distance(&truth) < 0.05, "{dist:?}/{norm:?} -> {:?}", fit.theta);
        }
    }

    #[test]
    fn degenerate_empty_graph_fits_a_near_zero_model() {
        let g = Graph::empty(64);
        let fit = KronMomEstimator::default().fit_graph(&g);
        let m = ExpectedMoments::of(&fit.theta, fit.k);
        assert!(m.edges < 5.0, "expected nearly edge-free model, got {m:?}");
    }

    #[test]
    fn evaluations_are_reported() {
        let truth = Initiator2::new(0.9, 0.4, 0.2);
        let fit = KronMomEstimator::default().fit_statistics(&stats_from_moments(&truth, 10), 10);
        assert!(fit.evaluations > 7 * 7 * 7, "at least the seeding grid must be counted");
    }

    #[test]
    fn fit_is_bit_identical_for_all_thread_counts() {
        // The fitting stage must honour the same contract as the counting kernels: the thread
        // knob is purely a performance control.
        let truth = Initiator2::new(0.99, 0.45, 0.25);
        let stats = stats_from_moments(&truth, 12);
        let fit_with = |threads: usize| {
            let options = KronMomOptions { compute_threads: threads, ..Default::default() };
            KronMomEstimator::new(options).fit_statistics(&stats, 12)
        };
        let reference = fit_with(1);
        for threads in [2usize, 8] {
            let fit = fit_with(threads);
            assert_eq!(fit.theta.a.to_bits(), reference.theta.a.to_bits(), "threads {threads}");
            assert_eq!(fit.theta.b.to_bits(), reference.theta.b.to_bits(), "threads {threads}");
            assert_eq!(fit.theta.c.to_bits(), reference.theta.c.to_bits(), "threads {threads}");
            assert_eq!(
                fit.objective_value.to_bits(),
                reference.objective_value.to_bits(),
                "threads {threads}"
            );
            assert_eq!(fit.evaluations, reference.evaluations, "threads {threads}");
        }
    }

    #[test]
    fn options_json_defaults_compute_threads_when_omitted() {
        let options = KronMomOptions { compute_threads: 5, ..Default::default() };
        let text = kronpriv_json::to_string(&options);
        assert!(text.contains("\"compute_threads\":5"), "{text}");
        let back: KronMomOptions = kronpriv_json::from_str(&text).unwrap();
        assert_eq!(back.compute_threads, 5);
        // Back-compat: a pre-parallel-fitting options document still parses, defaulting to 0.
        let legacy = text.replace(",\"compute_threads\":5", "");
        let back: KronMomOptions = kronpriv_json::from_str(&legacy).unwrap();
        assert_eq!(back.compute_threads, 0);
        // The pre-existing fields remain required.
        let missing = legacy.replace("\"refine_top\":5,", "");
        assert!(kronpriv_json::from_str::<KronMomOptions>(&missing).is_err());
    }
}
