//! KronFit: the approximate maximum-likelihood estimator of Leskovec & Faloutsos (ICML 2007),
//! the paper's first baseline (the "KronFit" column of Table 1).
//!
//! The likelihood of an observed graph under a stochastic Kronecker model involves an unknown
//! correspondence between graph nodes and Kronecker indices. KronFit handles it the way the
//! original algorithm does:
//!
//! * the node-to-index assignment `σ` is sampled with a Metropolis chain over transpositions
//!   (swapping the indices of two nodes), using the likelihood itself as the stationary
//!   distribution,
//! * the log-likelihood over the quadratically many non-edges is approximated by the second-
//!   order Taylor expansion `ln(1 − p) ≈ −p − p²/2`, whose sum over *all* pairs has a closed
//!   form under the Kronecker structure; the exact edge terms are then corrected in,
//! * the initiator parameters follow the averaged stochastic gradient of that approximate
//!   log-likelihood, normalised to an infinity-norm trust region and projected into `[θmin, 1]`.
//!
//! Nodes beyond the observed node count (the padding up to `2^k`) participate in the assignment
//! but carry no edges, exactly as in the reference implementation.
//!
//! # Parallelism
//!
//! This estimator runs [`KronFitOptions::chains`] **independent Metropolis chains**, each
//! driven by its own RNG stream derived from the caller's generator via [`StdRng::split`], and
//! averages their gradients in fixed chain order at every ascent step. The chains fan out over
//! one shared [`Executor`] with the `kronpriv-par` chunk-order-reduction contract, and each
//! chain's per-edge likelihood/gradient sums are themselves edge-partitioned over fixed chunk
//! boundaries on the **same** executor (nested calls participate inline, so no thread budget
//! has to be split between the two levels). The consequence is the workspace's standard
//! determinism guarantee: the fit depends on the **chain count** (an algorithm parameter, part
//! of the result's definition) but is byte-identical for every **pool size** (a pure
//! performance knob).

use crate::{kronecker_order_for, FittedInitiator};
use kronpriv_graph::Graph;
use kronpriv_json::impl_json_struct_with_defaults;
use kronpriv_obs::{NullSink, ProgressEvent, ProgressSink};
use kronpriv_par::{Executor, Work};
use kronpriv_skg::Initiator2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Fixed edge-chunk size for the per-edge likelihood/gradient sums. A pure function of the
/// edge count — never of the thread count — so chunk-order reduction keeps the sums
/// byte-identical for any number of workers.
const EDGE_CHUNK: usize = 2_048;

/// Cost hint for one edge term: a `k`-bit digit count plus three `powi` calls.
const EDGE_WORK: Work = Work::MODERATE;

/// Cost hint for one Metropolis chain step: thousands of swap proposals plus several
/// edge-partitioned gradient sums — always worth a worker of its own.
const CHAIN_WORK: Work = Work::per_item_ns(1_000_000);

/// Options for the KronFit estimator.
#[derive(Debug, Clone, Copy)]
pub struct KronFitOptions {
    /// Number of gradient-ascent steps.
    pub gradient_steps: usize,
    /// Metropolis swap proposals executed before the first gradient sample of each step.
    pub warmup_swaps: usize,
    /// Number of permutation samples averaged per gradient step (per chain).
    pub samples_per_step: usize,
    /// Metropolis swap proposals between consecutive samples.
    pub swaps_between_samples: usize,
    /// Initial trust-region radius (infinity norm of the per-step parameter update).
    pub learning_rate: f64,
    /// Lower clamp applied to every parameter (keeps `ln θ` finite).
    pub min_parameter: f64,
    /// Starting initiator.
    pub initial: Initiator2,
    /// Number of independent Metropolis permutation chains whose gradients are averaged each
    /// ascent step. This is an **algorithm parameter**: changing it changes the fit (each chain
    /// consumes its own [`StdRng::split`] stream), unlike `compute_threads`, which never does.
    /// Values are clamped to at least 1.
    pub chains: usize,
    /// Worker-pool size for the parallel stages — the chain fan-out and the edge-partitioned
    /// likelihood/gradient sums; `0` means one worker per available hardware thread.
    /// [`KronFitEstimator::fit_graph`] builds one [`Executor`] of this size per fit; callers
    /// that already own a pool use [`KronFitEstimator::fit_graph_on`] and this field is
    /// ignored. The result is byte-identical for every pool size, so this is purely a
    /// performance knob.
    pub compute_threads: usize,
}

// `chains` and `compute_threads` may be *omitted* by older clients — absent means the
// pre-multi-chain defaults (4 chains, auto threads) — while the pre-existing fields stay
// required. Same wire-compatibility treatment as `KronMomOptions::compute_threads`.
impl_json_struct_with_defaults!(KronFitOptions {
    required: {
        gradient_steps,
        warmup_swaps,
        samples_per_step,
        swaps_between_samples,
        learning_rate,
        min_parameter,
        initial,
    },
    defaults: { chains: 4, compute_threads: 0 },
});

impl Default for KronFitOptions {
    fn default() -> Self {
        KronFitOptions {
            gradient_steps: 60,
            warmup_swaps: 20_000,
            samples_per_step: 4,
            swaps_between_samples: 2_000,
            learning_rate: 0.06,
            min_parameter: 1e-3,
            initial: Initiator2::new(0.9, 0.6, 0.2),
            chains: 4,
            compute_threads: 0,
        }
    }
}

impl KronFitOptions {
    /// Builds the [`Executor`] that [`KronFitEstimator::fit_graph`] runs on (`0` ⇒ auto-sized
    /// pool).
    pub fn executor(&self) -> Executor {
        Executor::new(self.compute_threads)
    }
}

/// The KronFit estimator.
#[derive(Debug, Clone, Default)]
pub struct KronFitEstimator {
    options: KronFitOptions,
}

/// Internal fitting state: the node-to-Kronecker-index assignment and its inverse.
struct Assignment {
    /// `sigma[node] = kronecker index`.
    sigma: Vec<usize>,
    /// `node_at[index] = node` (padding nodes included).
    node_at: Vec<usize>,
}

impl Assignment {
    fn identity(n_padded: usize) -> Self {
        Assignment { sigma: (0..n_padded).collect(), node_at: (0..n_padded).collect() }
    }

    fn swap_nodes(&mut self, u: usize, v: usize) {
        let (iu, iv) = (self.sigma[u], self.sigma[v]);
        self.sigma[u] = iv;
        self.sigma[v] = iu;
        self.node_at[iu] = v;
        self.node_at[iv] = u;
    }
}

/// One independent Metropolis chain: its permutation state plus its private RNG stream.
struct Chain {
    assignment: Assignment,
    rng: StdRng,
}

/// Digit-pair counts of an index pair: how many bit positions fall in the `a`, `b`, `c` cells of
/// the initiator.
fn digit_counts(x: usize, y: usize, k: u32) -> (u32, u32, u32) {
    let mut na = 0;
    let mut nb = 0;
    let mut nc = 0;
    for bit in 0..k {
        match ((x >> bit) & 1, (y >> bit) & 1) {
            (0, 0) => na += 1,
            (1, 1) => nc += 1,
            _ => nb += 1,
        }
    }
    (na, nb, nc)
}

fn edge_probability(theta: &Initiator2, counts: (u32, u32, u32)) -> f64 {
    theta.a.powi(counts.0 as i32) * theta.b.powi(counts.1 as i32) * theta.c.powi(counts.2 as i32)
}

/// Per-edge contribution to the corrected log-likelihood: `ln p + p + p²/2`.
fn edge_term(theta: &Initiator2, counts: (u32, u32, u32)) -> f64 {
    let p = edge_probability(theta, counts);
    p.ln() + p + 0.5 * p * p
}

/// The permutation-independent closed-form part: `−½(S − S_diag) − ¼(S₂ − S₂_diag)` where `S`
/// and `S₂` are the sums of `p` and `p²` over all ordered pairs (including loops).
fn closed_form_part(theta: &Initiator2, k: u32) -> f64 {
    let (a, b, c) = (theta.a, theta.b, theta.c);
    let s_all = (a + 2.0 * b + c).powi(k as i32);
    let s_diag = (a + c).powi(k as i32);
    let s2_all = (a * a + 2.0 * b * b + c * c).powi(k as i32);
    let s2_diag = (a * a + c * c).powi(k as i32);
    -0.5 * (s_all - s_diag) - 0.25 * (s2_all - s2_diag)
}

/// Gradient of [`closed_form_part`] with respect to `(a, b, c)`.
fn closed_form_gradient(theta: &Initiator2, k: u32) -> [f64; 3] {
    if k == 0 {
        // A 2^0-node "graph" has one index pair and no free bit positions: the closed form is
        // constant, so its gradient vanishes. Without this guard `powi(k − 1)` is `powi(-1)` —
        // a reciprocal that used to feed garbage into the ascent for degenerate inputs.
        return [0.0; 3];
    }
    let (a, b, c) = (theta.a, theta.b, theta.c);
    let kf = k as f64;
    let s_all = (a + 2.0 * b + c).powi(k as i32 - 1);
    let s_diag = (a + c).powi(k as i32 - 1);
    let s2_all = (a * a + 2.0 * b * b + c * c).powi(k as i32 - 1);
    let s2_diag = (a * a + c * c).powi(k as i32 - 1);
    [
        -0.5 * kf * (s_all - s_diag) - 0.25 * kf * (2.0 * a * s2_all - 2.0 * a * s2_diag),
        -0.5 * kf * 2.0 * s_all - 0.25 * kf * 4.0 * b * s2_all,
        -0.5 * kf * (s_all - s_diag) - 0.25 * kf * (2.0 * c * s2_all - 2.0 * c * s2_diag),
    ]
}

impl KronFitEstimator {
    /// Creates an estimator with the given options.
    pub fn new(options: KronFitOptions) -> Self {
        KronFitEstimator { options }
    }

    /// Fits an initiator to `g` by multi-chain stochastic gradient ascent on the approximate
    /// log-likelihood.
    ///
    /// Exactly one `u64` is drawn from `rng` to seed the chain family; every chain then runs on
    /// its own [`StdRng::split`] stream. The fit is a pure function of `(g, options, that
    /// draw)` — in particular it is byte-identical for every `compute_threads` value.
    pub fn fit_graph<R: Rng + ?Sized>(&self, g: &Graph, rng: &mut R) -> FittedInitiator {
        self.fit_graph_on(g, rng, &self.options.executor())
    }

    /// [`Self::fit_graph`] on a caller-owned executor: both the chain fan-out and the nested
    /// edge-partitioned sums borrow `exec` (`options.compute_threads` is ignored). The fit is
    /// byte-identical to [`Self::fit_graph`] for any pool size.
    pub fn fit_graph_on<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        rng: &mut R,
        exec: &Executor,
    ) -> FittedInitiator {
        self.fit_graph_on_observed(g, rng, exec, &NullSink)
    }

    /// [`Self::fit_graph_on`] with typed progress reporting: a
    /// [`ProgressEvent::StageStarted`]/[`ProgressEvent::StageFinished`] pair for the whole
    /// `kronfit` stage, plus one [`ProgressEvent::ChainStep`] per chain per ascent step
    /// (emitted from whichever worker ran the chain, so events from different chains may
    /// interleave; within one chain the step order is monotone).
    ///
    /// `ChainStep::log_likelihood` is `NaN` unless the sink opts in via
    /// [`ProgressSink::wants_chain_likelihood`] — the extra per-step likelihood evaluation
    /// consumes no randomness, so opting in (or not) never changes the fit. Either way the
    /// result is byte-identical to [`Self::fit_graph_on`] with the same seed: the sink is
    /// strictly an observer (the `kronpriv-obs` no-feedback invariant).
    pub fn fit_graph_on_observed<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        rng: &mut R,
        exec: &Executor,
        sink: &dyn ProgressSink,
    ) -> FittedInitiator {
        sink.emit(&ProgressEvent::StageStarted { stage: "kronfit" });
        let _stage = kronpriv_obs::stage_span("kronfit");
        let fit = self.fit_chains(g, rng, exec, sink);
        sink.emit(&ProgressEvent::StageFinished { stage: "kronfit" });
        fit
    }

    /// The multi-chain ascent loop behind [`Self::fit_graph_on_observed`].
    fn fit_chains<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        rng: &mut R,
        exec: &Executor,
        sink: &dyn ProgressSink,
    ) -> FittedInitiator {
        let k = kronecker_order_for(g.node_count());
        let mut theta = clamp_theta(&self.options.initial, self.options.min_parameter);

        if k == 0 {
            // Empty or single-node graph: there is no assignment to sample and no bit position
            // to differentiate over, so the fit degenerates to the clamped starting initiator.
            return FittedInitiator {
                theta: theta.canonicalized(),
                k,
                objective_value: 0.0,
                evaluations: 0,
            };
        }

        let n_padded = 1usize << k;
        let chains = self.options.chains.max(1);

        // One draw from the caller's RNG seeds the whole chain family; each chain's stream is
        // then derived by `StdRng::split`, so the fit depends on the chain count but never on
        // the thread count.
        let root = StdRng::seed_from_u64(rng.next_u64());
        let states: Vec<Mutex<Chain>> = (0..chains)
            .map(|i| {
                Mutex::new(Chain {
                    assignment: Assignment::identity(n_padded),
                    rng: root.split(i as u64),
                })
            })
            .collect();

        let mut evaluations = 0usize;
        for step in 0..self.options.gradient_steps {
            // Fan the chains out over the workers: chunk size 1 makes chunk index == chain
            // index, and the chunk-order fold below averages the per-chain gradients in fixed
            // chain order whatever thread ran which chain.
            let (gradient, step_evaluations) = exec.map_reduce(
                chains,
                1,
                CHAIN_WORK,
                |range| {
                    let chain_index = range.start;
                    let mut chain =
                        states[chain_index].lock().expect("a chain worker panicked earlier");
                    let chain = &mut *chain;
                    let result = self.chain_gradient(g, &theta, k, n_padded, chain, exec);
                    // Reporting only: the optional likelihood probe reads the chain state but
                    // consumes no randomness, so the fit is identical whatever the sink asks for.
                    let log_likelihood = if sink.wants_chain_likelihood() {
                        self.log_likelihood(g, &theta, k, &chain.assignment, exec)
                    } else {
                        f64::NAN
                    };
                    sink.emit(&ProgressEvent::ChainStep {
                        chain: chain_index,
                        step,
                        total_steps: self.options.gradient_steps,
                        log_likelihood,
                    });
                    result
                },
                |(mut acc, evals): ([f64; 3], usize), (grad, chain_evals)| {
                    for i in 0..3 {
                        acc[i] += grad[i] / chains as f64;
                    }
                    (acc, evals + chain_evals)
                },
                ([0.0f64; 3], 0usize),
            );
            evaluations += step_evaluations;

            // Trust-region ascent step: normalise to infinity norm, decay the radius.
            let max_component = gradient.iter().map(|g| g.abs()).fold(0.0_f64, f64::max);
            if max_component <= 1e-15 {
                break;
            }
            let radius = self.options.learning_rate / (1.0 + step as f64 / 20.0);
            let mut params = theta.as_array();
            for i in 0..3 {
                params[i] += radius * gradient[i] / max_component;
            }
            theta = clamp_theta(
                &Initiator2::clamped(params[0], params[1], params[2]),
                self.options.min_parameter,
            );
        }

        // Final likelihood: averaged over the chains' terminal assignments, in chain order.
        let final_ll = exec.map_reduce(
            chains,
            1,
            CHAIN_WORK,
            |range| {
                let chain = states[range.start].lock().expect("a chain worker panicked earlier");
                self.log_likelihood(g, &theta, k, &chain.assignment, exec)
            },
            |acc: f64, ll| acc + ll / chains as f64,
            0.0,
        );
        FittedInitiator { theta: theta.canonicalized(), k, objective_value: -final_ll, evaluations }
    }

    /// One ascent step of a single chain: warm-up swaps, then `samples_per_step` spaced-out
    /// permutation samples whose gradients are averaged. Returns the chain's averaged gradient
    /// and the number of gradient evaluations spent.
    fn chain_gradient(
        &self,
        g: &Graph,
        theta: &Initiator2,
        k: u32,
        n_padded: usize,
        chain: &mut Chain,
        exec: &Executor,
    ) -> ([f64; 3], usize) {
        self.run_swaps(
            g,
            theta,
            k,
            n_padded,
            &mut chain.assignment,
            self.options.warmup_swaps,
            &mut chain.rng,
        );
        let mut gradient = [0.0f64; 3];
        let samples = self.options.samples_per_step.max(1);
        for sample in 0..samples {
            if sample > 0 {
                self.run_swaps(
                    g,
                    theta,
                    k,
                    n_padded,
                    &mut chain.assignment,
                    self.options.swaps_between_samples,
                    &mut chain.rng,
                );
            }
            let grad = self.gradient(g, theta, k, &chain.assignment, exec);
            for i in 0..3 {
                gradient[i] += grad[i] / samples as f64;
            }
        }
        (gradient, samples)
    }

    /// Approximate log-likelihood of `g` under `theta` for the given assignment, with the
    /// per-edge sum partitioned over fixed [`EDGE_CHUNK`]-sized chunks.
    fn log_likelihood(
        &self,
        g: &Graph,
        theta: &Initiator2,
        k: u32,
        asg: &Assignment,
        exec: &Executor,
    ) -> f64 {
        let edges = g.edges();
        let edge_sum = exec.map_reduce(
            edges.len(),
            EDGE_CHUNK,
            EDGE_WORK,
            |range| {
                edges[range]
                    .iter()
                    .map(|&(u, v)| {
                        edge_term(
                            theta,
                            digit_counts(asg.sigma[u as usize], asg.sigma[v as usize], k),
                        )
                    })
                    .sum::<f64>()
            },
            |acc: f64, m| acc + m,
            0.0,
        );
        closed_form_part(theta, k) + edge_sum
    }

    /// Gradient of the approximate log-likelihood with respect to `(a, b, c)`, edge-partitioned
    /// exactly like [`KronFitEstimator::log_likelihood`].
    fn gradient(
        &self,
        g: &Graph,
        theta: &Initiator2,
        k: u32,
        asg: &Assignment,
        exec: &Executor,
    ) -> [f64; 3] {
        let edges = g.edges();
        exec.map_reduce(
            edges.len(),
            EDGE_CHUNK,
            EDGE_WORK,
            |range| {
                let mut grad = [0.0f64; 3];
                for &(u, v) in &edges[range] {
                    let counts = digit_counts(asg.sigma[u as usize], asg.sigma[v as usize], k);
                    let p = edge_probability(theta, counts);
                    let weight = 1.0 + p + p * p;
                    grad[0] += counts.0 as f64 / theta.a * weight;
                    grad[1] += counts.1 as f64 / theta.b * weight;
                    grad[2] += counts.2 as f64 / theta.c * weight;
                }
                grad
            },
            |mut acc: [f64; 3], m| {
                for i in 0..3 {
                    acc[i] += m[i];
                }
                acc
            },
            closed_form_gradient(theta, k),
        )
    }

    /// Runs `swaps` Metropolis proposals, each swapping the Kronecker indices of two uniformly
    /// chosen nodes (padding nodes included) and accepting with the likelihood ratio.
    #[allow(clippy::too_many_arguments)]
    fn run_swaps<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        theta: &Initiator2,
        k: u32,
        n_padded: usize,
        asg: &mut Assignment,
        swaps: usize,
        rng: &mut R,
    ) {
        for _ in 0..swaps {
            let u = rng.gen_range(0..n_padded);
            let v = rng.gen_range(0..n_padded);
            if u == v {
                continue;
            }
            let delta = self.swap_delta(g, theta, k, asg, u, v);
            if delta >= 0.0 || rng.gen::<f64>() < delta.exp() {
                asg.swap_nodes(u, v);
            }
        }
    }

    /// Change in the edge part of the log-likelihood if nodes `u` and `v` exchanged Kronecker
    /// indices. Only edges incident to `u` or `v` are affected; the closed-form part is
    /// permutation-invariant.
    fn swap_delta(
        &self,
        g: &Graph,
        theta: &Initiator2,
        k: u32,
        asg: &Assignment,
        u: usize,
        v: usize,
    ) -> f64 {
        let n = g.node_count();
        let (iu, iv) = (asg.sigma[u], asg.sigma[v]);
        let mut delta = 0.0;
        // Contributions of edges incident to u.
        if u < n {
            for &w in g.neighbors(u as u32) {
                let w = w as usize;
                if w == v {
                    continue; // handled below to avoid double counting
                }
                let iw = asg.sigma[w];
                delta += edge_term(theta, digit_counts(iv, iw, k))
                    - edge_term(theta, digit_counts(iu, iw, k));
            }
        }
        if v < n {
            for &w in g.neighbors(v as u32) {
                let w = w as usize;
                if w == u {
                    continue;
                }
                let iw = asg.sigma[w];
                delta += edge_term(theta, digit_counts(iu, iw, k))
                    - edge_term(theta, digit_counts(iv, iw, k));
            }
        }
        // The edge {u, v} itself keeps the same (unordered) index pair, so it contributes no
        // change — p is symmetric in its arguments for a symmetric initiator.
        delta
    }
}

fn clamp_theta(theta: &Initiator2, min_parameter: f64) -> Initiator2 {
    Initiator2::clamped(
        theta.a.max(min_parameter),
        theta.b.max(min_parameter),
        theta.c.max(min_parameter),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_skg::moments::expected_edges;
    use kronpriv_skg::sample::{sample_fast, SamplerOptions};

    fn quick_options() -> KronFitOptions {
        KronFitOptions {
            gradient_steps: 40,
            warmup_swaps: 4_000,
            samples_per_step: 2,
            swaps_between_samples: 500,
            ..Default::default()
        }
    }

    fn seq() -> Executor {
        Executor::sequential()
    }

    #[test]
    fn digit_counts_partition_the_bits() {
        assert_eq!(digit_counts(0b0000, 0b0000, 4), (4, 0, 0));
        assert_eq!(digit_counts(0b1111, 0b1111, 4), (0, 0, 4));
        assert_eq!(digit_counts(0b1010, 0b0101, 4), (0, 4, 0));
        assert_eq!(digit_counts(0b1100, 0b1010, 4), (1, 2, 1));
    }

    #[test]
    fn edge_probability_matches_initiator_api() {
        let theta = Initiator2::new(0.9, 0.5, 0.2);
        for (x, y) in [(0usize, 0usize), (3, 5), (7, 2), (6, 6)] {
            let counts = digit_counts(x, y, 3);
            assert!(
                (edge_probability(&theta, counts) - theta.edge_probability(3, x, y)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn closed_form_gradient_matches_finite_differences() {
        let theta = Initiator2::new(0.8, 0.5, 0.3);
        let k = 9;
        let grad = closed_form_gradient(&theta, k);
        let h = 1e-6;
        let numerical = [
            (closed_form_part(&Initiator2::new(0.8 + h, 0.5, 0.3), k)
                - closed_form_part(&Initiator2::new(0.8 - h, 0.5, 0.3), k))
                / (2.0 * h),
            (closed_form_part(&Initiator2::new(0.8, 0.5 + h, 0.3), k)
                - closed_form_part(&Initiator2::new(0.8, 0.5 - h, 0.3), k))
                / (2.0 * h),
            (closed_form_part(&Initiator2::new(0.8, 0.5, 0.3 + h), k)
                - closed_form_part(&Initiator2::new(0.8, 0.5, 0.3 - h), k))
                / (2.0 * h),
        ];
        for i in 0..3 {
            let rel = (grad[i] - numerical[i]).abs() / numerical[i].abs().max(1.0);
            assert!(rel < 1e-4, "component {i}: analytic {} numeric {}", grad[i], numerical[i]);
        }
    }

    #[test]
    fn closed_form_gradient_is_zero_at_order_zero() {
        // Regression: `powi(k − 1)` for k = 0 is a reciprocal, which used to produce garbage
        // gradients for empty/single-node graphs (`kronecker_order_for(1) == 0`). The closed
        // form is constant at k = 0, so its gradient must vanish.
        let theta = Initiator2::new(0.8, 0.5, 0.3);
        assert_eq!(closed_form_gradient(&theta, 0), [0.0; 3]);
    }

    #[test]
    fn order_zero_graphs_degenerate_to_the_clamped_initial_initiator() {
        // A single-node graph (k = 0): the fit must return the clamped starting point instead
        // of ascending along reciprocal garbage.
        let g = Graph::empty(1);
        let mut rng = StdRng::seed_from_u64(1);
        let fit = KronFitEstimator::default().fit_graph(&g, &mut rng);
        assert_eq!(fit.k, 0);
        assert_eq!(fit.evaluations, 0);
        let expected = clamp_theta(
            &KronFitOptions::default().initial,
            KronFitOptions::default().min_parameter,
        )
        .canonicalized();
        assert_eq!(fit.theta, expected);
        assert!(fit.objective_value.is_finite());
    }

    #[test]
    fn full_gradient_matches_finite_differences_of_log_likelihood() {
        let truth = Initiator2::new(0.9, 0.55, 0.25);
        let mut rng = StdRng::seed_from_u64(1);
        let g = sample_fast(&truth, 7, &SamplerOptions::default(), &mut rng);
        let estimator = KronFitEstimator::default();
        let asg = Assignment::identity(1 << 7);
        let theta = Initiator2::new(0.8, 0.5, 0.3);
        let grad = estimator.gradient(&g, &theta, 7, &asg, &seq());
        let h = 1e-6;
        for i in 0..3 {
            let mut plus = theta.as_array();
            let mut minus = theta.as_array();
            plus[i] += h;
            minus[i] -= h;
            let ll_plus =
                estimator.log_likelihood(&g, &Initiator2::from_array(plus), 7, &asg, &seq());
            let ll_minus =
                estimator.log_likelihood(&g, &Initiator2::from_array(minus), 7, &asg, &seq());
            let numerical = (ll_plus - ll_minus) / (2.0 * h);
            let rel = (grad[i] - numerical).abs() / numerical.abs().max(1.0);
            assert!(rel < 1e-3, "component {i}: analytic {} numeric {numerical}", grad[i]);
        }
    }

    #[test]
    fn edge_partitioned_sums_are_bit_identical_for_any_thread_count() {
        let truth = Initiator2::new(0.95, 0.5, 0.2);
        let mut rng = StdRng::seed_from_u64(8);
        let g = sample_fast(&truth, 13, &SamplerOptions::default(), &mut rng);
        assert!(g.edge_count() > 4 * EDGE_CHUNK, "want a multi-chunk edge sum");
        let estimator = KronFitEstimator::default();
        let asg = Assignment::identity(1 << 13);
        let theta = Initiator2::new(0.85, 0.45, 0.3);
        let ll_ref = estimator.log_likelihood(&g, &theta, 13, &asg, &seq());
        let grad_ref = estimator.gradient(&g, &theta, 13, &asg, &seq());
        for threads in [2usize, 8] {
            let exec = Executor::new(threads);
            let ll = estimator.log_likelihood(&g, &theta, 13, &asg, &exec);
            assert_eq!(ll.to_bits(), ll_ref.to_bits(), "threads {threads}: log-likelihood");
            let grad = estimator.gradient(&g, &theta, 13, &asg, &exec);
            for i in 0..3 {
                assert_eq!(grad[i].to_bits(), grad_ref[i].to_bits(), "threads {threads}: grad");
            }
        }
    }

    #[test]
    fn swap_delta_matches_full_log_likelihood_difference() {
        let truth = Initiator2::new(0.95, 0.5, 0.2);
        let mut rng = StdRng::seed_from_u64(2);
        let g = sample_fast(&truth, 6, &SamplerOptions::default(), &mut rng);
        let estimator = KronFitEstimator::default();
        let theta = Initiator2::new(0.85, 0.45, 0.3);
        let mut asg = Assignment::identity(1 << 6);
        let before = estimator.log_likelihood(&g, &theta, 6, &asg, &seq());
        for &(u, v) in [(0usize, 5usize), (3, 60), (10, 11), (7, 63)].iter() {
            let predicted = estimator.swap_delta(&g, &theta, 6, &asg, u, v);
            asg.swap_nodes(u, v);
            let after = estimator.log_likelihood(&g, &theta, 6, &asg, &seq());
            assert!(
                (after - before - predicted).abs() < 1e-9,
                "swap ({u},{v}): predicted {predicted}, actual {}",
                after - before
            );
            asg.swap_nodes(u, v); // restore
        }
    }

    #[test]
    fn metropolis_swaps_recover_likelihood_from_a_scrambled_assignment() {
        // Scramble the node-to-index assignment, then let the Metropolis chain run: because the
        // chain targets the likelihood, it should recover most of the likelihood gap between the
        // scrambled and the generating (identity) assignment.
        let truth = Initiator2::new(0.95, 0.5, 0.15);
        let mut rng = StdRng::seed_from_u64(3);
        let g = sample_fast(&truth, 8, &SamplerOptions::default(), &mut rng);
        let estimator = KronFitEstimator::default();
        let theta = Initiator2::new(0.9, 0.5, 0.2);
        let n_padded = 1 << 8;
        let identity_ll =
            estimator.log_likelihood(&g, &theta, 8, &Assignment::identity(n_padded), &seq());
        let mut asg = Assignment::identity(n_padded);
        // Scramble with a fixed pseudo-random pass of transpositions.
        for i in 0..n_padded {
            let j = (i * 97 + 31) % n_padded;
            asg.swap_nodes(i, j);
        }
        let scrambled_ll = estimator.log_likelihood(&g, &theta, 8, &asg, &seq());
        assert!(scrambled_ll < identity_ll - 50.0, "scrambling should hurt the likelihood");
        estimator.run_swaps(&g, &theta, 8, n_padded, &mut asg, 60_000, &mut rng);
        let recovered_ll = estimator.log_likelihood(&g, &theta, 8, &asg, &seq());
        let recovered_fraction = (recovered_ll - scrambled_ll) / (identity_ll - scrambled_ll);
        assert!(
            recovered_fraction > 0.5,
            "chain recovered only {recovered_fraction:.2} of the likelihood gap \
             (scrambled {scrambled_ll:.1}, recovered {recovered_ll:.1}, identity {identity_ll:.1})"
        );
    }

    #[test]
    fn fit_improves_the_likelihood_over_the_initial_guess() {
        let truth = Initiator2::new(0.99, 0.45, 0.25);
        let mut rng = StdRng::seed_from_u64(4);
        let g = sample_fast(&truth, 9, &SamplerOptions::default(), &mut rng);
        let estimator = KronFitEstimator::new(quick_options());
        let k = kronecker_order_for(g.node_count());
        let initial_ll = estimator.log_likelihood(
            &g,
            &quick_options().initial,
            k,
            &Assignment::identity(1 << k),
            &seq(),
        );
        let fit = estimator.fit_graph(&g, &mut rng);
        assert!(
            -fit.objective_value > initial_ll,
            "final LL {} should exceed initial {initial_ll}",
            -fit.objective_value
        );
    }

    #[test]
    fn fit_recovers_synthetic_parameters_roughly() {
        // KronFit on a 2^10-node synthetic graph: the paper's Table 1 shows KronFit estimates
        // differing from the truth by up to ~0.05 in each entry; allow a somewhat wider band at
        // this reduced size and step budget. Runs under the multi-chain default (4 chains).
        let truth = Initiator2::new(0.99, 0.45, 0.25);
        let mut rng = StdRng::seed_from_u64(5);
        let g = sample_fast(&truth, 10, &SamplerOptions::default(), &mut rng);
        let fit = KronFitEstimator::new(quick_options()).fit_graph(&g, &mut rng);
        assert!((fit.theta.a - truth.a).abs() < 0.15, "{:?}", fit.theta);
        assert!((fit.theta.b - truth.b).abs() < 0.15, "{:?}", fit.theta);
        assert!((fit.theta.c - truth.c).abs() < 0.20, "{:?}", fit.theta);
        // The fitted model should reproduce the observed edge count to the same rough order;
        // KronFit maximises (approximate) likelihood rather than matching moments, so its edge
        // count can be off by tens of percent — Table 1 of Gleich & Owen documents exactly this
        // behaviour, and it is the motivation for the moment-based estimator.
        let expected = expected_edges(&fit.theta, fit.k);
        let observed = g.edge_count() as f64;
        assert!(
            (expected - observed).abs() / observed < 0.45,
            "expected edges {expected} vs observed {observed}"
        );
    }

    #[test]
    fn parameters_stay_inside_the_unit_box() {
        let truth = Initiator2::new(0.7, 0.3, 0.1);
        let mut rng = StdRng::seed_from_u64(6);
        let g = sample_fast(&truth, 8, &SamplerOptions::default(), &mut rng);
        let fit = KronFitEstimator::new(quick_options()).fit_graph(&g, &mut rng);
        for p in fit.theta.as_array() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn fit_is_reproducible_given_a_seed() {
        let truth = Initiator2::new(0.9, 0.5, 0.2);
        let g = sample_fast(&truth, 8, &SamplerOptions::default(), &mut StdRng::seed_from_u64(7));
        let run = |seed| {
            KronFitEstimator::new(quick_options())
                .fit_graph(&g, &mut StdRng::seed_from_u64(seed))
                .theta
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn observed_fit_is_byte_identical_and_reports_every_chain_step() {
        use kronpriv_obs::CollectingSink;
        let truth = Initiator2::new(0.9, 0.5, 0.2);
        let g = sample_fast(&truth, 7, &SamplerOptions::default(), &mut StdRng::seed_from_u64(20));
        let options = KronFitOptions {
            gradient_steps: 3,
            warmup_swaps: 200,
            samples_per_step: 1,
            swaps_between_samples: 50,
            chains: 2,
            ..Default::default()
        };
        let estimator = KronFitEstimator::new(options);
        let plain = estimator.fit_graph_on(&g, &mut StdRng::seed_from_u64(21), &seq());
        // The likelihood probe is the expensive sink option, so exercise the opted-in path:
        // the fit must still be byte-identical (the probe consumes no randomness).
        let sink = CollectingSink::with_chain_likelihood();
        let observed =
            estimator.fit_graph_on_observed(&g, &mut StdRng::seed_from_u64(21), &seq(), &sink);
        assert_eq!(plain.theta, observed.theta);
        assert_eq!(plain.objective_value.to_bits(), observed.objective_value.to_bits());
        assert_eq!(plain.evaluations, observed.evaluations);
        let events = sink.events();
        assert_eq!(events.first(), Some(&ProgressEvent::StageStarted { stage: "kronfit" }));
        assert_eq!(events.last(), Some(&ProgressEvent::StageFinished { stage: "kronfit" }));
        for chain in 0..2usize {
            let steps: Vec<usize> = events
                .iter()
                .filter_map(|e| match e {
                    ProgressEvent::ChainStep { chain: c, step, total_steps, log_likelihood }
                        if *c == chain =>
                    {
                        assert_eq!(*total_steps, 3);
                        assert!(log_likelihood.is_finite(), "sink opted into likelihoods");
                        Some(*step)
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(steps, vec![0, 1, 2], "chain {chain} must report every step in order");
        }
    }

    #[test]
    fn silent_sink_skips_the_likelihood_probe() {
        use kronpriv_obs::CollectingSink;
        let truth = Initiator2::new(0.9, 0.5, 0.2);
        let g = sample_fast(&truth, 6, &SamplerOptions::default(), &mut StdRng::seed_from_u64(22));
        let options = KronFitOptions {
            gradient_steps: 2,
            warmup_swaps: 100,
            samples_per_step: 1,
            swaps_between_samples: 50,
            chains: 1,
            ..Default::default()
        };
        let sink = CollectingSink::new();
        KronFitEstimator::new(options).fit_graph_on_observed(
            &g,
            &mut StdRng::seed_from_u64(23),
            &seq(),
            &sink,
        );
        let lls: Vec<f64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                ProgressEvent::ChainStep { log_likelihood, .. } => Some(*log_likelihood),
                _ => None,
            })
            .collect();
        assert_eq!(lls.len(), 2);
        assert!(lls.iter().all(|ll| ll.is_nan()), "no probe unless the sink asks");
    }

    #[test]
    fn chain_count_is_an_algorithm_parameter() {
        // Unlike the thread knob, changing the chain count changes which split streams drive
        // the fit, so the result is allowed — indeed expected — to differ.
        let truth = Initiator2::new(0.95, 0.5, 0.2);
        let g = sample_fast(&truth, 8, &SamplerOptions::default(), &mut StdRng::seed_from_u64(9));
        let run = |chains: usize| {
            let options = KronFitOptions { chains, ..quick_options() };
            KronFitEstimator::new(options).fit_graph(&g, &mut StdRng::seed_from_u64(10)).theta
        };
        assert_ne!(run(1), run(4));
    }

    #[test]
    fn options_json_defaults_chains_and_compute_threads_when_omitted() {
        let options = KronFitOptions { chains: 3, compute_threads: 5, ..Default::default() };
        let text = kronpriv_json::to_string(&options);
        assert!(text.contains("\"chains\":3"), "{text}");
        assert!(text.contains("\"compute_threads\":5"), "{text}");
        let back: KronFitOptions = kronpriv_json::from_str(&text).unwrap();
        assert_eq!(back.chains, 3);
        assert_eq!(back.compute_threads, 5);
        // Back-compat: a pre-multi-chain options document still parses with the defaults.
        let legacy = text.replace(",\"chains\":3,\"compute_threads\":5", "");
        let back: KronFitOptions = kronpriv_json::from_str(&legacy).unwrap();
        assert_eq!(back.chains, 4);
        assert_eq!(back.compute_threads, 0);
        // The pre-existing fields remain required.
        let missing = legacy.replace("\"warmup_swaps\":20000,", "");
        assert!(kronpriv_json::from_str::<KronFitOptions>(&missing).is_err());
    }
}
