//! The paper's contribution: Algorithm 1, the differentially private SKG estimator.
//!
//! Given a graph `G` and a budget `(ε, δ)`:
//!
//! 1. release an `(ε/2, 0)`-DP sorted degree sequence `d̃` (Hay et al.),
//! 2. derive `Ẽ`, `H̃`, `T̃` from `d̃` (Fact 4.6 — free post-processing),
//! 3. release an `(ε/2, δ)`-DP triangle count `Δ̃` via the smooth-sensitivity mechanism
//!    (Nissim et al.),
//! 4. minimise the KronMom objective with `{Ẽ, H̃, Δ̃, T̃}` in place of the exact counts.
//!
//! By sequential composition (Theorems 4.9 / 4.10 and Corollary 4.11) the released initiator
//! `Θ̃` is `(ε, δ)`-differentially private; the subsequent optimisation touches only released
//! values, so it costs no additional privacy.

use crate::kronmom::{KronMomEstimator, KronMomOptions};
use crate::objective::{FeatureSelection, MomentObjective};
use crate::{kronecker_order_for, FittedInitiator};
use kronpriv_dp::{
    private_degree_sequence_par, private_triangle_count_par, PrivacyParams, PrivateDegreeSequence,
    PrivateTriangleCount,
};
use kronpriv_graph::Graph;
use kronpriv_json::{impl_json_struct, impl_json_struct_with_defaults};
use kronpriv_obs::{NullSink, ProgressEvent, ProgressSink};
use kronpriv_par::Executor;
use rand::Rng;

/// Options for the private estimator.
#[derive(Debug, Clone, Copy)]
pub struct PrivateEstimatorOptions {
    /// Fraction of the ε budget spent on the degree sequence (the remainder goes to the
    /// triangle count). Algorithm 1 uses an even split.
    pub degree_budget_fraction: f64,
    /// Use the exact (quadratic) smooth sensitivity instead of the scalable upper bound.
    /// Only sensible for graphs with at most a few thousand nodes.
    pub exact_smooth_sensitivity: bool,
    /// If true, skip the smooth-sensitivity triangle release and instead drop the triangle count
    /// from the matching objective, spending the whole budget on the degree sequence. This is
    /// the "degrees-only" ablation discussed in DESIGN.md.
    pub degrees_only: bool,
    /// Signal-to-noise threshold for keeping the triangle feature in the matching objective: the
    /// released `Δ̃` participates only if it exceeds `threshold × (2·SS_β/ε)`, the Laplace scale
    /// the mechanism used. Equation (2) normalises by the observed count, so matching a count
    /// that is indistinguishable from noise (the synthetic Kronecker graphs of Table 1 have only
    /// a few hundred triangles) drives the fit towards triangle-free degenerate models; dropping
    /// the feature is the standard "use three of the four features" fallback the paper inherits
    /// from Gleich & Owen. Note the check compares two already-computed data-dependent values;
    /// deployments that need the feature-selection *decision* itself to be data-independent can
    /// set the threshold to `0.0` (always keep a positive `Δ̃`) or use `degrees_only`.
    pub triangle_signal_threshold: f64,
    /// Worker-pool size for the parallelized stages — the counting kernels (triangle count,
    /// smooth sensitivity), the isotonic degree post-processing, and the moment-matching fit
    /// (grid scan + Nelder–Mead restarts); `0` means one worker per available hardware thread.
    /// [`PrivateEstimator::fit`] builds one [`Executor`] of this size for the whole run;
    /// callers that already own a pool use [`PrivateEstimator::fit_on`] and this field is
    /// ignored. Every stage is deterministic for any pool size (see `kronpriv-par`), so this
    /// is purely a performance knob: the fitted estimate is byte-identical whatever the value.
    /// This pipeline-level knob overrides `kronmom.compute_threads`, so one setting governs
    /// Algorithm 1 end to end.
    pub compute_threads: usize,
    /// Options forwarded to the KronMom minimisation.
    pub kronmom: KronMomOptions,
}

// `compute_threads` may be *omitted* by older clients — absent means 0 ("auto") — while the
// pre-existing fields stay required (defaulted fields serialize after the required ones).
impl_json_struct_with_defaults!(PrivateEstimatorOptions {
    required: {
        degree_budget_fraction,
        exact_smooth_sensitivity,
        degrees_only,
        triangle_signal_threshold,
        kronmom,
    },
    defaults: { compute_threads: 0 },
});

impl Default for PrivateEstimatorOptions {
    fn default() -> Self {
        PrivateEstimatorOptions {
            degree_budget_fraction: 0.5,
            exact_smooth_sensitivity: false,
            degrees_only: false,
            triangle_signal_threshold: 2.0,
            compute_threads: 0,
            kronmom: KronMomOptions::default(),
        }
    }
}

impl PrivateEstimatorOptions {
    /// Builds the [`Executor`] that [`PrivateEstimator::fit`] runs on (`0` ⇒ auto-sized pool).
    pub fn executor(&self) -> Executor {
        Executor::new(self.compute_threads)
    }
}

/// The output of Algorithm 1: the private initiator estimate plus the intermediate private
/// statistics (everything here is safe to publish — it is all derived from released values).
#[derive(Debug, Clone)]
pub struct PrivateEstimate {
    /// The fitted initiator and diagnostics.
    pub fit: FittedInitiator,
    /// The total privacy budget consumed.
    pub params: PrivacyParams,
    /// The private matching statistics `[Ẽ, H̃, Δ̃, T̃]` fed to the objective.
    pub private_statistics: [f64; 4],
    /// The private degree-sequence release (step 2).
    pub degree_release: PrivateDegreeSequence,
    /// The private triangle-count release (step 5); absent in the degrees-only ablation.
    pub triangle_release: Option<PrivateTriangleCount>,
}

impl_json_struct!(PrivateEstimate {
    fit,
    params,
    private_statistics,
    degree_release,
    triangle_release,
});

/// The differentially private estimator of Algorithm 1.
#[derive(Debug, Clone, Default)]
pub struct PrivateEstimator {
    options: PrivateEstimatorOptions,
}

impl PrivateEstimator {
    /// Creates an estimator with the given options.
    pub fn new(options: PrivateEstimatorOptions) -> Self {
        PrivateEstimator { options }
    }

    /// Runs Algorithm 1 on `g` with total budget `params`, using `rng` for all noise.
    ///
    /// # Panics
    /// Panics if `params.delta == 0` unless the degrees-only ablation is selected (the triangle
    /// release requires `δ > 0`), or if the budget fraction is not in `(0, 1)`.
    pub fn fit<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        params: PrivacyParams,
        rng: &mut R,
    ) -> PrivateEstimate {
        self.fit_on(g, params, rng, &self.options.executor())
    }

    /// [`Self::fit`] on a caller-owned executor: every parallel stage of Algorithm 1 borrows
    /// `exec` instead of building a pool per call (`options.compute_threads` is ignored). This
    /// is the entry point long-lived hosts such as the HTTP server use, sharing one pool across
    /// all jobs. The estimate is byte-identical to [`Self::fit`] for any pool size.
    pub fn fit_on<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        params: PrivacyParams,
        rng: &mut R,
        exec: &Executor,
    ) -> PrivateEstimate {
        self.fit_on_observed(g, params, rng, exec, &NullSink)
    }

    /// [`Self::fit_on`] with typed progress reporting: emits
    /// [`ProgressEvent::StageStarted`]/[`ProgressEvent::StageFinished`] pairs for the
    /// `degree_release`, `triangle_release` (skipped in the degrees-only ablation) and `fit`
    /// stages into `sink`. The sink is strictly an observer — the estimate is byte-identical
    /// to [`Self::fit_on`] with the same seed, whatever the sink does (the no-feedback
    /// invariant of `kronpriv-obs`, pinned by `tests/observability_determinism.rs`).
    pub fn fit_on_observed<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        params: PrivacyParams,
        rng: &mut R,
        exec: &Executor,
        sink: &dyn ProgressSink,
    ) -> PrivateEstimate {
        let frac = self.options.degree_budget_fraction;
        assert!(frac > 0.0 && frac < 1.0, "degree_budget_fraction must be in (0,1), got {frac}");
        let k = kronecker_order_for(g.node_count());
        // One pool governs the whole pipeline: the fitting stage borrows the same executor as
        // the counting kernels (every stage is thread-count-deterministic, so this only
        // affects speed).
        let kronmom = KronMomEstimator::new(self.options.kronmom);

        if self.options.degrees_only {
            // Spend everything on the degree sequence and drop Δ from the objective.
            sink.emit(&ProgressEvent::StageStarted { stage: "degree_release" });
            let degree_release =
                private_degree_sequence_par(g, PrivacyParams::pure(params.epsilon), rng, exec);
            sink.emit(&ProgressEvent::StageFinished { stage: "degree_release" });
            let observed = [
                degree_release.edge_count(),
                degree_release.hairpin_count(),
                0.0,
                degree_release.tripin_count(),
            ];
            let objective = MomentObjective::from_counts(observed, k)
                .with_features(FeatureSelection::without_triangles());
            sink.emit(&ProgressEvent::StageStarted { stage: "fit" });
            let fit = kronmom.fit_objective_on(&objective, exec);
            sink.emit(&ProgressEvent::StageFinished { stage: "fit" });
            return PrivateEstimate {
                fit,
                params,
                private_statistics: observed,
                degree_release,
                triangle_release: None,
            };
        }

        // Step 2: (ε·frac, 0)-DP degree sequence, with the isotonic post-processing running on
        // the parallel executor (thread-count-deterministic like every other stage).
        let degree_budget = PrivacyParams::pure(params.epsilon * frac);
        sink.emit(&ProgressEvent::StageStarted { stage: "degree_release" });
        let degree_release = private_degree_sequence_par(g, degree_budget, rng, exec);
        sink.emit(&ProgressEvent::StageFinished { stage: "degree_release" });

        // Step 5: (ε·(1-frac), δ)-DP triangle count. The parallel kernels are deterministic
        // for any thread count, so the release is a pure function of (graph, budget, rng).
        let triangle_budget = PrivacyParams::new(params.epsilon * (1.0 - frac), params.delta);
        sink.emit(&ProgressEvent::StageStarted { stage: "triangle_release" });
        let triangle_release = private_triangle_count_par(
            g,
            triangle_budget,
            self.options.exact_smooth_sensitivity,
            rng,
            exec,
        );
        sink.emit(&ProgressEvent::StageFinished { stage: "triangle_release" });

        // Step 6: moment matching on the private statistics. Negative noisy counts are clamped
        // to zero — a postprocessing step that costs no privacy and keeps the objective sane.
        let observed = [
            degree_release.edge_count().max(0.0),
            degree_release.hairpin_count().max(0.0),
            triangle_release.value.max(0.0),
            degree_release.tripin_count().max(0.0),
        ];
        // Keep Δ̃ in the objective only when it rises above its own noise floor (see the option
        // docs); otherwise match the three degree-derived features, as Equation (2) permits.
        let noise_scale = 2.0 * triangle_release.smooth_sensitivity / triangle_budget.epsilon;
        let keep_triangles =
            triangle_release.value > self.options.triangle_signal_threshold * noise_scale;
        let features = if keep_triangles {
            FeatureSelection::all()
        } else {
            FeatureSelection::without_triangles()
        };
        let objective = MomentObjective::from_counts(observed, k).with_features(features);
        sink.emit(&ProgressEvent::StageStarted { stage: "fit" });
        let fit = kronmom.fit_objective_on(&objective, exec);
        sink.emit(&ProgressEvent::StageFinished { stage: "fit" });

        PrivateEstimate {
            fit,
            params,
            private_statistics: observed,
            degree_release,
            triangle_release: Some(triangle_release),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_graph::MatchingStatistics;
    use kronpriv_skg::sample::{sample_fast, SamplerOptions};
    use kronpriv_skg::Initiator2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synthetic_graph(k: u32, seed: u64) -> (Initiator2, Graph) {
        let truth = Initiator2::new(0.99, 0.45, 0.25);
        let mut rng = StdRng::seed_from_u64(seed);
        (truth, sample_fast(&truth, k, &SamplerOptions::default(), &mut rng))
    }

    #[test]
    fn private_estimate_reports_budget_and_statistics() {
        let (_, g) = synthetic_graph(10, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let params = PrivacyParams::paper_default();
        let est = PrivateEstimator::default().fit(&g, params, &mut rng);
        assert_eq!(est.params, params);
        assert_eq!(est.private_statistics.len(), 4);
        assert!(est.triangle_release.is_some());
        assert!(est.private_statistics.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn generous_budget_matches_the_non_private_fit() {
        // With a huge ε the private statistics are essentially exact, so the private fit should
        // coincide with KronMom on the same graph.
        let (_, g) = synthetic_graph(11, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let private = PrivateEstimator::default().fit(&g, PrivacyParams::new(1e6, 0.01), &mut rng);
        let non_private = KronMomEstimator::default().fit_graph(&g);
        assert!(
            private.fit.theta.distance(&non_private.theta) < 0.02,
            "private {:?} vs non-private {:?}",
            private.fit.theta,
            non_private.theta
        );
    }

    #[test]
    fn paper_epsilon_recovers_synthetic_parameters_approximately() {
        // The Table 1 synthetic row at near-paper scale: ε = 0.2, δ = 0.01 on a 2^13-node
        // synthetic Kronecker graph (the paper uses 2^14; one order smaller keeps the test
        // fast). The private estimate should stay within a few hundredths of the non-private
        // one — the paper's central claim. Graph size matters here: the degree-derived
        // statistics only become accurate once the degree sequence has thousands of entries
        // for the isotonic post-processing to average over, which is why the paper evaluates
        // on 5k-16k-node networks.
        let (truth, g) = synthetic_graph(13, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let est = PrivateEstimator::default().fit(&g, PrivacyParams::paper_default(), &mut rng);
        let non_private = KronMomEstimator::default().fit_graph(&g);
        assert!(
            est.fit.theta.distance(&non_private.theta) < 0.1,
            "private {:?} vs kronmom {:?}",
            est.fit.theta,
            non_private.theta
        );
        assert!(
            est.fit.theta.distance(&truth) < 0.15,
            "private {:?} vs truth {:?}",
            est.fit.theta,
            truth
        );
    }

    #[test]
    fn private_statistics_track_exact_statistics_at_moderate_epsilon() {
        let (_, g) = synthetic_graph(13, 7);
        let exact = MatchingStatistics::of_graph(&g).as_array();
        let mut rng = StdRng::seed_from_u64(8);
        let est = PrivateEstimator::default().fit(&g, PrivacyParams::new(0.5, 0.01), &mut rng);
        // Edges and hairpins are dominated by the degree sums and should be close in relative
        // terms; the triangle count carries smooth-sensitivity noise so allow a wider band.
        let rel = |i: usize| (est.private_statistics[i] - exact[i]).abs() / exact[i].max(1.0);
        assert!(rel(0) < 0.1, "edges rel err {}", rel(0));
        assert!(rel(1) < 0.2, "hairpins rel err {}", rel(1));
        assert!(rel(3) < 0.4, "tripins rel err {}", rel(3));
    }

    #[test]
    fn degrees_only_ablation_spends_no_delta_and_omits_triangles() {
        let (_, g) = synthetic_graph(10, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let options = PrivateEstimatorOptions { degrees_only: true, ..Default::default() };
        // δ = 0 is allowed here because no smooth-sensitivity release happens.
        let est = PrivateEstimator::new(options).fit(&g, PrivacyParams::pure(0.2), &mut rng);
        assert!(est.triangle_release.is_none());
        assert_eq!(est.private_statistics[2], 0.0);
        assert!(est.fit.theta.a >= est.fit.theta.c);
    }

    #[test]
    fn uneven_budget_split_is_respected() {
        let (_, g) = synthetic_graph(10, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let options = PrivateEstimatorOptions { degree_budget_fraction: 0.8, ..Default::default() };
        let est = PrivateEstimator::new(options).fit(&g, PrivacyParams::new(1.0, 0.01), &mut rng);
        assert!((est.degree_release.params.epsilon - 0.8).abs() < 1e-12);
        let tri = est.triangle_release.unwrap();
        assert!((tri.params.epsilon - 0.2).abs() < 1e-12);
        assert!((tri.params.delta - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degree_budget_fraction")]
    fn invalid_budget_fraction_is_rejected() {
        let (_, g) = synthetic_graph(8, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let options = PrivateEstimatorOptions { degree_budget_fraction: 1.5, ..Default::default() };
        let _ = PrivateEstimator::new(options).fit(&g, PrivacyParams::paper_default(), &mut rng);
    }

    #[test]
    fn options_json_defaults_compute_threads_when_omitted() {
        // Round trip: the field serializes and comes back.
        let options = PrivateEstimatorOptions { compute_threads: 3, ..Default::default() };
        let text = kronpriv_json::to_string(&options);
        assert!(text.contains("\"compute_threads\":3"), "{text}");
        let back: PrivateEstimatorOptions = kronpriv_json::from_str(&text).unwrap();
        assert_eq!(back.compute_threads, 3);
        // Back-compat: a pre-parallel-layer options document (no compute_threads) still parses,
        // defaulting to 0 ("auto"). Defaulted fields serialize last, hence the leading comma.
        let legacy = text.replace(",\"compute_threads\":3", "");
        let back: PrivateEstimatorOptions = kronpriv_json::from_str(&legacy).unwrap();
        assert_eq!(back.compute_threads, 0);
        // Required fields are still required.
        let missing = legacy.replace("\"degrees_only\":false,", "");
        assert!(kronpriv_json::from_str::<PrivateEstimatorOptions>(&missing).is_err());
    }

    #[test]
    fn compute_thread_count_never_changes_the_estimate() {
        let (_, g) = synthetic_graph(9, 30);
        let fit_with = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(31);
            let options =
                PrivateEstimatorOptions { compute_threads: threads, ..Default::default() };
            PrivateEstimator::new(options).fit(&g, PrivacyParams::paper_default(), &mut rng)
        };
        let reference = fit_with(1);
        for threads in [2usize, 8] {
            let est = fit_with(threads);
            assert_eq!(est.fit.theta, reference.fit.theta, "threads {threads}");
            assert_eq!(est.private_statistics, reference.private_statistics);
            let (a, b) =
                (est.triangle_release.unwrap(), reference.triangle_release.clone().unwrap());
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "threads {threads}");
            assert_eq!(a.smooth_sensitivity.to_bits(), b.smooth_sensitivity.to_bits());
        }
    }

    #[test]
    fn observed_fit_reports_stage_pairs_and_matches_the_plain_fit() {
        use kronpriv_obs::CollectingSink;
        let (_, g) = synthetic_graph(9, 40);
        let exec = Executor::sequential();
        let params = PrivacyParams::paper_default();
        let plain =
            PrivateEstimator::default().fit_on(&g, params, &mut StdRng::seed_from_u64(41), &exec);
        let sink = CollectingSink::new();
        let observed = PrivateEstimator::default().fit_on_observed(
            &g,
            params,
            &mut StdRng::seed_from_u64(41),
            &exec,
            &sink,
        );
        assert_eq!(plain.fit.theta, observed.fit.theta, "the sink must not steer the fit");
        assert_eq!(plain.private_statistics, observed.private_statistics);
        // Stage events arrive as ordered started/finished pairs covering the three stages.
        let stages: Vec<(&str, bool)> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                ProgressEvent::StageStarted { stage } => Some((*stage, true)),
                ProgressEvent::StageFinished { stage } => Some((*stage, false)),
                _ => None,
            })
            .collect();
        assert_eq!(
            stages,
            vec![
                ("degree_release", true),
                ("degree_release", false),
                ("triangle_release", true),
                ("triangle_release", false),
                ("fit", true),
                ("fit", false),
            ]
        );
    }

    #[test]
    fn degrees_only_observed_fit_skips_the_triangle_stage() {
        use kronpriv_obs::CollectingSink;
        let (_, g) = synthetic_graph(8, 42);
        let exec = Executor::sequential();
        let options = PrivateEstimatorOptions { degrees_only: true, ..Default::default() };
        let sink = CollectingSink::new();
        PrivateEstimator::new(options).fit_on_observed(
            &g,
            PrivacyParams::pure(0.5),
            &mut StdRng::seed_from_u64(43),
            &exec,
            &sink,
        );
        let started: Vec<&str> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                ProgressEvent::StageStarted { stage } => Some(*stage),
                _ => None,
            })
            .collect();
        assert_eq!(started, vec!["degree_release", "fit"]);
    }

    #[test]
    fn estimate_is_reproducible_given_a_seed() {
        let (_, g) = synthetic_graph(9, 15);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            PrivateEstimator::default().fit(&g, PrivacyParams::paper_default(), &mut rng).fit.theta
        };
        assert_eq!(run(77), run(77));
    }
}
