//! The moment-matching objective of Equation (2).
//!
//! Given observed (or privately perturbed) feature counts `F` and a candidate initiator with
//! expected counts `E_{a,b,c}(F)`, the estimator minimises
//!
//! ```text
//!     Σ_F  Dist(F, E_{a,b,c}(F)) / Norm(F, E_{a,b,c}(F))
//! ```
//!
//! over `0 ≤ c ≤ a ≤ 1`, `0 ≤ b ≤ 1`, where `Dist` is either the squared or absolute difference
//! and `Norm` is one of `F`, `F²`, `E`, `E²`. Gleich & Owen report that the combination
//! `DistSq / NormF²` is the most robust and it is the default here (and the one the paper uses
//! for its experiments); the other combinations are retained for the objective-grid ablation.

use kronpriv_graph::MatchingStatistics;
use kronpriv_json::{impl_json_enum, impl_json_struct};
use kronpriv_skg::{ExpectedMoments, Initiator2};
use std::sync::Arc;

/// The distance function `Dist` of Equation (2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceKind {
    /// `Dist(x, y) = (x − y)²`.
    Squared,
    /// `Dist(x, y) = |x − y|`.
    Absolute,
}

impl_json_enum!(DistanceKind { Squared, Absolute });

/// The normalisation function `Norm` of Equation (2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalizationKind {
    /// Normalise by the observed count `F`.
    Observed,
    /// Normalise by the squared observed count `F²` (the paper's default, "NormF²").
    ObservedSquared,
    /// Normalise by the expected count `E`.
    Expected,
    /// Normalise by the squared expected count `E²`.
    ExpectedSquared,
}

impl_json_enum!(NormalizationKind { Observed, ObservedSquared, Expected, ExpectedSquared });

/// Which of the four features participate in the matching. The paper (following Gleich & Owen)
/// sums over "three or four" of them; the default uses all four.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSelection {
    /// Include the edge count `E`.
    pub edges: bool,
    /// Include the hairpin (wedge) count `H`.
    pub hairpins: bool,
    /// Include the triangle count `Δ`.
    pub triangles: bool,
    /// Include the tripin (3-star) count `T`.
    pub tripins: bool,
}

impl_json_struct!(FeatureSelection { edges, hairpins, triangles, tripins });

impl Default for FeatureSelection {
    fn default() -> Self {
        FeatureSelection { edges: true, hairpins: true, triangles: true, tripins: true }
    }
}

impl FeatureSelection {
    /// All four features (the default).
    pub fn all() -> Self {
        Self::default()
    }

    /// The degree-derived features only (`E`, `H`, `T`), excluding the triangle count. Used by
    /// the ablation that asks how much the (expensive, separately privatised) triangle count
    /// actually contributes.
    pub fn without_triangles() -> Self {
        FeatureSelection { edges: true, hairpins: true, triangles: false, tripins: true }
    }

    fn as_mask(&self) -> [bool; 4] {
        [self.edges, self.hairpins, self.triangles, self.tripins]
    }

    /// Number of selected features.
    pub fn count(&self) -> usize {
        self.as_mask().iter().filter(|&&b| b).count()
    }
}

/// The fully-configured moment-matching objective for one observed graph.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentObjective {
    /// Observed feature counts `[E, H, Δ, T]` (possibly privately perturbed).
    pub observed: [f64; 4],
    /// Kronecker order of the candidate models.
    pub k: u32,
    /// Distance function.
    pub distance: DistanceKind,
    /// Normalisation function.
    pub normalization: NormalizationKind,
    /// Which features participate.
    pub features: FeatureSelection,
}

impl_json_struct!(MomentObjective { observed, k, distance, normalization, features });

impl MomentObjective {
    /// Builds the paper's default objective (`DistSq`, `NormF²`, all four features) for the
    /// observed statistics of a graph of Kronecker order `k`.
    pub fn standard(observed: &MatchingStatistics, k: u32) -> Self {
        MomentObjective {
            observed: observed.as_array(),
            k,
            distance: DistanceKind::Squared,
            normalization: NormalizationKind::ObservedSquared,
            features: FeatureSelection::all(),
        }
    }

    /// Builds the objective from a raw `[E, H, Δ, T]` array (used by the private estimator,
    /// whose inputs are not the statistics of any actual graph).
    pub fn from_counts(observed: [f64; 4], k: u32) -> Self {
        MomentObjective {
            observed,
            k,
            distance: DistanceKind::Squared,
            normalization: NormalizationKind::ObservedSquared,
            features: FeatureSelection::all(),
        }
    }

    /// Replaces the distance function.
    pub fn with_distance(mut self, distance: DistanceKind) -> Self {
        self.distance = distance;
        self
    }

    /// Replaces the normalisation function.
    pub fn with_normalization(mut self, normalization: NormalizationKind) -> Self {
        self.normalization = normalization;
        self
    }

    /// Replaces the feature selection.
    pub fn with_features(mut self, features: FeatureSelection) -> Self {
        self.features = features;
        self
    }

    /// Evaluates the discrepancy for the candidate initiator `theta`.
    pub fn evaluate(&self, theta: &Initiator2) -> f64 {
        let expected = ExpectedMoments::of(theta, self.k).as_array();
        let mask = self.features.as_mask();
        let mut total = 0.0;
        for i in 0..4 {
            if !mask[i] {
                continue;
            }
            let f = self.observed[i];
            let e = expected[i];
            let dist = match self.distance {
                DistanceKind::Squared => (f - e) * (f - e),
                DistanceKind::Absolute => (f - e).abs(),
            };
            let norm = match self.normalization {
                NormalizationKind::Observed => f.abs(),
                NormalizationKind::ObservedSquared => f * f,
                NormalizationKind::Expected => e.abs(),
                NormalizationKind::ExpectedSquared => e * e,
            };
            // Guard against degenerate normalisations: the counts are ≥ 0 and a healthy count
            // is ≥ 1, so flooring the normalisation at 1 keeps the term finite and correctly
            // scaled when an observed (possibly noise-clamped) count is zero or tiny, without
            // letting a single degenerate feature blow up the whole objective.
            total += dist / norm.max(1.0);
        }
        total
    }

    /// Evaluates the discrepancy at a raw `[a, b, c]` parameter vector (clamped into range), the
    /// form consumed by the optimiser.
    pub fn evaluate_params(&self, params: &[f64]) -> f64 {
        let theta = Initiator2::clamped(params[0], params[1], params[2]);
        self.evaluate(&theta)
    }

    /// Moves the objective behind an [`Arc`] for the parallel fitting stage; see
    /// [`SharedMomentObjective`].
    pub fn into_shared(self) -> SharedMomentObjective {
        SharedMomentObjective { inner: Arc::new(self) }
    }
}

/// A [`MomentObjective`] behind an [`Arc`], the form the parallel multistart optimiser
/// evaluates: cloning costs one pointer copy and evaluation takes `&self` on immutable data,
/// so the per-restart workers of `multistart_minimize_par` need no locking of any kind.
///
/// Today's objective is four floats and three enums, so plain borrowing would do just as well
/// (scoped workers can share `&MomentObjective` directly — the benches do). The `Arc` form is
/// the *shape* the fitting stage standardises on so that heavier observed state (a
/// degree-sequence-aware objective, cached expected-moment tables) can be shared without
/// revisiting the threading story.
#[derive(Debug, Clone)]
pub struct SharedMomentObjective {
    inner: Arc<MomentObjective>,
}

impl SharedMomentObjective {
    /// Evaluates the discrepancy at a raw `[a, b, c]` parameter vector; identical to
    /// [`MomentObjective::evaluate_params`].
    pub fn evaluate_params(&self, params: &[f64]) -> f64 {
        self.inner.evaluate_params(params)
    }

    /// The shared underlying objective.
    pub fn objective(&self) -> &MomentObjective {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_skg::moments::ExpectedMoments;

    fn observed_from(theta: &Initiator2, k: u32) -> [f64; 4] {
        ExpectedMoments::of(theta, k).as_array()
    }

    #[test]
    fn objective_is_zero_at_the_generating_parameters() {
        let theta = Initiator2::new(0.99, 0.45, 0.25);
        let k = 10;
        let obj = MomentObjective::from_counts(observed_from(&theta, k), k);
        assert!(obj.evaluate(&theta) < 1e-18);
    }

    #[test]
    fn objective_is_positive_away_from_the_generating_parameters() {
        let theta = Initiator2::new(0.99, 0.45, 0.25);
        let k = 10;
        let obj = MomentObjective::from_counts(observed_from(&theta, k), k);
        let off = Initiator2::new(0.8, 0.45, 0.25);
        assert!(obj.evaluate(&off) > 1e-6);
    }

    #[test]
    fn squared_distance_penalises_large_errors_more_than_absolute() {
        let theta = Initiator2::new(0.9, 0.5, 0.3);
        let k = 8;
        let observed = observed_from(&theta, k);
        // Perturb observed counts by a factor of 2 so the relative error per feature is 1.
        let doubled: [f64; 4] = std::array::from_fn(|i| observed[i] * 2.0);
        let sq = MomentObjective::from_counts(doubled, k)
            .with_distance(DistanceKind::Squared)
            .with_normalization(NormalizationKind::ObservedSquared)
            .evaluate(&theta);
        let abs = MomentObjective::from_counts(doubled, k)
            .with_distance(DistanceKind::Absolute)
            .with_normalization(NormalizationKind::Observed)
            .evaluate(&theta);
        // With F = 2E: DistSq/NormF² gives (E/F)² = 0.25 per feature; DistAbs/NormF gives 0.5.
        assert!((sq - 4.0 * 0.25).abs() < 1e-9, "sq {sq}");
        assert!(abs > sq);
    }

    #[test]
    fn all_normalisations_vanish_at_the_truth_and_are_positive_elsewhere() {
        let theta = Initiator2::new(0.95, 0.4, 0.2);
        let k = 9;
        let observed = observed_from(&theta, k);
        let off = Initiator2::new(0.7, 0.6, 0.1);
        for norm in [
            NormalizationKind::Observed,
            NormalizationKind::ObservedSquared,
            NormalizationKind::Expected,
            NormalizationKind::ExpectedSquared,
        ] {
            for dist in [DistanceKind::Squared, DistanceKind::Absolute] {
                let obj = MomentObjective::from_counts(observed, k)
                    .with_distance(dist)
                    .with_normalization(norm);
                assert!(obj.evaluate(&theta) < 1e-12, "{dist:?}/{norm:?} at truth");
                assert!(obj.evaluate(&off) > 0.0, "{dist:?}/{norm:?} away from truth");
            }
        }
    }

    #[test]
    fn feature_selection_drops_terms() {
        let theta = Initiator2::new(0.9, 0.5, 0.3);
        let k = 8;
        let mut observed = observed_from(&theta, k);
        // Corrupt only the triangle count; the triangle-free objective must remain zero.
        observed[2] *= 10.0;
        let with_triangles = MomentObjective::from_counts(observed, k).evaluate(&theta);
        let without = MomentObjective::from_counts(observed, k)
            .with_features(FeatureSelection::without_triangles())
            .evaluate(&theta);
        // With F = 10·E on the triangle term, DistSq/NormF² contributes (9/10)² = 0.81.
        assert!(with_triangles > 0.5);
        assert!(without < 1e-12);
        assert_eq!(FeatureSelection::without_triangles().count(), 3);
    }

    #[test]
    fn zero_observed_counts_do_not_produce_nan() {
        let obj = MomentObjective::from_counts([0.0, 0.0, 0.0, 0.0], 6);
        let value = obj.evaluate(&Initiator2::new(0.5, 0.5, 0.5));
        assert!(value.is_finite());
        assert!(value > 0.0);
    }

    #[test]
    fn evaluate_params_clamps_out_of_range_proposals() {
        let theta = Initiator2::new(0.9, 0.5, 0.3);
        let k = 7;
        let obj = MomentObjective::from_counts(observed_from(&theta, k), k);
        let inside = obj.evaluate_params(&[1.0, 0.5, 0.3]);
        let outside = obj.evaluate_params(&[1.7, 0.5, 0.3]);
        assert_eq!(inside, outside);
    }

    #[test]
    fn standard_constructor_uses_paper_defaults() {
        let stats =
            MatchingStatistics { edges: 100.0, hairpins: 300.0, tripins: 150.0, triangles: 40.0 };
        let obj = MomentObjective::standard(&stats, 10);
        assert_eq!(obj.distance, DistanceKind::Squared);
        assert_eq!(obj.normalization, NormalizationKind::ObservedSquared);
        assert_eq!(obj.observed, [100.0, 300.0, 40.0, 150.0]);
        assert_eq!(obj.features.count(), 4);
    }
}
