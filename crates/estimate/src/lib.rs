//! `kronpriv-estimate` — the three estimators compared in the paper.
//!
//! * **KronMom** ([`kronmom`]) — Gleich & Owen's moment-based estimator: choose the initiator
//!   whose expected counts of edges, hairpins, triangles and tripins best match the observed
//!   counts, under a configurable distance/normalisation (Equation 2). This is the "KronMom"
//!   column of Table 1.
//! * **KronFit** ([`kronfit`]) — Leskovec & Faloutsos's approximate maximum-likelihood
//!   estimator: stochastic gradient ascent on the permutation-marginalised likelihood, with
//!   Metropolis sampling over node-to-Kronecker-index assignments. This is the "KronFit" column
//!   of Table 1 and the paper's non-moment baseline.
//! * **Private** ([`private`]) — the paper's contribution (Algorithm 1): feed differentially
//!   private approximations of the four matching statistics into the KronMom objective. This is
//!   the "Private" column of Table 1.
//!
//! The shared moment-matching objective lives in [`objective`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kronfit;
pub mod kronmom;
pub mod objective;
pub mod private;

pub use kronfit::{KronFitEstimator, KronFitOptions};
pub use kronmom::{KronMomEstimator, KronMomOptions};
pub use objective::{DistanceKind, MomentObjective, NormalizationKind, SharedMomentObjective};
pub use private::{PrivateEstimate, PrivateEstimator, PrivateEstimatorOptions};

use kronpriv_json::impl_json_struct;
use kronpriv_skg::Initiator2;

/// A fitted initiator matrix together with fit diagnostics, returned by every estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedInitiator {
    /// The estimated initiator (canonicalised so that `a ≥ c`).
    pub theta: Initiator2,
    /// The Kronecker order `k` the fit assumed (`2^k ≥` node count).
    pub k: u32,
    /// Final objective value (moment discrepancy for KronMom/Private, negative approximate
    /// log-likelihood for KronFit).
    pub objective_value: f64,
    /// Number of objective/likelihood evaluations or gradient steps spent.
    pub evaluations: usize,
}

impl_json_struct!(FittedInitiator { theta, k, objective_value, evaluations });

/// Chooses the Kronecker order for a graph with `node_count` nodes: the smallest `k` with
/// `2^k ≥ node_count`. The paper's graphs are padded up to the next power of two, exactly as the
/// SNAP tooling does.
pub fn kronecker_order_for(node_count: usize) -> u32 {
    let mut k = 0u32;
    while (1usize << k) < node_count {
        k += 1;
        assert!(k < 63, "graph too large for a Kronecker order");
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kronecker_order_is_ceil_log2() {
        assert_eq!(kronecker_order_for(1), 0);
        assert_eq!(kronecker_order_for(2), 1);
        assert_eq!(kronecker_order_for(3), 2);
        assert_eq!(kronecker_order_for(1024), 10);
        assert_eq!(kronecker_order_for(1025), 11);
        assert_eq!(kronecker_order_for(5242), 13);
        assert_eq!(kronecker_order_for(9877), 14);
        assert_eq!(kronecker_order_for(6474), 13);
    }

    #[test]
    fn fitted_initiator_serialises() {
        let fit = FittedInitiator {
            theta: Initiator2::new(0.99, 0.45, 0.25),
            k: 14,
            objective_value: 0.001,
            evaluations: 123,
        };
        let json = kronpriv_json::to_string(&fit);
        let back: FittedInitiator = kronpriv_json::from_str(&json).unwrap();
        assert_eq!(fit, back);
    }
}
