//! A minimal blocking HTTP/1.1 client over [`std::net::TcpStream`].
//!
//! Used by the integration tests and by `kronpriv-serve --probe`; it speaks exactly the dialect
//! the server emits (`Connection: close`, `Content-Length`-framed JSON bodies), so it reads to
//! EOF and then splits the head from the body.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one request and returns `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))
}

/// Sends one request and returns `(status, head, body)`: like [`request`], but keeps the raw
/// response head so callers can assert on headers (e.g. `Deprecation: true` on the legacy
/// alias paths).
pub fn request_with_head(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body split"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unparseable status line"))?;
    Ok((status, head.to_string(), body.to_string()))
}

/// Splits a full `Connection: close` response into `(status, body)`.
fn parse_response(raw: &str) -> Option<(u16, String)> {
    let status: u16 = raw.split_whitespace().nth(1)?.parse().ok()?;
    let body = raw.split_once("\r\n\r\n")?.1.to_string();
    Some((status, body))
}

/// `GET {path}`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    request(addr, "GET", path, None)
}

/// `GET {path}` against a streaming endpoint: blocks until the server closes the connection
/// and returns `(status, head, body)` with a `Transfer-Encoding: chunked` body de-chunked.
/// The job event stream follows a running job, so the read timeout is generous.
pub fn get_stream(addr: SocketAddr, path: &str) -> io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body split"))?;
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let body_bytes = &raw[split + 4..];
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unparseable status line"))?;
    let body = if head.to_ascii_lowercase().contains("transfer-encoding: chunked") {
        decode_chunked(body_bytes)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed chunked body"))?
    } else {
        body_bytes.to_vec()
    };
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?;
    Ok((status, head, body))
}

/// Decodes a complete `Transfer-Encoding: chunked` body (hex size line, payload, CRLF,
/// repeated; zero-size chunk terminates). `None` if the framing is broken or unterminated.
fn decode_chunked(mut rest: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let newline = rest.windows(2).position(|w| w == b"\r\n")?;
        let size_line = std::str::from_utf8(&rest[..newline]).ok()?;
        let size = usize::from_str_radix(size_line.trim(), 16).ok()?;
        rest = &rest[newline + 2..];
        if size == 0 {
            return Some(out);
        }
        if rest.len() < size + 2 || &rest[size..size + 2] != b"\r\n" {
            return None;
        }
        out.extend_from_slice(&rest[..size]);
        rest = &rest[size + 2..];
    }
}

/// `POST {path}` with a JSON body.
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> io::Result<(u16, String)> {
    request(addr, "POST", path, Some(body))
}

/// `DELETE {path}`.
pub fn delete(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    request(addr, "DELETE", path, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_head_and_body() {
        let raw = "HTTP/1.1 202 Accepted\r\nContent-Length: 2\r\n\r\n{}";
        assert_eq!(parse_response(raw), Some((202, "{}".to_string())));
        assert!(parse_response("garbage").is_none());
    }

    #[test]
    fn decodes_chunked_bodies_and_rejects_broken_framing() {
        assert_eq!(
            decode_chunked(b"5\r\nhello\r\n8\r\n, world\n\r\n0\r\n\r\n"),
            Some(b"hello, world\n".to_vec())
        );
        assert_eq!(decode_chunked(b"0\r\n\r\n"), Some(Vec::new()));
        assert!(decode_chunked(b"5\r\nhello").is_none(), "unterminated chunk");
        assert!(decode_chunked(b"zz\r\nhello\r\n0\r\n\r\n").is_none(), "bad size line");
        assert!(decode_chunked(b"5\r\nhello, world\r\n").is_none(), "payload/CRLF mismatch");
    }
}
