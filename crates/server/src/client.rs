//! A minimal blocking HTTP/1.1 client over [`std::net::TcpStream`].
//!
//! Used by the integration tests and by `kronpriv-serve --probe`; it speaks exactly the dialect
//! the server emits (`Connection: close`, `Content-Length`-framed JSON bodies), so it reads to
//! EOF and then splits the head from the body.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one request and returns `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))
}

/// Splits a full `Connection: close` response into `(status, body)`.
fn parse_response(raw: &str) -> Option<(u16, String)> {
    let status: u16 = raw.split_whitespace().nth(1)?.parse().ok()?;
    let body = raw.split_once("\r\n\r\n")?.1.to_string();
    Some((status, body))
}

/// `GET {path}`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    request(addr, "GET", path, None)
}

/// `POST {path}` with a JSON body.
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> io::Result<(u16, String)> {
    request(addr, "POST", path, Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_head_and_body() {
        let raw = "HTTP/1.1 202 Accepted\r\nContent-Length: 2\r\n\r\n{}";
        assert_eq!(parse_response(raw), Some((202, "{}".to_string())));
        assert!(parse_response("garbage").is_none());
    }
}
