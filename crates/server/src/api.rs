//! The wire types of the HTTP/JSON API, defined with the `kronpriv-json` derive-style macros.
//!
//! Request types deliberately do not reuse the library structs (`PrivacyParams`, `Initiator2`):
//! deserializing through `impl_json_struct!` constructs values without running the library's
//! validating constructors, so every untrusted field arrives in a `*Spec` type here and passes
//! through an explicit `validate()` before it touches the pipeline. Response types are likewise
//! separate from the library structs so that only *released* values cross the wire — in
//! particular the exact triangle count, which [`kronpriv_dp::PrivateTriangleCount`] retains for
//! experiment bookkeeping, is never serialized by the server.

use crate::jobs::JobStatus;
use kronpriv_dp::{ParamError, PrivacyParams};
use kronpriv_estimate::{PrivateEstimate, PrivateEstimatorOptions};
use kronpriv_json::{impl_json_struct, impl_json_struct_lenient, Json};
use kronpriv_skg::Initiator2;

/// An `(ε, δ)` privacy budget as it appears on the wire (untrusted until validated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSpec {
    /// The requested `ε`.
    pub epsilon: f64,
    /// The requested `δ`.
    pub delta: f64,
}

impl_json_struct!(BudgetSpec { epsilon, delta });

impl BudgetSpec {
    /// Validates the pair into a [`PrivacyParams`] via [`PrivacyParams::try_new`].
    pub fn validate(&self) -> Result<PrivacyParams, ParamError> {
        PrivacyParams::try_new(self.epsilon, self.delta)
    }

    /// The wire form of an already-validated budget.
    pub fn of(params: PrivacyParams) -> Self {
        BudgetSpec { epsilon: params.epsilon, delta: params.delta }
    }
}

/// A 2×2 initiator matrix `[a b; b c]` as it appears on the wire (untrusted until validated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitiatorSpec {
    /// Core-block probability.
    pub a: f64,
    /// Cross-block probability.
    pub b: f64,
    /// Periphery-block probability.
    pub c: f64,
}

impl_json_struct!(InitiatorSpec { a, b, c });

impl InitiatorSpec {
    /// Validates each entry into `[0, 1]` and builds an [`Initiator2`].
    pub fn validate(&self) -> Result<Initiator2, String> {
        for (name, v) in [("a", self.a), ("b", self.b), ("c", self.c)] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(format!("initiator parameter {name}={v} must lie in [0,1]"));
            }
        }
        Ok(Initiator2::new(self.a, self.b, self.c))
    }

    /// The wire form of a released initiator.
    pub fn of(theta: &Initiator2) -> Self {
        InitiatorSpec { a: theta.a, b: theta.b, c: theta.c }
    }
}

/// A sampled-SKG input graph specification: the server realizes an order-`k` stochastic
/// Kronecker graph from `theta` and treats it as the sensitive input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkgSpec {
    /// The generating initiator.
    pub theta: InitiatorSpec,
    /// The Kronecker order (`2^k` nodes).
    pub k: u32,
}

impl_json_struct!(SkgSpec { theta, k });

/// The input graph of an estimation request: exactly one of the two fields must be present.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSpec {
    /// A SNAP-format edge list uploaded inline (whitespace-separated pairs, `#` comments).
    pub edge_list: Option<String>,
    /// A sampled-SKG specification realized server-side from the request seed.
    pub skg: Option<SkgSpec>,
}

impl_json_struct_lenient!(GraphSpec { edge_list, skg });

/// `POST /api/estimate`: run the full Algorithm 1 private release as a job.
#[derive(Debug, Clone)]
pub struct EstimateRequest {
    /// The sensitive input graph.
    pub graph: GraphSpec,
    /// The total privacy budget to spend.
    pub params: BudgetSpec,
    /// Seed for all server-side randomness (graph realization and privacy noise). Identical
    /// requests with identical seeds produce byte-identical result documents.
    pub seed: u64,
    /// Estimator options; defaults to [`PrivateEstimatorOptions::default`] when omitted.
    pub options: Option<PrivateEstimatorOptions>,
    /// When true, the result document includes the released private degree sequence (it can be
    /// large — one number per node — so it is opt-in).
    pub include_degree_sequence: Option<bool>,
}

impl_json_struct_lenient!(EstimateRequest {
    graph,
    params,
    seed,
    options,
    include_degree_sequence,
});

/// The published part of the smooth-sensitivity triangle release.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleReleaseDoc {
    /// The released (noisy) triangle count `Δ̃`.
    pub value: f64,
    /// The smoothing parameter `β = ε / (2 ln(2/δ))` (a function of public parameters only).
    pub beta: f64,
    /// The budget spent on this release.
    pub params: BudgetSpec,
}

impl_json_struct!(TriangleReleaseDoc { value, beta, params });

/// The result document of a finished estimation job — only released values, ready to publish.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateResult {
    /// The seed the job ran with (echoed for reproducibility).
    pub seed: u64,
    /// The total `(ε, δ)` budget spent.
    pub params: BudgetSpec,
    /// The released initiator estimate `Θ̃` (canonical form, `a ≥ c`).
    pub theta: InitiatorSpec,
    /// The Kronecker order of the fit.
    pub k: u32,
    /// Final moment-matching objective value.
    pub objective_value: f64,
    /// Objective evaluations spent by the optimizer.
    pub evaluations: u64,
    /// The private matching statistics `[Ẽ, H̃, Δ̃, T̃]` fed to the objective.
    pub private_statistics: [f64; 4],
    /// The published triangle release; absent for degrees-only runs.
    pub triangle_release: Option<TriangleReleaseDoc>,
    /// The released private degree sequence, when the request opted in.
    pub degree_sequence: Option<Vec<f64>>,
}

impl_json_struct_lenient!(EstimateResult {
    seed,
    params,
    theta,
    k,
    objective_value,
    evaluations,
    private_statistics,
    triangle_release,
    degree_sequence,
});

impl EstimateResult {
    /// Projects a library [`PrivateEstimate`] onto the publishable wire document.
    pub fn from_estimate(estimate: &PrivateEstimate, seed: u64, include_degrees: bool) -> Self {
        EstimateResult {
            seed,
            params: BudgetSpec::of(estimate.params),
            theta: InitiatorSpec::of(&estimate.fit.theta),
            k: estimate.fit.k,
            objective_value: estimate.fit.objective_value,
            evaluations: estimate.fit.evaluations as u64,
            private_statistics: estimate.private_statistics,
            triangle_release: estimate.triangle_release.as_ref().map(|t| TriangleReleaseDoc {
                value: t.value,
                beta: t.beta,
                params: BudgetSpec::of(t.params),
            }),
            degree_sequence: include_degrees.then(|| estimate.degree_release.degrees.clone()),
        }
    }
}

/// `202 Accepted` body of a submitted estimation job.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitResponse {
    /// The id to poll at `GET /api/jobs/{id}`.
    pub job_id: u64,
    /// The status at submission time (always `Queued`).
    pub status: JobStatus,
}

impl_json_struct!(SubmitResponse { job_id, status });

/// `GET /api/jobs/{id}` body: the job record snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResponse {
    /// The job id.
    pub job_id: u64,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// The [`EstimateResult`] document, present exactly when `status` is `Done`.
    pub result: Option<Json>,
    /// The failure message, present exactly when `status` is `Failed`.
    pub error: Option<String>,
}

impl_json_struct_lenient!(JobResponse { job_id, status, result, error });

/// `POST /api/sample`: synchronously sample a synthetic graph from a (public) fitted initiator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRequest {
    /// The published initiator to sample from.
    pub theta: InitiatorSpec,
    /// The Kronecker order (`2^k` nodes); bounded by the server's configured maximum.
    pub k: u32,
    /// Seed for the sampler.
    pub seed: u64,
}

impl_json_struct!(SampleRequest { theta, k, seed });

/// `200 OK` body of a sampling request.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleResponse {
    /// Node count of the sampled graph (`2^k`).
    pub nodes: u64,
    /// Undirected edge count of the sampled graph.
    pub edges: u64,
    /// The sampled graph as a SNAP-format edge list.
    pub edge_list: String,
}

impl_json_struct!(SampleResponse { nodes, edges, edge_list });

/// `GET /healthz` body.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthResponse {
    /// Always `"ok"` when the server can respond at all.
    pub status: String,
    /// The serving crate name.
    pub service: String,
    /// Total estimation jobs submitted since startup.
    pub jobs_submitted: u64,
}

impl_json_struct!(HealthResponse { status, service, jobs_submitted });

/// The body of every non-2xx response.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBody {
    /// Human-readable description of what was wrong with the request.
    pub error: String,
}

impl_json_struct!(ErrorBody { error });

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_json::{from_str, to_string};

    #[test]
    fn budget_spec_validation_delegates_to_try_new() {
        assert!(BudgetSpec { epsilon: 0.2, delta: 0.01 }.validate().is_ok());
        assert!(BudgetSpec { epsilon: -1.0, delta: 0.01 }.validate().is_err());
        assert!(BudgetSpec { epsilon: 0.2, delta: 1.0 }.validate().is_err());
    }

    #[test]
    fn initiator_spec_validation_checks_ranges() {
        assert!(InitiatorSpec { a: 0.9, b: 0.5, c: 0.1 }.validate().is_ok());
        assert!(InitiatorSpec { a: 1.1, b: 0.5, c: 0.1 }.validate().is_err());
        assert!(InitiatorSpec { a: 0.9, b: f64::NAN, c: 0.1 }.validate().is_err());
        assert!(InitiatorSpec { a: 0.9, b: 0.5, c: -0.01 }.validate().is_err());
    }

    #[test]
    fn estimate_request_parses_with_omitted_optionals() {
        let body = r#"{
            "graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
            "params": {"epsilon": 1.0, "delta": 0.01},
            "seed": 7
        }"#;
        let req: EstimateRequest = from_str(body).unwrap();
        assert_eq!(req.seed, 7);
        assert!(req.options.is_none());
        assert!(req.include_degree_sequence.is_none());
        assert!(req.graph.edge_list.is_none());
        assert_eq!(req.graph.skg.unwrap().k, 8);
    }

    #[test]
    fn estimate_result_never_carries_the_exact_triangle_count() {
        // Build a tiny real estimate and check the wire document's key set directly.
        use kronpriv::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let g =
            sample_fast(&Initiator2::new(0.9, 0.6, 0.3), 7, &SamplerOptions::default(), &mut rng);
        let est = try_private_estimate(
            &g,
            PrivacyParams::new(1.0, 0.01),
            &PrivateEstimatorOptions::default(),
            &mut rng,
        )
        .unwrap();
        let doc = EstimateResult::from_estimate(&est, 1, false);
        let text = to_string(&doc);
        assert!(!text.contains("\"exact\""), "exact count leaked: {text}");
        assert!(!text.contains("noisy_degrees"), "raw noisy degrees leaked: {text}");
        let back: EstimateResult = from_str(&text).unwrap();
        assert_eq!(back, doc);
        // Opting into the degree sequence includes exactly the released (post-processed) one.
        let with_degrees = EstimateResult::from_estimate(&est, 1, true);
        assert_eq!(with_degrees.degree_sequence.as_ref().unwrap().len(), g.node_count());
    }
}
