//! The wire types of the HTTP/JSON API, defined with the `kronpriv-json` derive-style macros.
//!
//! Request types deliberately do not reuse the library structs (`PrivacyParams`, `Initiator2`):
//! deserializing through `impl_json_struct!` constructs values without running the library's
//! validating constructors, so every untrusted field arrives in a `*Spec` type here and passes
//! through an explicit `validate()` before it touches the pipeline. Response types are likewise
//! separate from the library structs so that only *released* values cross the wire — in
//! particular the exact triangle count, which [`kronpriv_dp::PrivateTriangleCount`] retains for
//! experiment bookkeeping, is never serialized by the server.

use crate::datasets::DatasetMeta;
use crate::jobs::JobStatus;
use crate::ledger::BudgetLedger;
use kronpriv_dp::{ParamError, PrivacyParams};
use kronpriv_estimate::{
    FittedInitiator, KronFitOptions, PrivateEstimate, PrivateEstimatorOptions,
};
use kronpriv_json::{impl_json_struct, impl_json_struct_lenient, Json};
use kronpriv_skg::Initiator2;

/// An `(ε, δ)` privacy budget as it appears on the wire (untrusted until validated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSpec {
    /// The requested `ε`.
    pub epsilon: f64,
    /// The requested `δ`.
    pub delta: f64,
}

impl_json_struct!(BudgetSpec { epsilon, delta });

impl BudgetSpec {
    /// Validates the pair into a [`PrivacyParams`] via [`PrivacyParams::try_new`].
    pub fn validate(&self) -> Result<PrivacyParams, ParamError> {
        PrivacyParams::try_new(self.epsilon, self.delta)
    }

    /// The wire form of an already-validated budget.
    pub fn of(params: PrivacyParams) -> Self {
        BudgetSpec { epsilon: params.epsilon, delta: params.delta }
    }
}

/// A 2×2 initiator matrix `[a b; b c]` as it appears on the wire (untrusted until validated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitiatorSpec {
    /// Core-block probability.
    pub a: f64,
    /// Cross-block probability.
    pub b: f64,
    /// Periphery-block probability.
    pub c: f64,
}

impl_json_struct!(InitiatorSpec { a, b, c });

impl InitiatorSpec {
    /// Validates each entry into `[0, 1]` and builds an [`Initiator2`].
    pub fn validate(&self) -> Result<Initiator2, String> {
        for (name, v) in [("a", self.a), ("b", self.b), ("c", self.c)] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(format!("initiator parameter {name}={v} must lie in [0,1]"));
            }
        }
        Ok(Initiator2::new(self.a, self.b, self.c))
    }

    /// The wire form of a released initiator.
    pub fn of(theta: &Initiator2) -> Self {
        InitiatorSpec { a: theta.a, b: theta.b, c: theta.c }
    }
}

/// A sampled-SKG input graph specification: the server realizes an order-`k` stochastic
/// Kronecker graph from `theta` and treats it as the sensitive input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkgSpec {
    /// The generating initiator.
    pub theta: InitiatorSpec,
    /// The Kronecker order (`2^k` nodes).
    pub k: u32,
}

impl_json_struct!(SkgSpec { theta, k });

/// The input graph of an estimation request: exactly one of the two fields must be present.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSpec {
    /// A SNAP-format edge list uploaded inline (whitespace-separated pairs, `#` comments).
    pub edge_list: Option<String>,
    /// A sampled-SKG specification realized server-side from the request seed.
    pub skg: Option<SkgSpec>,
}

impl_json_struct_lenient!(GraphSpec { edge_list, skg });

/// Which Table-1 column an `/api/estimate` job should produce.
///
/// Parsed from the request's optional `estimator` field; absent means [`EstimatorKind::Private`]
/// so existing clients keep today's wire behaviour. The two baselines are **not differentially
/// private** — they fit the exact uploaded graph and exist for side-by-side comparison with the
/// private release, exactly as in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Algorithm 1, the paper's `(ε, δ)`-DP estimator (the default).
    Private,
    /// Gleich & Owen's moment-matching baseline (non-private).
    KronMom,
    /// Leskovec & Faloutsos's approximate-MLE baseline (non-private).
    KronFit,
}

impl EstimatorKind {
    /// Parses the wire spelling (`"private"`, `"kronmom"`, `"kronfit"`; `None` ⇒ private).
    pub fn parse(raw: Option<&str>) -> Result<Self, String> {
        match raw {
            None | Some("private") => Ok(EstimatorKind::Private),
            Some("kronmom") => Ok(EstimatorKind::KronMom),
            Some("kronfit") => Ok(EstimatorKind::KronFit),
            Some(other) => Err(format!(
                "unknown estimator {other:?}; use \"private\", \"kronmom\" or \"kronfit\""
            )),
        }
    }

    /// The wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            EstimatorKind::Private => "private",
            EstimatorKind::KronMom => "kronmom",
            EstimatorKind::KronFit => "kronfit",
        }
    }
}

/// `POST /api/estimate`: run an estimation job — by default the full Algorithm 1 private
/// release, or one of the non-private Table-1 baselines when `estimator` says so.
#[derive(Debug, Clone)]
pub struct EstimateRequest {
    /// The sensitive input graph.
    pub graph: GraphSpec,
    /// The total privacy budget to spend. Required for the private estimator; ignored by the
    /// non-private baselines (which may omit it).
    pub params: Option<BudgetSpec>,
    /// Seed for all server-side randomness (graph realization, privacy noise, KronFit chains).
    /// Identical requests with identical seeds produce byte-identical result documents.
    pub seed: u64,
    /// Which estimator to run: `"private"` (default), `"kronmom"` or `"kronfit"`.
    pub estimator: Option<String>,
    /// Estimator options for the private pipeline (its `kronmom` block also configures the
    /// KronMom baseline); defaults to [`PrivateEstimatorOptions::default`] when omitted.
    pub options: Option<PrivateEstimatorOptions>,
    /// Options for the KronFit baseline; defaults to [`KronFitOptions::default`] when omitted.
    /// Only consulted when `estimator` is `"kronfit"`.
    pub kronfit: Option<KronFitOptions>,
    /// When true, the result document includes the released private degree sequence (it can be
    /// large — one number per node — so it is opt-in). Private estimator only.
    pub include_degree_sequence: Option<bool>,
}

impl_json_struct_lenient!(EstimateRequest {
    graph,
    params,
    seed,
    estimator,
    options,
    kronfit,
    include_degree_sequence,
});

/// The normalized form every estimate submission reduces to — both `POST /api/v1/estimate`
/// (inline graph) and `POST /api/v1/datasets/{name}/estimate` (named dataset) build one, and
/// it is what the durable store persists so a pending job can be re-validated and re-run
/// byte-identically after a restart. Exactly one of `dataset`, `edge_list`, `skg` names the
/// input graph.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Named dataset to estimate (its stored edge list is resolved server-side).
    pub dataset: Option<String>,
    /// A SNAP-format edge list uploaded inline with the request.
    pub edge_list: Option<String>,
    /// A sampled-SKG specification realized server-side from the request seed.
    pub skg: Option<SkgSpec>,
    /// The `(ε, δ)` draw. Required for the private estimator.
    pub params: Option<BudgetSpec>,
    /// Seed for all server-side randomness; identical specs with identical seeds produce
    /// byte-identical result documents (this is what makes crash replay exact).
    pub seed: u64,
    /// Which estimator to run: `"private"` (default), `"kronmom"` or `"kronfit"`.
    pub estimator: Option<String>,
    /// Options for the private pipeline / KronMom baseline.
    pub options: Option<PrivateEstimatorOptions>,
    /// Options for the KronFit baseline.
    pub kronfit: Option<KronFitOptions>,
    /// Opt-in for the released private degree sequence on the result document.
    pub include_degree_sequence: Option<bool>,
}

impl_json_struct_lenient!(JobSpec {
    dataset,
    edge_list,
    skg,
    params,
    seed,
    estimator,
    options,
    kronfit,
    include_degree_sequence,
});

impl JobSpec {
    /// Normalizes a legacy/v1 inline estimate request.
    pub fn from_estimate_request(req: EstimateRequest) -> Self {
        JobSpec {
            dataset: None,
            edge_list: req.graph.edge_list,
            skg: req.graph.skg,
            params: req.params,
            seed: req.seed,
            estimator: req.estimator,
            options: req.options,
            kronfit: req.kronfit,
            include_degree_sequence: req.include_degree_sequence,
        }
    }

    /// Normalizes a dataset-scoped estimate request against the named dataset.
    pub fn from_dataset_request(name: &str, req: DatasetEstimateRequest) -> Self {
        JobSpec {
            dataset: Some(name.to_string()),
            edge_list: None,
            skg: None,
            params: req.params,
            seed: req.seed,
            estimator: req.estimator,
            options: req.options,
            kronfit: None,
            include_degree_sequence: req.include_degree_sequence,
        }
    }
}

/// The published part of the smooth-sensitivity triangle release.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleReleaseDoc {
    /// The released (noisy) triangle count `Δ̃`.
    pub value: f64,
    /// The smoothing parameter `β = ε / (2 ln(2/δ))` (a function of public parameters only).
    pub beta: f64,
    /// The budget spent on this release.
    pub params: BudgetSpec,
}

impl_json_struct!(TriangleReleaseDoc { value, beta, params });

/// The result document of a finished estimation job — only released values, ready to publish.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateResult {
    /// The seed the job ran with (echoed for reproducibility).
    pub seed: u64,
    /// The total `(ε, δ)` budget spent.
    pub params: BudgetSpec,
    /// The released initiator estimate `Θ̃` (canonical form, `a ≥ c`).
    pub theta: InitiatorSpec,
    /// The Kronecker order of the fit.
    pub k: u32,
    /// Final moment-matching objective value.
    pub objective_value: f64,
    /// Objective evaluations spent by the optimizer.
    pub evaluations: u64,
    /// The private matching statistics `[Ẽ, H̃, Δ̃, T̃]` fed to the objective.
    pub private_statistics: [f64; 4],
    /// The published triangle release; absent for degrees-only runs.
    pub triangle_release: Option<TriangleReleaseDoc>,
    /// The released private degree sequence, when the request opted in.
    pub degree_sequence: Option<Vec<f64>>,
}

impl_json_struct_lenient!(EstimateResult {
    seed,
    params,
    theta,
    k,
    objective_value,
    evaluations,
    private_statistics,
    triangle_release,
    degree_sequence,
});

impl EstimateResult {
    /// Projects a library [`PrivateEstimate`] onto the publishable wire document.
    pub fn from_estimate(estimate: &PrivateEstimate, seed: u64, include_degrees: bool) -> Self {
        EstimateResult {
            seed,
            params: BudgetSpec::of(estimate.params),
            theta: InitiatorSpec::of(&estimate.fit.theta),
            k: estimate.fit.k,
            objective_value: estimate.fit.objective_value,
            evaluations: estimate.fit.evaluations as u64,
            private_statistics: estimate.private_statistics,
            triangle_release: estimate.triangle_release.as_ref().map(|t| TriangleReleaseDoc {
                value: t.value,
                beta: t.beta,
                params: BudgetSpec::of(t.params),
            }),
            degree_sequence: include_degrees.then(|| estimate.degree_release.degrees.clone()),
        }
    }
}

/// The result document of a finished **baseline** (non-private) estimation job: the KronFit or
/// KronMom column of Table 1. Deliberately a separate document type from [`EstimateResult`]:
/// it carries no privacy fields at all, so a client can never mistake a baseline fit for a
/// released `(ε, δ)`-private estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// The seed the job ran with (echoed for reproducibility).
    pub seed: u64,
    /// Which baseline produced the fit: `"kronfit"` or `"kronmom"`.
    pub estimator: String,
    /// The fitted initiator (canonical form, `a ≥ c`). **Not differentially private.**
    pub theta: InitiatorSpec,
    /// The Kronecker order of the fit.
    pub k: u32,
    /// Final objective value (moment discrepancy for KronMom, negative approximate
    /// log-likelihood for KronFit).
    pub objective_value: f64,
    /// Objective/likelihood evaluations spent.
    pub evaluations: u64,
}

impl_json_struct!(BaselineResult { seed, estimator, theta, k, objective_value, evaluations });

impl BaselineResult {
    /// Projects a library [`FittedInitiator`] onto the baseline wire document.
    pub fn from_fit(kind: EstimatorKind, fit: &FittedInitiator, seed: u64) -> Self {
        BaselineResult {
            seed,
            estimator: kind.as_str().to_string(),
            theta: InitiatorSpec::of(&fit.theta),
            k: fit.k,
            objective_value: fit.objective_value,
            evaluations: fit.evaluations as u64,
        }
    }
}

/// `202 Accepted` body of a submitted estimation job.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitResponse {
    /// The id to poll at `GET /api/jobs/{id}`.
    pub job_id: u64,
    /// The status at submission time (always `Queued`).
    pub status: JobStatus,
    /// Request fields the server accepted but overrode (e.g. a `compute_threads` that differs
    /// from the server's shared pool). `null` when the request was taken verbatim.
    pub warnings: Option<Vec<String>>,
}

impl_json_struct_lenient!(SubmitResponse { job_id, status, warnings });

/// `GET /api/jobs/{id}` body: the job record snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResponse {
    /// The job id.
    pub job_id: u64,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// The [`EstimateResult`] document, present exactly when `status` is `Done`.
    pub result: Option<Json>,
    /// The failure message, present exactly when `status` is `Failed`.
    pub error: Option<String>,
    /// The warnings recorded at submission, echoed on every poll. `null` when there were none.
    pub warnings: Option<Vec<String>>,
}

impl_json_struct_lenient!(JobResponse { job_id, status, result, error, warnings });

/// `POST /api/sample`: synchronously sample a synthetic graph from a (public) fitted initiator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRequest {
    /// The published initiator to sample from.
    pub theta: InitiatorSpec,
    /// The Kronecker order (`2^k` nodes); bounded by the server's configured maximum.
    pub k: u32,
    /// Seed for the sampler.
    pub seed: u64,
}

impl_json_struct!(SampleRequest { theta, k, seed });

/// `200 OK` body of a sampling request.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleResponse {
    /// Node count of the sampled graph (`2^k`).
    pub nodes: u64,
    /// Undirected edge count of the sampled graph.
    pub edges: u64,
    /// The sampled graph as a SNAP-format edge list.
    pub edge_list: String,
}

impl_json_struct!(SampleResponse { nodes, edges, edge_list });

/// `POST /api/v1/datasets`: upload a named dataset once, with its lifetime `(ε, δ)` budget.
/// The edge list is stored server-side and **never served back**; every later estimate on the
/// dataset draws from the declared budget.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetCreateRequest {
    /// The dataset name: 1–64 chars of `[A-Za-z0-9._-]`, starting alphanumeric.
    pub name: String,
    /// The sensitive graph as a SNAP-format edge list.
    pub edge_list: String,
    /// The cumulative `(ε, δ)` the dataset may ever spend across all estimates.
    pub budget: BudgetSpec,
}

impl_json_struct!(DatasetCreateRequest { name, edge_list, budget });

/// `GET /api/v1/datasets/{name}/budget` body (also embedded in every dataset document): the
/// ledger state plus the derived remainders, so clients never re-derive float arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetDoc {
    /// The dataset name.
    pub name: String,
    /// The total `ε` the dataset may ever spend.
    pub epsilon_limit: f64,
    /// The total `δ` the dataset may ever spend.
    pub delta_limit: f64,
    /// `ε` debited so far across all admitted estimates.
    pub epsilon_spent: f64,
    /// `δ` debited so far.
    pub delta_spent: f64,
    /// `ε` still available (clamped to zero).
    pub remaining_epsilon: f64,
    /// `δ` still available (clamped to zero).
    pub remaining_delta: f64,
    /// Whether no meaningfully positive `ε` draw can ever be admitted again.
    pub exhausted: bool,
}

impl_json_struct!(BudgetDoc {
    name,
    epsilon_limit,
    delta_limit,
    epsilon_spent,
    delta_spent,
    remaining_epsilon,
    remaining_delta,
    exhausted,
});

impl BudgetDoc {
    /// The wire form of one dataset's ledger.
    pub fn of(name: &str, ledger: &BudgetLedger) -> Self {
        BudgetDoc {
            name: name.to_string(),
            epsilon_limit: ledger.epsilon_limit,
            delta_limit: ledger.delta_limit,
            epsilon_spent: ledger.epsilon_spent,
            delta_spent: ledger.delta_spent,
            remaining_epsilon: ledger.remaining_epsilon(),
            remaining_delta: ledger.remaining_delta(),
            exhausted: ledger.exhausted(),
        }
    }
}

/// One dataset as served by `GET /api/v1/datasets[/{name}]` — released metadata only, never
/// the edge list.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetDoc {
    /// The dataset name.
    pub name: String,
    /// Node count of the uploaded graph.
    pub nodes: u64,
    /// Undirected edge count of the uploaded graph.
    pub edges: u64,
    /// The budget ledger state.
    pub budget: BudgetDoc,
}

impl_json_struct!(DatasetDoc { name, nodes, edges, budget });

impl DatasetDoc {
    /// The wire form of one dataset's released metadata.
    pub fn of(meta: &DatasetMeta) -> Self {
        DatasetDoc {
            name: meta.name.clone(),
            nodes: meta.nodes,
            edges: meta.edges,
            budget: BudgetDoc::of(&meta.name, &meta.ledger),
        }
    }
}

/// `GET /api/v1/datasets` body: every dataset, in name order.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetListResponse {
    /// The datasets, in name order.
    pub datasets: Vec<DatasetDoc>,
    /// Convenience count (`datasets.len()`).
    pub count: u64,
}

impl_json_struct!(DatasetListResponse { datasets, count });

/// `DELETE /api/v1/datasets/{name}` body.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetDeleteResponse {
    /// The name of the dataset that was deleted.
    pub deleted: String,
}

impl_json_struct!(DatasetDeleteResponse { deleted });

/// `POST /api/v1/datasets/{name}/estimate`: run a **private** estimate against a stored
/// dataset, drawing `params` from its ledger. Baselines (`kronmom`/`kronfit`) are refused on
/// datasets — they fit the exact graph and would void the ledger's guarantee.
#[derive(Debug, Clone)]
pub struct DatasetEstimateRequest {
    /// The `(ε, δ)` this estimate draws from the dataset's budget.
    pub params: Option<BudgetSpec>,
    /// Seed for all server-side randomness.
    pub seed: u64,
    /// Estimator selector; only `"private"` (or absent) is accepted on datasets.
    pub estimator: Option<String>,
    /// Estimator options for the private pipeline.
    pub options: Option<PrivateEstimatorOptions>,
    /// Opt-in for the released private degree sequence.
    pub include_degree_sequence: Option<bool>,
}

impl_json_struct_lenient!(DatasetEstimateRequest {
    params,
    seed,
    estimator,
    options,
    include_degree_sequence,
});

/// `GET /healthz` body: a status document, not just a bare 200.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthResponse {
    /// Always `"ok"` when the server can respond at all.
    pub status: String,
    /// The serving crate name.
    pub service: String,
    /// Total estimation jobs submitted since startup.
    pub jobs_submitted: u64,
    /// Whole seconds since the server started.
    pub uptime_seconds: u64,
    /// Participant count of the shared compute executor (calling thread + pooled helpers).
    pub compute_threads: u64,
    /// Jobs currently waiting for an estimation worker.
    pub jobs_queued: u64,
    /// Jobs currently executing.
    pub jobs_running: u64,
    /// Jobs finished successfully since startup.
    pub jobs_done: u64,
    /// Jobs finished with an error since startup.
    pub jobs_failed: u64,
    /// Number of named datasets currently stored.
    pub datasets: u64,
    /// The durable data directory, or `null` when running in-memory.
    pub data_dir: Option<String>,
}

impl_json_struct!(HealthResponse {
    status,
    service,
    jobs_submitted,
    uptime_seconds,
    compute_threads,
    jobs_queued,
    jobs_running,
    jobs_done,
    jobs_failed,
    datasets,
    data_dir,
});

/// The one typed body of every non-2xx response: a human-readable `error`, a stable machine
/// `code` (the full code table lives in `API.md`), and optional extras — `detail` for
/// free-form context, and the remaining budget on `429 budget_exhausted` refusals.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBody {
    /// Human-readable description of what was wrong with the request.
    pub error: String,
    /// Stable machine-readable error code (e.g. `"bad_request"`, `"budget_exhausted"`).
    pub code: String,
    /// Optional free-form context.
    pub detail: Option<String>,
    /// `ε` still available, on budget refusals only.
    pub remaining_epsilon: Option<f64>,
    /// `δ` still available, on budget refusals only.
    pub remaining_delta: Option<f64>,
}

impl_json_struct_lenient!(ErrorBody { error, code, detail, remaining_epsilon, remaining_delta });

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_json::{from_str, to_string};

    #[test]
    fn budget_spec_validation_delegates_to_try_new() {
        assert!(BudgetSpec { epsilon: 0.2, delta: 0.01 }.validate().is_ok());
        assert!(BudgetSpec { epsilon: -1.0, delta: 0.01 }.validate().is_err());
        assert!(BudgetSpec { epsilon: 0.2, delta: 1.0 }.validate().is_err());
    }

    #[test]
    fn initiator_spec_validation_checks_ranges() {
        assert!(InitiatorSpec { a: 0.9, b: 0.5, c: 0.1 }.validate().is_ok());
        assert!(InitiatorSpec { a: 1.1, b: 0.5, c: 0.1 }.validate().is_err());
        assert!(InitiatorSpec { a: 0.9, b: f64::NAN, c: 0.1 }.validate().is_err());
        assert!(InitiatorSpec { a: 0.9, b: 0.5, c: -0.01 }.validate().is_err());
    }

    #[test]
    fn estimate_request_parses_with_omitted_optionals() {
        let body = r#"{
            "graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
            "params": {"epsilon": 1.0, "delta": 0.01},
            "seed": 7
        }"#;
        let req: EstimateRequest = from_str(body).unwrap();
        assert_eq!(req.seed, 7);
        assert!(req.estimator.is_none());
        assert!(req.options.is_none());
        assert!(req.kronfit.is_none());
        assert!(req.include_degree_sequence.is_none());
        assert!(req.graph.edge_list.is_none());
        assert_eq!(req.graph.skg.unwrap().k, 8);
        assert_eq!(req.params.unwrap().epsilon, 1.0);
    }

    #[test]
    fn estimator_kind_parses_the_wire_spellings() {
        assert_eq!(EstimatorKind::parse(None), Ok(EstimatorKind::Private));
        assert_eq!(EstimatorKind::parse(Some("private")), Ok(EstimatorKind::Private));
        assert_eq!(EstimatorKind::parse(Some("kronmom")), Ok(EstimatorKind::KronMom));
        assert_eq!(EstimatorKind::parse(Some("kronfit")), Ok(EstimatorKind::KronFit));
        assert!(EstimatorKind::parse(Some("Private")).is_err(), "spellings are case-sensitive");
        assert!(EstimatorKind::parse(Some("mle")).is_err());
    }

    #[test]
    fn baseline_requests_may_omit_the_privacy_budget() {
        let body = r#"{
            "graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
            "estimator": "kronfit",
            "seed": 7
        }"#;
        let req: EstimateRequest = from_str(body).unwrap();
        assert!(req.params.is_none());
        assert_eq!(req.estimator.as_deref(), Some("kronfit"));
    }

    #[test]
    fn baseline_result_carries_no_privacy_fields() {
        let fit = FittedInitiator {
            theta: Initiator2::new(0.9, 0.5, 0.2),
            k: 8,
            objective_value: -123.4,
            evaluations: 320,
        };
        let doc = BaselineResult::from_fit(EstimatorKind::KronFit, &fit, 9);
        let text = to_string(&doc);
        assert!(text.contains("\"estimator\":\"kronfit\""), "{text}");
        for leaked in ["params", "epsilon", "private_statistics", "triangle_release"] {
            assert!(!text.contains(leaked), "baseline doc must not mention {leaked}: {text}");
        }
        let back: BaselineResult = from_str(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn estimate_result_never_carries_the_exact_triangle_count() {
        // Build a tiny real estimate and check the wire document's key set directly.
        use kronpriv::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let g =
            sample_fast(&Initiator2::new(0.9, 0.6, 0.3), 7, &SamplerOptions::default(), &mut rng);
        let est = try_private_estimate(
            &g,
            PrivacyParams::new(1.0, 0.01),
            &PrivateEstimatorOptions::default(),
            &mut rng,
        )
        .unwrap();
        let doc = EstimateResult::from_estimate(&est, 1, false);
        let text = to_string(&doc);
        // One shared deny list: the same const kronpriv-lint enforces statically.
        for ident in kronpriv_lint::SENSITIVE_IDENTS {
            assert!(!text.contains(&format!("\"{ident}\"")), "`{ident}` leaked: {text}");
        }
        let back: EstimateResult = from_str(&text).unwrap();
        assert_eq!(back, doc);
        // Opting into the degree sequence includes exactly the released (post-processed) one.
        let with_degrees = EstimateResult::from_estimate(&est, 1, true);
        assert_eq!(with_degrees.degree_sequence.as_ref().unwrap().len(), g.node_count());
    }
}
