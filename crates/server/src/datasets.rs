//! Named, budget-accounted datasets — the resources behind `/api/v1/datasets`.
//!
//! A dataset is uploaded **once** (its SNAP edge list stays server-side and is never served
//! back) and estimated **many** times; every estimate draws from the dataset's cumulative
//! `(ε, δ)` [`BudgetLedger`]. The store is a name-ordered map behind one mutex — dataset
//! operations are metadata-sized, so a single lock is never contended by estimation work —
//! and is cheaply cloneable (`Arc` inside) so the persistence layer's snapshot hook can read
//! it without holding a reference to the whole `AppState`.

use crate::ledger::{BudgetLedger, BudgetRefusal};
use kronpriv_obs::Registry;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Upper bound on a dataset name's length.
pub const MAX_NAME_LEN: usize = 64;

/// Whether `name` is a well-formed dataset name: 1–64 chars of `[A-Za-z0-9._-]`, starting
/// with an alphanumeric. The grammar keeps names path-safe (they appear in URLs) and keeps
/// the metric/label surface clean.
pub fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    name.len() <= MAX_NAME_LEN
        && matches!(chars.next(), Some(c) if c.is_ascii_alphanumeric())
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-')
}

/// One stored dataset: the sensitive edge list plus released metadata and the ledger.
#[derive(Debug, Clone)]
struct Dataset {
    /// The uploaded SNAP edge-list text. Server-side only: no endpoint ever returns it.
    edge_text: String,
    nodes: u64,
    edges: u64,
    ledger: BudgetLedger,
}

/// Released (non-sensitive) metadata of one dataset — everything an API response may carry.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMeta {
    /// The dataset name.
    pub name: String,
    /// Node count of the uploaded graph.
    pub nodes: u64,
    /// Undirected edge count of the uploaded graph.
    pub edges: u64,
    /// The ledger state at snapshot time.
    pub ledger: BudgetLedger,
}

/// A full dataset image including the edge-list text — only the persistence layer sees these
/// (the data dir is the same trust domain as process memory).
#[derive(Debug, Clone)]
pub struct DatasetImage {
    /// The dataset name.
    pub name: String,
    /// The uploaded SNAP edge-list text.
    pub edge_text: String,
    /// Node count of the uploaded graph.
    pub nodes: u64,
    /// Undirected edge count of the uploaded graph.
    pub edges: u64,
    /// The ledger state.
    pub ledger: BudgetLedger,
}

/// Why a dataset could not be created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CreateError {
    /// A dataset of that name already exists (creation is not an upsert: silently replacing a
    /// dataset would silently reset its ledger).
    Exists,
}

/// Why a budget debit failed.
#[derive(Debug, Clone, PartialEq)]
pub enum DebitError {
    /// No dataset of that name.
    NoSuchDataset,
    /// The draw does not fit the remaining budget; carries the remainder for the 429 document.
    Refused(BudgetRefusal),
}

/// The name-ordered dataset map. `Clone` shares the underlying storage.
#[derive(Debug, Clone, Default)]
pub struct DatasetStore {
    inner: Arc<Mutex<BTreeMap<String, Dataset>>>,
}

impl DatasetStore {
    /// An empty store.
    pub fn new() -> Self {
        DatasetStore::default()
    }

    /// Creates a dataset, failing if the name is taken. `nodes`/`edges` are the counts of the
    /// already-validated edge list.
    pub fn create(
        &self,
        name: &str,
        edge_text: String,
        nodes: u64,
        edges: u64,
        ledger: BudgetLedger,
    ) -> Result<(), CreateError> {
        let mut map = self.lock();
        if map.contains_key(name) {
            return Err(CreateError::Exists);
        }
        map.insert(name.to_string(), Dataset { edge_text, nodes, edges, ledger });
        let registry = Registry::global();
        registry.counter("kronpriv_datasets_created_total", &[]).inc();
        registry.gauge("kronpriv_datasets", &[]).set(map.len() as u64);
        Ok(())
    }

    /// Restores one dataset image verbatim (boot replay): overwrites any existing entry and
    /// does not count towards the created/deleted traffic counters.
    pub fn restore(&self, image: DatasetImage) {
        let mut map = self.lock();
        map.insert(
            image.name,
            Dataset {
                edge_text: image.edge_text,
                nodes: image.nodes,
                edges: image.edges,
                ledger: image.ledger,
            },
        );
        Registry::global().gauge("kronpriv_datasets", &[]).set(map.len() as u64);
    }

    /// Deletes a dataset; `false` if it did not exist. Deleting a dataset forgets its ledger —
    /// the operator is asserting the data itself is gone, so there is no budget left to track.
    pub fn remove(&self, name: &str) -> bool {
        let mut map = self.lock();
        let removed = map.remove(name).is_some();
        if removed {
            let registry = Registry::global();
            registry.counter("kronpriv_datasets_deleted_total", &[]).inc();
            registry.gauge("kronpriv_datasets", &[]).set(map.len() as u64);
        }
        removed
    }

    /// The released metadata of one dataset.
    pub fn meta(&self, name: &str) -> Option<DatasetMeta> {
        self.lock().get(name).map(|d| DatasetMeta {
            name: name.to_string(),
            nodes: d.nodes,
            edges: d.edges,
            ledger: d.ledger,
        })
    }

    /// The stored edge-list text (server-side use only: job materialization).
    pub fn edge_text(&self, name: &str) -> Option<String> {
        self.lock().get(name).map(|d| d.edge_text.clone())
    }

    /// Released metadata of every dataset, in name order (deterministic listing).
    pub fn list(&self) -> Vec<DatasetMeta> {
        self.lock()
            .iter()
            .map(|(name, d)| DatasetMeta {
                name: name.clone(),
                nodes: d.nodes,
                edges: d.edges,
                ledger: d.ledger,
            })
            .collect()
    }

    /// Number of datasets (reported by `/healthz`).
    pub fn count(&self) -> u64 {
        self.lock().len() as u64
    }

    /// Atomically debits `(epsilon, delta)` from the named dataset's ledger, refusing without
    /// spending anything if the draw does not fit.
    pub fn try_debit(&self, name: &str, epsilon: f64, delta: f64) -> Result<(), DebitError> {
        let mut map = self.lock();
        let dataset = map.get_mut(name).ok_or(DebitError::NoSuchDataset)?;
        let registry = Registry::global();
        match dataset.ledger.try_debit(epsilon, delta) {
            Ok(()) => {
                registry.counter("kronpriv_ledger_debits_total", &[]).inc();
                Ok(())
            }
            Err(refusal) => {
                registry.counter("kronpriv_ledger_refusals_total", &[]).inc();
                Err(DebitError::Refused(refusal))
            }
        }
    }

    /// Applies a replayed debit unconditionally (it was admitted when first logged).
    pub fn force_debit(&self, name: &str, epsilon: f64, delta: f64) {
        if let Some(dataset) = self.lock().get_mut(name) {
            dataset.ledger.force_debit(epsilon, delta);
        }
    }

    /// Full images of every dataset, in name order — the persistence snapshot input.
    pub fn images(&self) -> Vec<DatasetImage> {
        self.lock()
            .iter()
            .map(|(name, d)| DatasetImage {
                name: name.clone(),
                edge_text: d.edge_text.clone(),
                nodes: d.nodes,
                edges: d.edges,
                ledger: d.ledger,
            })
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Dataset>> {
        self.inner.lock().expect("dataset store poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> BudgetLedger {
        BudgetLedger::new(1.0, 0.1)
    }

    #[test]
    fn create_get_delete_lifecycle() {
        let store = DatasetStore::new();
        store.create("g1", "0 1\n".into(), 2, 1, ledger()).unwrap();
        assert_eq!(store.create("g1", "2 3\n".into(), 2, 1, ledger()), Err(CreateError::Exists));
        let meta = store.meta("g1").unwrap();
        assert_eq!((meta.nodes, meta.edges), (2, 1));
        assert_eq!(store.edge_text("g1").as_deref(), Some("0 1\n"));
        assert_eq!(store.count(), 1);
        assert!(store.remove("g1"));
        assert!(!store.remove("g1"));
        assert!(store.meta("g1").is_none());
    }

    #[test]
    fn listing_is_name_ordered() {
        let store = DatasetStore::new();
        for name in ["zeta", "alpha", "mid"] {
            store.create(name, String::new(), 0, 0, ledger()).unwrap();
        }
        let names: Vec<String> = store.list().into_iter().map(|m| m.name).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn debits_are_atomic_per_dataset() {
        let store = DatasetStore::new();
        store.create("g", String::new(), 0, 0, ledger()).unwrap();
        assert!(store.try_debit("g", 0.6, 0.05).is_ok());
        match store.try_debit("g", 0.6, 0.01) {
            Err(DebitError::Refused(refusal)) => {
                assert!((refusal.remaining_epsilon - 0.4).abs() < 1e-9, "{refusal:?}");
            }
            other => panic!("expected a refusal, got {other:?}"),
        }
        // The refused draw spent nothing.
        assert!((store.meta("g").unwrap().ledger.epsilon_spent - 0.6).abs() < 1e-12);
        assert_eq!(store.try_debit("nope", 0.1, 0.01), Err(DebitError::NoSuchDataset));
    }

    #[test]
    fn clones_share_storage() {
        let store = DatasetStore::new();
        let view = store.clone();
        store.create("shared", String::new(), 0, 0, ledger()).unwrap();
        assert!(view.meta("shared").is_some());
    }

    #[test]
    fn name_grammar() {
        for good in ["a", "graph-1", "ca.AstroPh", "x_y", &"n".repeat(64)] {
            assert!(valid_name(good), "{good:?}");
        }
        for bad in ["", "-lead", ".hidden", "has space", "sl/ash", "é", &"n".repeat(65)] {
            assert!(!valid_name(bad), "{bad:?}");
        }
    }
}
