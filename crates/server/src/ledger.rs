//! The per-dataset privacy-budget ledger.
//!
//! The paper's end-to-end guarantee is a *cumulative* `(ε, δ)` bound over everything released
//! about one sensitive graph. A single estimate spends its declared `(ε, δ)` by sequential
//! composition; the ledger accumulates those draws against the total budget declared when the
//! dataset was created, and refuses any draw that would overshoot — **before** the estimation
//! runs, so a refused request spends nothing.

/// Absolute slack on the budget comparison: draws that sum *exactly* to the limit must be
/// admitted even when floating-point addition of the individual draws drifts by an ulp or two
/// (e.g. ten 0.1-ε draws against a 1.0-ε budget).
const BUDGET_TOLERANCE: f64 = 1e-9;

/// A cumulative `(ε, δ)` ledger for one dataset: fixed limits, monotone spend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetLedger {
    /// The total `ε` the dataset may ever spend.
    pub epsilon_limit: f64,
    /// The total `δ` the dataset may ever spend.
    pub delta_limit: f64,
    /// `ε` debited so far (sums over every admitted estimate — sequential composition).
    pub epsilon_spent: f64,
    /// `δ` debited so far.
    pub delta_spent: f64,
}

/// A refused draw: the remaining budget, reported back to the client on the `429` document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetRefusal {
    /// `ε` still available (clamped to zero).
    pub remaining_epsilon: f64,
    /// `δ` still available (clamped to zero).
    pub remaining_delta: f64,
}

impl BudgetLedger {
    /// A fresh ledger with nothing spent.
    pub fn new(epsilon_limit: f64, delta_limit: f64) -> Self {
        BudgetLedger { epsilon_limit, delta_limit, epsilon_spent: 0.0, delta_spent: 0.0 }
    }

    /// `ε` still available, clamped to zero so accumulated float drift never reports a
    /// negative remainder.
    pub fn remaining_epsilon(&self) -> f64 {
        (self.epsilon_limit - self.epsilon_spent).max(0.0)
    }

    /// `δ` still available, clamped to zero.
    pub fn remaining_delta(&self) -> f64 {
        (self.delta_limit - self.delta_spent).max(0.0)
    }

    /// Whether no meaningfully positive `ε` draw can ever be admitted again.
    pub fn exhausted(&self) -> bool {
        self.remaining_epsilon() <= BUDGET_TOLERANCE
    }

    /// Whether `(epsilon, delta)` fits in the remaining budget, without spending it.
    pub fn can_afford(&self, epsilon: f64, delta: f64) -> bool {
        self.epsilon_spent + epsilon <= self.epsilon_limit + BUDGET_TOLERANCE
            && self.delta_spent + delta <= self.delta_limit + BUDGET_TOLERANCE
    }

    /// Debits `(epsilon, delta)` if it fits, or refuses with the remaining budget — in which
    /// case **nothing is spent**. The debit is final: it is taken before the estimate runs,
    /// and a later estimation failure does not refund it (the noise draw may already have
    /// consumed the randomness, so refunding would break the composition bound).
    pub fn try_debit(&mut self, epsilon: f64, delta: f64) -> Result<(), BudgetRefusal> {
        if !self.can_afford(epsilon, delta) {
            return Err(BudgetRefusal {
                remaining_epsilon: self.remaining_epsilon(),
                remaining_delta: self.remaining_delta(),
            });
        }
        self.epsilon_spent += epsilon;
        self.delta_spent += delta;
        Ok(())
    }

    /// Applies a debit unconditionally — the replay path, where every record in the log was
    /// admitted by [`BudgetLedger::try_debit`] when it was first written.
    pub fn force_debit(&mut self, epsilon: f64, delta: f64) {
        self.epsilon_spent += epsilon;
        self.delta_spent += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debits_accumulate_and_refuse_at_the_limit() {
        let mut ledger = BudgetLedger::new(1.0, 0.05);
        assert!(ledger.try_debit(0.4, 0.01).is_ok());
        assert!(ledger.try_debit(0.4, 0.01).is_ok());
        assert_eq!(ledger.epsilon_spent, 0.8);
        // Over-budget: refused, and nothing is spent.
        let refusal = ledger.try_debit(0.4, 0.01).unwrap_err();
        assert!((refusal.remaining_epsilon - 0.2).abs() < 1e-12, "{refusal:?}");
        assert_eq!(ledger.epsilon_spent, 0.8, "a refused draw must spend nothing");
        assert_eq!(ledger.delta_spent, 0.02);
        // A smaller draw that fits still goes through after a refusal.
        assert!(ledger.try_debit(0.2, 0.01).is_ok());
        assert!(ledger.exhausted());
    }

    #[test]
    fn exact_exhaustion_is_admitted_despite_float_drift() {
        // Ten 0.1 draws against a 1.0 budget: 0.1 is not exact in binary, so the naive sum
        // overshoots 1.0 by an ulp. The tolerance must admit all ten.
        let mut ledger = BudgetLedger::new(1.0, 1.0);
        for i in 0..10 {
            assert!(ledger.try_debit(0.1, 0.05).is_ok(), "draw {i} refused");
        }
        assert!(ledger.exhausted());
        assert!(ledger.try_debit(0.1, 0.05).is_err(), "the budget is spent");
        assert_eq!(ledger.remaining_delta(), 0.5);
    }

    #[test]
    fn delta_exhaustion_refuses_independently_of_epsilon() {
        let mut ledger = BudgetLedger::new(10.0, 0.01);
        assert!(ledger.try_debit(1.0, 0.01).is_ok());
        let refusal = ledger.try_debit(1.0, 0.01).unwrap_err();
        assert_eq!(refusal.remaining_delta, 0.0);
        assert!(refusal.remaining_epsilon > 8.9);
        assert!(!ledger.exhausted(), "epsilon is still available; only delta ran dry");
    }

    #[test]
    fn remaining_never_goes_negative() {
        let mut ledger = BudgetLedger::new(1.0, 0.1);
        ledger.force_debit(2.0, 0.2); // replay of a log written under different limits
        assert_eq!(ledger.remaining_epsilon(), 0.0);
        assert_eq!(ledger.remaining_delta(), 0.0);
        assert!(ledger.exhausted());
    }
}
