//! A fixed-size worker thread pool with graceful shutdown.
//!
//! The classic channel-backed design: jobs are boxed closures pushed onto an [`mpsc`] channel;
//! each worker holds the shared receiver behind a mutex and loops until the channel closes.
//! Dropping the pool drops the sender, which lets every worker drain the remaining queue and
//! exit — so shutdown waits for in-flight work instead of aborting it. A panicking job is
//! caught and logged rather than killing its worker thread.

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of named worker threads.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `size` worker threads named `{name}-{index}`.
    ///
    /// # Panics
    /// Panics if `size == 0` or if the OS refuses to spawn a thread.
    pub fn new(size: usize, name: &str) -> Self {
        assert!(size > 0, "a thread pool needs at least one worker");
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                // lint:allow(determinism-thread, reason = "HTTP worker pool: serves wire requests only; no compute kernel runs on these threads outside the deterministic executor")
                thread::Builder::new()
                    .name(format!("{name}-{index}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("failed to spawn a worker thread")
            })
            .collect();
        ThreadPool { sender: Some(sender), workers }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job. Jobs run in submission order per worker, concurrently across workers.
    ///
    /// # Panics
    /// Panics if called after shutdown began (cannot happen through the public API, which
    /// consumes the pool on drop).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("thread pool is shutting down")
            .send(Box::new(job))
            .expect("all workers exited before shutdown");
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while waiting for a job, never while running one.
        let job = match receiver.lock().expect("pool receiver poisoned").recv() {
            Ok(job) => job,
            Err(_) => break, // every sender dropped: graceful shutdown
        };
        // A panicking job must not take its worker down with it; swallow the panic and keep
        // serving. The payload is already reported on stderr by the default panic hook.
        let _ = panic::catch_unwind(AssertUnwindSafe(job));
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_job_before_shutdown() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4, "test-pool");
            assert_eq!(pool.size(), 4);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Dropping the pool here must block until all 100 jobs ran.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_actually_run_concurrently() {
        let pool = ThreadPool::new(2, "concurrent");
        let (tx, rx) = mpsc::channel();
        // Two jobs that each wait for the other's token: only completes with >= 2 workers.
        let (a_tx, a_rx) = mpsc::channel();
        let (b_tx, b_rx) = mpsc::channel();
        let done = tx.clone();
        pool.execute(move || {
            b_tx.send(()).unwrap();
            a_rx.recv_timeout(Duration::from_secs(5)).unwrap();
            done.send(()).unwrap();
        });
        pool.execute(move || {
            a_tx.send(()).unwrap();
            b_rx.recv_timeout(Duration::from_secs(5)).unwrap();
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_worker() {
        let pool = ThreadPool::new(1, "panics");
        pool.execute(|| panic!("job blew up"));
        let (tx, rx) = mpsc::channel();
        pool.execute(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_sized_pool_is_rejected() {
        let _ = ThreadPool::new(0, "empty");
    }
}
