//! The durable store: an append-only record log plus periodic snapshot compaction under
//! `--data-dir`, replayed on boot.
//!
//! Layout inside the data dir:
//!
//! * `records.log` — one JSON object per line, each carrying a monotone `seq`. Record kinds:
//!   `dataset_put`, `dataset_delete`, `debit`, `job_submitted`, `job_finished`.
//! * `snapshot.json` — a full state image (`datasets`, `jobs`, `next_job_id`) tagged with the
//!   `last_seq` it covers. Written atomically (tmp file + rename) every `snapshot_every`
//!   appends, after which the log is truncated.
//!
//! Boot replay loads the snapshot (if any), then applies log records with `seq > last_seq` in
//! order. A truncated or garbled tail — the signature of a crash mid-append — is **dropped,
//! not fatal**: replay stops at the first unreadable line and serves everything before it.
//! Unknown record kinds on well-formed lines are skipped individually, so a newer server's
//! log does not brick an older one.
//!
//! Durability model: records are flushed to the OS on every append (write syscall per record;
//! the estimate path is seconds of compute per record, so this is never the bottleneck). The
//! debit record for an estimate is appended *before* its `job_submitted` record — if the
//! process dies between the two, the budget is spent with no job attached, which errs on the
//! safe side of the privacy guarantee.

use crate::datasets::{DatasetImage, DatasetStore};
use crate::jobs::JobImager;
use crate::ledger::BudgetLedger;
use kronpriv_json::Json;
use kronpriv_obs::Registry;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Default number of log appends between snapshot compactions.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 64;

const LOG_FILE: &str = "records.log";
const SNAPSHOT_FILE: &str = "snapshot.json";
const SNAPSHOT_TMP: &str = "snapshot.json.tmp";

/// A job that was submitted but had not finished when the process stopped. Its spec replays
/// through the same validation/submission path as a live request; determinism (one seeded RNG
/// per job) makes the re-run produce the byte-identical result document.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// The job id it ran under (re-used on replay so clients' poll URLs stay valid).
    pub id: u64,
    /// The warnings recorded at original submission, echoed verbatim.
    pub warnings: Vec<String>,
    /// The persisted job spec (parsed into `api::JobSpec` by the replay path).
    pub spec: Json,
}

/// A finished job restored from the store.
#[derive(Debug, Clone)]
pub struct FinishedJob {
    /// The job id.
    pub id: u64,
    /// `Ok(result)` for `Done`, `Err(message)` for `Failed`.
    pub outcome: Result<Json, String>,
    /// The warnings recorded at submission.
    pub warnings: Vec<String>,
}

/// Everything the boot replay recovered from the data dir.
#[derive(Debug, Default)]
pub struct Replay {
    /// Datasets with their ledgers, in name order.
    pub datasets: Vec<DatasetImage>,
    /// Finished jobs in id order.
    pub finished: Vec<FinishedJob>,
    /// Jobs to re-run, in id order.
    pub pending: Vec<PendingJob>,
    /// The largest job id ever assigned (seeds the job store's id counter).
    pub next_job_id: u64,
    /// Log records applied (snapshot state not included).
    pub replayed_records: u64,
    /// Log lines dropped as unreadable (truncated tail) or unknown.
    pub dropped_records: u64,
}

struct LogState {
    file: File,
    next_seq: u64,
    appends_since_snapshot: u64,
}

/// The persistence handle: appends records, compacts into snapshots, and replays on open.
pub struct Persistence {
    dir: PathBuf,
    snapshot_every: u64,
    inner: Mutex<LogState>,
}

impl Persistence {
    /// Opens (or initialises) the data dir and replays its contents.
    pub fn open(dir: &Path, snapshot_every: u64) -> io::Result<(Persistence, Replay)> {
        fs::create_dir_all(dir)?;
        let snapshot_every = snapshot_every.max(1);
        let mut state = ReplayState::default();
        let mut last_seq = 0u64;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        if snapshot_path.exists() {
            match fs::read_to_string(&snapshot_path).ok().and_then(|t| Json::parse(&t).ok()) {
                Some(doc) => last_seq = state.apply_snapshot(&doc),
                None => eprintln!(
                    "kronpriv-store: unreadable snapshot at {}; replaying the log from scratch",
                    snapshot_path.display()
                ),
            }
        }

        let log_path = dir.join(LOG_FILE);
        let mut replayed = 0u64;
        let mut dropped = 0u64;
        let mut max_seq = last_seq;
        if log_path.exists() {
            let text = fs::read_to_string(&log_path)?;
            let lines: Vec<&str> = text.lines().collect();
            for (i, line) in lines.iter().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let record = match Json::parse(line) {
                    Ok(doc) => doc,
                    Err(_) => {
                        // A torn write: drop this line and everything after it.
                        dropped += (lines.len() - i) as u64;
                        break;
                    }
                };
                let seq = match field_u64(&record, "seq") {
                    Some(seq) => seq,
                    None => {
                        dropped += (lines.len() - i) as u64;
                        break;
                    }
                };
                if seq <= last_seq {
                    continue; // already covered by the snapshot
                }
                max_seq = max_seq.max(seq);
                if state.apply_record(&record) {
                    replayed += 1;
                } else {
                    dropped += 1; // well-formed line of an unknown kind: skip it alone
                }
            }
        }

        let registry = Registry::global();
        registry.counter("kronpriv_store_replayed_records_total", &[]).add(replayed);
        registry.counter("kronpriv_store_dropped_records_total", &[]).add(dropped);

        let file = OpenOptions::new().create(true).append(true).open(&log_path)?;
        let persistence = Persistence {
            dir: dir.to_path_buf(),
            snapshot_every,
            inner: Mutex::new(LogState { file, next_seq: max_seq, appends_since_snapshot: 0 }),
        };
        let mut replay = state.into_replay();
        replay.replayed_records = replayed;
        replay.dropped_records = dropped;
        Ok((persistence, replay))
    }

    /// Appends one record (the `seq` field is assigned here), compacting into a snapshot every
    /// `snapshot_every` appends. `image` is only invoked when compaction triggers; it must
    /// return the `{next_job_id, datasets, jobs}` state image (see [`state_image`]) and may
    /// take the dataset/job locks — callers therefore must not hold those locks while
    /// appending.
    ///
    /// I/O failures are reported to stderr and swallowed: an estimate service with a full disk
    /// degrades to in-memory behaviour rather than refusing traffic.
    pub fn record(&self, kind: &str, fields: Vec<(&str, Json)>, image: impl FnOnce() -> Json) {
        if let Err(e) = self.try_record(kind, fields, image) {
            eprintln!("kronpriv-store: append failed ({e}); continuing in-memory");
        }
    }

    fn try_record(
        &self,
        kind: &str,
        fields: Vec<(&str, Json)>,
        image: impl FnOnce() -> Json,
    ) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store log poisoned");
        inner.next_seq += 1;
        let seq = inner.next_seq;
        let mut pairs = vec![
            ("record".to_string(), Json::String(kind.to_string())),
            ("seq".to_string(), Json::Number(seq as f64)),
        ];
        pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        let mut line = kronpriv_json::to_string(&Json::Object(pairs));
        line.push('\n');
        inner.file.write_all(line.as_bytes())?;
        inner.file.flush()?;
        let registry = Registry::global();
        registry.counter("kronpriv_store_records_total", &[]).inc();
        inner.appends_since_snapshot += 1;
        if inner.appends_since_snapshot >= self.snapshot_every {
            self.write_snapshot(&mut inner, seq, image())?;
            registry.counter("kronpriv_store_snapshots_total", &[]).inc();
        }
        Ok(())
    }

    /// Forces a snapshot now (used on graceful shutdown paths and by tests).
    pub fn snapshot_now(&self, image: Json) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store log poisoned");
        let seq = inner.next_seq;
        self.write_snapshot(&mut inner, seq, image)
    }

    fn write_snapshot(&self, inner: &mut LogState, last_seq: u64, image: Json) -> io::Result<()> {
        let mut pairs = vec![
            ("version".to_string(), Json::Number(1.0)),
            ("last_seq".to_string(), Json::Number(last_seq as f64)),
        ];
        if let Json::Object(fields) = image {
            pairs.extend(fields);
        }
        let tmp = self.dir.join(SNAPSHOT_TMP);
        fs::write(&tmp, kronpriv_json::to_string(&Json::Object(pairs)))?;
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // The snapshot covers everything in the log: start the log over.
        inner.file.set_len(0)?;
        inner.file.seek(SeekFrom::Start(0))?;
        inner.appends_since_snapshot = 0;
        Ok(())
    }
}

/// Builds the `{next_job_id, datasets, jobs}` state image the snapshot embeds — shared by the
/// request handlers and the job-completion hook (which has no `AppState` to call into).
pub fn state_image(datasets: &DatasetStore, jobs: &JobImager) -> Json {
    let dataset_docs: Vec<Json> = datasets.images().into_iter().map(|i| dataset_doc(&i)).collect();
    let (next_job_id, job_docs) = jobs.image_docs();
    Json::Object(vec![
        ("next_job_id".to_string(), Json::Number(next_job_id as f64)),
        ("datasets".to_string(), Json::Array(dataset_docs)),
        ("jobs".to_string(), Json::Array(job_docs)),
    ])
}

fn dataset_doc(image: &DatasetImage) -> Json {
    Json::Object(vec![
        ("name".to_string(), Json::String(image.name.clone())),
        ("edge_list".to_string(), Json::String(image.edge_text.clone())),
        ("nodes".to_string(), Json::Number(image.nodes as f64)),
        ("edges".to_string(), Json::Number(image.edges as f64)),
        ("epsilon_limit".to_string(), Json::Number(image.ledger.epsilon_limit)),
        ("delta_limit".to_string(), Json::Number(image.ledger.delta_limit)),
        ("epsilon_spent".to_string(), Json::Number(image.ledger.epsilon_spent)),
        ("delta_spent".to_string(), Json::Number(image.ledger.delta_spent)),
    ])
}

/// Replay accumulator: maps rebuilt from snapshot + log, then flattened into [`Replay`].
#[derive(Default)]
struct ReplayState {
    datasets: BTreeMap<String, DatasetImage>,
    jobs: BTreeMap<u64, JobReplay>,
    next_job_id: u64,
}

enum JobReplay {
    Pending { warnings: Vec<String>, spec: Json },
    Finished { outcome: Result<Json, String>, warnings: Vec<String> },
}

impl ReplayState {
    /// Applies a snapshot document; returns the `last_seq` it covers.
    fn apply_snapshot(&mut self, doc: &Json) -> u64 {
        for entry in doc.get("datasets").and_then(Json::as_array).unwrap_or(&Vec::new()) {
            if let Some(image) = parse_dataset_doc(entry) {
                self.see_dataset(image);
            }
        }
        for entry in doc.get("jobs").and_then(Json::as_array).unwrap_or(&Vec::new()) {
            self.apply_snapshot_job(entry);
        }
        if let Some(next) = field_u64(doc, "next_job_id") {
            self.next_job_id = self.next_job_id.max(next);
        }
        field_u64(doc, "last_seq").unwrap_or(0)
    }

    fn apply_snapshot_job(&mut self, entry: &Json) {
        let id = match field_u64(entry, "job_id") {
            Some(id) => id,
            None => return,
        };
        self.next_job_id = self.next_job_id.max(id);
        let warnings = string_array(entry, "warnings");
        let state = match entry.get("status").and_then(Json::as_str) {
            Some("done") => match entry.get("result") {
                Some(result) => JobReplay::Finished { outcome: Ok(result.clone()), warnings },
                None => return,
            },
            Some("failed") => JobReplay::Finished {
                outcome: Err(field_str(entry, "error").unwrap_or_default()),
                warnings,
            },
            Some("pending") => match entry.get("spec") {
                Some(spec) => JobReplay::Pending { warnings, spec: spec.clone() },
                None => return,
            },
            _ => return,
        };
        self.jobs.insert(id, state);
    }

    /// Applies one log record; `false` means the kind was not recognised.
    fn apply_record(&mut self, record: &Json) -> bool {
        match record.get("record").and_then(Json::as_str) {
            Some("dataset_put") => {
                if let Some(image) = parse_dataset_doc(record) {
                    self.see_dataset(image);
                }
                true
            }
            Some("dataset_delete") => {
                if let Some(name) = field_str(record, "name") {
                    self.datasets.remove(&name);
                }
                true
            }
            Some("debit") => {
                if let (Some(name), Some(epsilon), Some(delta)) = (
                    field_str(record, "name"),
                    record.get("epsilon").and_then(Json::as_f64),
                    record.get("delta").and_then(Json::as_f64),
                ) {
                    if let Some(dataset) = self.datasets.get_mut(&name) {
                        dataset.ledger.force_debit(epsilon, delta);
                    }
                }
                true
            }
            Some("job_submitted") => {
                if let (Some(id), Some(spec)) = (field_u64(record, "job_id"), record.get("spec")) {
                    self.next_job_id = self.next_job_id.max(id);
                    self.jobs.insert(
                        id,
                        JobReplay::Pending {
                            warnings: string_array(record, "warnings"),
                            spec: spec.clone(),
                        },
                    );
                }
                true
            }
            Some("job_finished") => {
                if let Some(id) = field_u64(record, "job_id") {
                    self.next_job_id = self.next_job_id.max(id);
                    let warnings = match self.jobs.get(&id) {
                        Some(JobReplay::Pending { warnings, .. }) => warnings.clone(),
                        Some(JobReplay::Finished { warnings, .. }) => warnings.clone(),
                        None => Vec::new(),
                    };
                    let outcome = match record.get("result") {
                        Some(result) => Ok(result.clone()),
                        None => Err(field_str(record, "error").unwrap_or_default()),
                    };
                    self.jobs.insert(id, JobReplay::Finished { outcome, warnings });
                }
                true
            }
            _ => false,
        }
    }

    fn see_dataset(&mut self, image: DatasetImage) {
        self.datasets.insert(image.name.clone(), image);
    }

    fn into_replay(self) -> Replay {
        let mut replay = Replay {
            datasets: self.datasets.into_values().collect(),
            next_job_id: self.next_job_id,
            ..Replay::default()
        };
        for (id, state) in self.jobs {
            match state {
                JobReplay::Pending { warnings, spec } => {
                    replay.pending.push(PendingJob { id, warnings, spec });
                }
                JobReplay::Finished { outcome, warnings } => {
                    replay.finished.push(FinishedJob { id, outcome, warnings });
                }
            }
        }
        replay
    }
}

fn parse_dataset_doc(doc: &Json) -> Option<DatasetImage> {
    Some(DatasetImage {
        name: field_str(doc, "name")?,
        edge_text: field_str(doc, "edge_list")?,
        nodes: field_u64(doc, "nodes")?,
        edges: field_u64(doc, "edges")?,
        ledger: BudgetLedger {
            epsilon_limit: doc.get("epsilon_limit").and_then(Json::as_f64)?,
            delta_limit: doc.get("delta_limit").and_then(Json::as_f64)?,
            epsilon_spent: doc.get("epsilon_spent").and_then(Json::as_f64).unwrap_or(0.0),
            delta_spent: doc.get("delta_spent").and_then(Json::as_f64).unwrap_or(0.0),
        },
    })
}

fn field_str(doc: &Json, key: &str) -> Option<String> {
    doc.get(key).and_then(Json::as_str).map(str::to_string)
}

fn field_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_f64).filter(|v| *v >= 0.0 && v.fract() == 0.0).map(|v| v as u64)
}

fn string_array(doc: &Json, key: &str) -> Vec<String> {
    doc.get(key)
        .and_then(Json::as_array)
        .map(|items| items.iter().filter_map(|i| i.as_str().map(str::to_string)).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kronpriv-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn put_dataset_fields(name: &str, epsilon_limit: f64) -> Vec<(&'static str, Json)> {
        vec![
            ("name", Json::String(name.to_string())),
            ("edge_list", Json::String("0 1\n1 2\n".to_string())),
            ("nodes", Json::Number(3.0)),
            ("edges", Json::Number(2.0)),
            ("epsilon_limit", Json::Number(epsilon_limit)),
            ("delta_limit", Json::Number(0.1)),
            ("epsilon_spent", Json::Number(0.0)),
            ("delta_spent", Json::Number(0.0)),
        ]
    }

    fn empty_image() -> Json {
        Json::Object(vec![
            ("next_job_id".to_string(), Json::Number(0.0)),
            ("datasets".to_string(), Json::Array(Vec::new())),
            ("jobs".to_string(), Json::Array(Vec::new())),
        ])
    }

    #[test]
    fn records_replay_across_reopen() {
        let dir = temp_dir("replay");
        {
            let (store, replay) = Persistence::open(&dir, 1000).unwrap();
            assert!(replay.datasets.is_empty() && replay.pending.is_empty());
            store.record("dataset_put", put_dataset_fields("g", 2.0), empty_image);
            store.record(
                "debit",
                vec![
                    ("name", Json::String("g".to_string())),
                    ("epsilon", Json::Number(0.5)),
                    ("delta", Json::Number(0.01)),
                ],
                empty_image,
            );
            store.record(
                "job_submitted",
                vec![
                    ("job_id", Json::Number(1.0)),
                    ("warnings", Json::Array(Vec::new())),
                    ("spec", Json::Object(vec![("seed".to_string(), Json::Number(7.0))])),
                ],
                empty_image,
            );
        }
        let (_store, replay) = Persistence::open(&dir, 1000).unwrap();
        assert_eq!(replay.replayed_records, 3);
        assert_eq!(replay.dropped_records, 0);
        assert_eq!(replay.datasets.len(), 1);
        let dataset = &replay.datasets[0];
        assert_eq!(dataset.name, "g");
        assert!((dataset.ledger.epsilon_spent - 0.5).abs() < 1e-12);
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.pending[0].id, 1);
        assert_eq!(replay.next_job_id, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped_not_fatal() {
        let dir = temp_dir("torn");
        {
            let (store, _) = Persistence::open(&dir, 1000).unwrap();
            store.record("dataset_put", put_dataset_fields("kept", 1.0), empty_image);
        }
        // Simulate a crash mid-append: a torn, unparseable tail record.
        let log = dir.join(LOG_FILE);
        let mut file = OpenOptions::new().append(true).open(&log).unwrap();
        file.write_all(b"{\"record\":\"debit\",\"seq\":2,\"name\":\"kept\",\"eps").unwrap();
        drop(file);
        let (_store, replay) = Persistence::open(&dir, 1000).unwrap();
        assert_eq!(replay.replayed_records, 1);
        assert_eq!(replay.dropped_records, 1);
        assert_eq!(replay.datasets.len(), 1, "the intact record before the tear survives");
        assert_eq!(replay.datasets[0].ledger.epsilon_spent, 0.0, "the torn debit is dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compaction_truncates_the_log_and_replays_identically() {
        let dir = temp_dir("compact");
        {
            let (store, _) = Persistence::open(&dir, 2).unwrap();
            let image = || {
                Json::Object(vec![
                    ("next_job_id".to_string(), Json::Number(0.0)),
                    (
                        "datasets".to_string(),
                        Json::Array(vec![Json::Object(
                            put_dataset_fields("snap", 3.0)
                                .into_iter()
                                .map(|(k, v)| (k.to_string(), v))
                                .collect(),
                        )]),
                    ),
                    ("jobs".to_string(), Json::Array(Vec::new())),
                ])
            };
            store.record("dataset_put", put_dataset_fields("snap", 3.0), image);
            store.record("dataset_put", put_dataset_fields("snap", 3.0), image); // triggers
            assert_eq!(fs::read_to_string(dir.join(LOG_FILE)).unwrap(), "");
            assert!(dir.join(SNAPSHOT_FILE).exists());
            // Post-snapshot records land in the fresh log with continuing seq numbers.
            store.record(
                "debit",
                vec![
                    ("name", Json::String("snap".to_string())),
                    ("epsilon", Json::Number(1.0)),
                    ("delta", Json::Number(0.01)),
                ],
                image,
            );
        }
        let (_store, replay) = Persistence::open(&dir, 2).unwrap();
        assert_eq!(replay.datasets.len(), 1);
        assert!((replay.datasets[0].ledger.epsilon_spent - 1.0).abs() < 1e-12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_finished_supersedes_pending_and_keeps_warnings() {
        let dir = temp_dir("finish");
        {
            let (store, _) = Persistence::open(&dir, 1000).unwrap();
            store.record(
                "job_submitted",
                vec![
                    ("job_id", Json::Number(4.0)),
                    ("warnings", Json::Array(vec![Json::String("w".to_string())])),
                    ("spec", Json::Object(Vec::new())),
                ],
                empty_image,
            );
            store.record(
                "job_finished",
                vec![("job_id", Json::Number(4.0)), ("result", Json::Number(42.0))],
                empty_image,
            );
        }
        let (_store, replay) = Persistence::open(&dir, 1000).unwrap();
        assert!(replay.pending.is_empty());
        assert_eq!(replay.finished.len(), 1);
        assert_eq!(replay.finished[0].outcome, Ok(Json::Number(42.0)));
        assert_eq!(replay.finished[0].warnings, vec!["w".to_string()]);
        assert_eq!(replay.next_job_id, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_record_kinds_are_skipped_individually() {
        let dir = temp_dir("unknown");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(LOG_FILE),
            concat!(
                "{\"record\":\"from_the_future\",\"seq\":1,\"x\":1}\n",
                "{\"record\":\"dataset_put\",\"seq\":2,\"name\":\"g\",\"edge_list\":\"0 1\\n\",",
                "\"nodes\":2,\"edges\":1,\"epsilon_limit\":1.0,\"delta_limit\":0.1}\n",
            ),
        )
        .unwrap();
        let (_store, replay) = Persistence::open(&dir, 1000).unwrap();
        assert_eq!(replay.dropped_records, 1);
        assert_eq!(replay.datasets.len(), 1, "records after the unknown kind still apply");
        let _ = fs::remove_dir_all(&dir);
    }
}
