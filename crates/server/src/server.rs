//! The TCP accept loop, connection handling and graceful shutdown.

use crate::http::{read_request, HttpError};
use crate::pool::ThreadPool;
use crate::router::{error, route, AppState};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port (the bound address is reported by
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// HTTP connection workers (request parsing, routing, synchronous endpoints).
    pub workers: usize,
    /// Estimation workers executing `/api/estimate` jobs.
    pub job_workers: usize,
    /// Size of the shared compute worker pool, built **once** at startup and borrowed by every
    /// estimation job for its parallel stages — the counting kernels (triangle count, smooth
    /// sensitivity), the isotonic degree post-processing and the moment-matching fit; `0`
    /// means one worker per available hardware thread. Every stage is deterministic for any
    /// pool size, so this knob never changes a job's result — it is server-side resource
    /// control only, which is also why the server runs jobs on its own pool instead of
    /// whatever a request's `options.compute_threads` says.
    pub compute_threads: usize,
    /// Largest Kronecker order accepted by `/api/sample` and sampled-SKG inputs.
    pub max_order: u32,
    /// Per-connection socket read/write timeout (per `read(2)`/`write(2)` call).
    pub io_timeout: Duration,
    /// Overall wall-clock budget for *reading one request*. The per-call `io_timeout` resets on
    /// every byte, so a slowloris client dripping one byte per interval could hold an HTTP
    /// worker indefinitely while staying inside the head-size limit; this deadline cuts such a
    /// connection off with a `408 Request Timeout` instead (worst-case overshoot: one
    /// `io_timeout`).
    pub request_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            job_workers: 2,
            compute_threads: 0,
            max_order: 16,
            io_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
        }
    }
}

/// A handle to a running server: its bound address plus shutdown control.
///
/// Dropping the handle shuts the server down gracefully (stop accepting, finish in-flight
/// connections and estimation jobs, join every thread).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown and waits for all threads to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the accept loop exits (it only exits on shutdown, so for the standalone
    /// binary this means "serve forever").
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    fn stop(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // The accept loop blocks in `accept(2)`; a throwaway connection wakes it so it can
            // observe the flag and exit.
            let _ = TcpStream::connect(self.addr);
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds the listener and spawns the accept loop; returns once the server is ready to accept
/// connections.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let state =
        Arc::new(AppState::new(config.job_workers, config.max_order, config.compute_threads));
    let pool = ThreadPool::new(config.workers, "kronpriv-http");
    let flag = Arc::clone(&shutdown);
    let io_timeout = config.io_timeout;
    let request_deadline = config.request_deadline;
    let accept = thread::Builder::new().name("kronpriv-accept".to_string()).spawn(move || {
        for stream in listener.incoming() {
            if flag.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => {
                    // Persistent accept errors (e.g. fd exhaustion) would otherwise busy-spin
                    // this thread; back off briefly before retrying.
                    thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            let state = Arc::clone(&state);
            pool.execute(move || handle_connection(stream, &state, io_timeout, request_deadline));
        }
        // `pool` and `state` drop here: workers drain in-flight connections, then the job
        // store's estimation pool drains in-flight jobs.
    })?;
    Ok(ServerHandle { addr, shutdown, accept: Some(accept) })
}

/// Serves one connection: read a request, route it, write the response, close.
fn handle_connection(
    stream: TcpStream,
    state: &AppState,
    io_timeout: Duration,
    request_deadline: Duration,
) {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let deadline = std::time::Instant::now() + request_deadline;
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader, deadline) {
        Ok(request) => route(state, &request),
        // The shutdown wake-up connection lands here as an immediate EOF; answering a 408/400
        // into a closed socket is harmless.
        Err(HttpError::Io(e)) => error(400, format!("could not read request: {e}")),
        Err(HttpError::TooLarge) => error(413, "request exceeds the size limits"),
        Err(e @ HttpError::Malformed(_)) => error(400, e.to_string()),
        Err(e @ HttpError::Timeout) => error(408, e.to_string()),
    };
    let _ = response.write_to(reader.into_inner());
}

/// One-call convenience used by unit tests and docs: serve on an ephemeral localhost port.
pub fn serve_ephemeral(workers: usize, job_workers: usize) -> io::Result<ServerHandle> {
    serve(ServerConfig { workers, job_workers, ..ServerConfig::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    #[test]
    fn serves_health_and_shuts_down_gracefully() {
        let handle = serve_ephemeral(2, 1).unwrap();
        let addr = handle.addr();
        let (status, body) = client::get(addr, "/healthz").unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"ok\""));
        handle.shutdown();
        // After shutdown the port no longer accepts requests.
        assert!(
            client::get(addr, "/healthz").is_err() || {
                // A race can let one last connect through while the OS recycles the socket; but a
                // fresh bind on the same port must now succeed, proving the listener is gone.
                TcpListener::bind(addr).is_ok()
            }
        );
    }

    #[test]
    fn slowloris_drip_feed_is_cut_off_with_408() {
        use std::io::{Read, Write};
        // Regression: with only the per-read io_timeout, a client dripping one byte per
        // interval (well under the timeout) held an HTTP worker indefinitely. The overall
        // request deadline must cut it off with a 408 long before the drip would finish.
        let handle = serve(ServerConfig {
            workers: 1,
            job_workers: 1,
            request_deadline: Duration::from_millis(250),
            io_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let started = std::time::Instant::now();
        // Drip a never-completed request line, one byte every 20 ms, for up to ~4 s.
        let dripper = std::thread::spawn(move || {
            for _ in 0..200 {
                if writer.write_all(b"G").is_err() {
                    break; // the server already cut the connection
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        let elapsed = started.elapsed();
        dripper.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 408 "), "{response}");
        assert!(
            elapsed < Duration::from_secs(5),
            "drip-fed request held the worker for {elapsed:?}"
        );
        handle.shutdown();
    }

    #[test]
    fn slow_but_complete_requests_inside_the_deadline_still_succeed() {
        use std::io::{Read, Write};
        let handle = serve(ServerConfig {
            workers: 1,
            job_workers: 1,
            request_deadline: Duration::from_secs(10),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Send a valid request in two instalments with a pause in between: slower than one
        // buffer refill, but well inside the overall deadline.
        stream.write_all(b"GET /health").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        stream.write_all(b"z HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 "), "{response}");
        handle.shutdown();
    }

    #[test]
    fn malformed_and_oversized_requests_get_4xx() {
        use std::io::{Read, Write};
        let handle = serve_ephemeral(2, 1).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400 "), "{response}");

        let (status, _) = client::post_json(
            handle.addr(),
            "/api/estimate",
            "{\"this is\": \"not an estimate request\"}",
        )
        .unwrap();
        assert_eq!(status, 400);
    }
}
