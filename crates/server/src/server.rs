//! The TCP accept loop, connection handling and graceful shutdown.

use crate::http::{finish_chunked, read_request, write_chunk, write_chunked_head, HttpError};
use crate::pool::ThreadPool;
use crate::router::{self, canonical_path, error, events_target, route, AppState};
use crate::store;
use kronpriv_json::Json;
use kronpriv_obs::Registry;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port (the bound address is reported by
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// HTTP connection workers (request parsing, routing, synchronous endpoints).
    pub workers: usize,
    /// Estimation workers executing `/api/estimate` jobs.
    pub job_workers: usize,
    /// Size of the shared compute worker pool, built **once** at startup and borrowed by every
    /// estimation job for its parallel stages — the counting kernels (triangle count, smooth
    /// sensitivity), the isotonic degree post-processing and the moment-matching fit; `0`
    /// means one worker per available hardware thread. Every stage is deterministic for any
    /// pool size, so this knob never changes a job's result — it is server-side resource
    /// control only, which is also why the server runs jobs on its own pool instead of
    /// whatever a request's `options.compute_threads` says.
    pub compute_threads: usize,
    /// Largest Kronecker order accepted by `/api/sample` and sampled-SKG inputs.
    pub max_order: u32,
    /// Per-connection socket read/write timeout (per `read(2)`/`write(2)` call).
    pub io_timeout: Duration,
    /// Overall wall-clock budget for *reading one request*. The per-call `io_timeout` resets on
    /// every byte, so a slowloris client dripping one byte per interval could hold an HTTP
    /// worker indefinitely while staying inside the head-size limit; this deadline cuts such a
    /// connection off with a `408 Request Timeout` instead (worst-case overshoot: one
    /// `io_timeout`).
    pub request_deadline: Duration,
    /// When true, every handled request is logged to stdout as one structured JSON line
    /// (`{"log":"access","method":...,"path":...,"status":...,"duration_us":...}`). Off by
    /// default so embedded servers (tests, `serve_ephemeral`) stay quiet; the `kronpriv-serve`
    /// binary turns it on. Metrics are recorded regardless — only the log line is gated.
    pub access_log: bool,
    /// Directory for the durable record log and snapshots. `None` (the default) keeps all
    /// state in memory, exactly as before durability existed; `Some(dir)` replays the
    /// directory on boot (datasets, ledgers, finished jobs, and pending jobs — which re-run
    /// deterministically from their persisted specs) and appends every mutation to it.
    pub data_dir: Option<PathBuf>,
    /// Appends between snapshot compactions of the record log (only meaningful with
    /// `data_dir`). Low values bound replay work; high values reduce snapshot churn.
    pub snapshot_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            job_workers: 2,
            compute_threads: 0,
            max_order: 16,
            io_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
            access_log: false,
            data_dir: None,
            snapshot_every: store::DEFAULT_SNAPSHOT_EVERY,
        }
    }
}

/// A handle to a running server: its bound address plus shutdown control.
///
/// Dropping the handle shuts the server down gracefully (stop accepting, finish in-flight
/// connections and estimation jobs, join every thread).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown and waits for all threads to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the accept loop exits (it only exits on shutdown, so for the standalone
    /// binary this means "serve forever").
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    fn stop(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // The accept loop blocks in `accept(2)`; a throwaway connection wakes it so it can
            // observe the flag and exit.
            let _ = TcpStream::connect(self.addr);
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds the listener and spawns the accept loop; returns once the server is ready to accept
/// connections.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (state, pending) = match &config.data_dir {
        Some(dir) => AppState::with_persistence(
            config.job_workers,
            config.max_order,
            config.compute_threads,
            dir,
            config.snapshot_every.max(1),
        )?,
        None => (
            AppState::new(config.job_workers, config.max_order, config.compute_threads),
            Vec::new(),
        ),
    };
    let state = Arc::new(state);
    // Pending jobs replay *after* the completion hook is installed (inside
    // `with_persistence`), so their re-run results are persisted like any live job's.
    router::replay_pending(&state, pending);
    let pool = ThreadPool::new(config.workers, "kronpriv-http");
    let flag = Arc::clone(&shutdown);
    let io_timeout = config.io_timeout;
    let request_deadline = config.request_deadline;
    let access_log = config.access_log;
    // lint:allow(determinism-thread, reason = "the listener accept loop: dispatches connections to the HTTP pool and never touches compute state")
    let accept = thread::Builder::new().name("kronpriv-accept".to_string()).spawn(move || {
        for stream in listener.incoming() {
            if flag.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => {
                    // Persistent accept errors (e.g. fd exhaustion) would otherwise busy-spin
                    // this thread; back off briefly before retrying.
                    thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            let state = Arc::clone(&state);
            pool.execute(move || {
                handle_connection(stream, &state, io_timeout, request_deadline, access_log)
            });
        }
        // `pool` and `state` drop here: workers drain in-flight connections, then the job
        // store's estimation pool drains in-flight jobs.
    })?;
    Ok(ServerHandle { addr, shutdown, accept: Some(accept) })
}

/// How long one `/api/jobs/{id}/events` connection may follow a job before the server closes
/// the (well-terminated) stream anyway. Jobs themselves are bounded far below this by the
/// router's iteration-budget caps; the limit only protects an HTTP worker from a job that
/// somehow never completes.
const MAX_EVENT_STREAM: Duration = Duration::from_secs(15 * 60);

/// Serves one connection: read a request, route it, write the response, close. `GET
/// /api/jobs/{id}/events` is intercepted *before* routing — it needs the raw socket to write
/// a chunked stream that follows the job, which the request → response router cannot express.
fn handle_connection(
    stream: TcpStream,
    state: &AppState,
    io_timeout: Duration,
    request_deadline: Duration,
    access_log: bool,
) {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let started = Instant::now();
    let deadline = started + request_deadline;
    let mut reader = BufReader::new(stream);
    let (identity, response) = match read_request(&mut reader, deadline) {
        Ok(request) => {
            let path = request.path.split('?').next().unwrap_or("").to_string();
            // The event stream is intercepted on the *canonical* spelling so the legacy
            // `/api/jobs/{id}/events` alias streams identically (plus the Deprecation header).
            let (canonical, deprecated) = canonical_path(&path);
            let events_id = canonical
                .strip_prefix("/api/v1/jobs/")
                .and_then(|rest| rest.strip_suffix("/events"))
                .map(|raw_id| events_target(state, request.method.as_str(), raw_id));
            match events_id {
                Some(Ok(id)) => {
                    // Status and latency are observed at stream start (time to first byte);
                    // folding multi-minute job runtimes into the request histogram would
                    // drown the signal.
                    observe_request(&request.method, &path, 200, started, access_log);
                    let _ = stream_events(reader.into_inner(), state, id, deprecated);
                    return;
                }
                Some(Err(response)) => {
                    let response = if deprecated {
                        response.with_header("Deprecation", "true")
                    } else {
                        response
                    };
                    (Some((request.method, path)), response)
                }
                None => {
                    let response = route(state, &request);
                    (Some((request.method, path)), response)
                }
            }
        }
        // The shutdown wake-up connection lands here as an immediate EOF; answering a 408/400
        // into a closed socket is harmless.
        Err(HttpError::Io(e)) => {
            (None, error(400, "bad_request", format!("could not read request: {e}")))
        }
        Err(HttpError::TooLarge) => {
            (None, error(413, "too_large", "request exceeds the size limits"))
        }
        Err(e @ HttpError::Malformed(_)) => (None, error(400, "bad_request", e.to_string())),
        Err(e @ HttpError::Timeout) => (None, error(408, "timeout", e.to_string())),
    };
    let (method, path) = identity.unwrap_or_default();
    observe_request(&method, &path, response.status, started, access_log);
    let _ = response.write_to(reader.into_inner());
}

/// Follows one job's event log onto the socket as a chunked `application/x-ndjson` stream:
/// one JSON document per line, flushed per event batch, terminated by the zero-length chunk
/// once the job's terminal event has been written (or the job was evicted, or the client went
/// away, or [`MAX_EVENT_STREAM`] elapsed).
fn stream_events(stream: TcpStream, state: &AppState, id: u64, deprecated: bool) -> io::Result<()> {
    let mut writer = stream;
    let extra: &[(&str, &str)] = if deprecated { &[("Deprecation", "true")] } else { &[] };
    write_chunked_head(&mut writer, 200, "application/x-ndjson", extra)?;
    let cutoff = Instant::now() + MAX_EVENT_STREAM;
    let mut cursor = 0usize;
    while Instant::now() < cutoff {
        // Short waits keep the loop responsive to the cutoff; the condvar inside wakes the
        // wait immediately when an event lands, so streaming latency is not 500 ms.
        match state.jobs.wait_events(id, cursor, Duration::from_millis(500)) {
            None => break, // evicted mid-stream: terminate cleanly with what was sent
            Some((events, terminal)) => {
                let mut batch = String::new();
                for event in &events {
                    batch.push_str(&kronpriv_json::to_string(event));
                    batch.push('\n');
                }
                cursor += events.len();
                write_chunk(&mut writer, batch.as_bytes())?;
                if terminal {
                    break;
                }
            }
        }
    }
    finish_chunked(&mut writer)
}

/// Bounded label values for the per-request metrics: free-form request paths are collapsed
/// onto the route skeleton so one scanning client cannot mint unbounded label sets.
fn normalize_path(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/api/estimate" => "/api/estimate",
        "/api/sample" => "/api/sample",
        "/api/v1/estimate" => "/api/v1/estimate",
        "/api/v1/sample" => "/api/v1/sample",
        "/api/v1/datasets" => "/api/v1/datasets",
        _ => {
            if let Some(rest) = path.strip_prefix("/api/jobs/") {
                if rest.ends_with("/events") {
                    "/api/jobs/{id}/events"
                } else {
                    "/api/jobs/{id}"
                }
            } else if let Some(rest) = path.strip_prefix("/api/v1/jobs/") {
                if rest.ends_with("/events") {
                    "/api/v1/jobs/{id}/events"
                } else {
                    "/api/v1/jobs/{id}"
                }
            } else if let Some(rest) = path.strip_prefix("/api/v1/datasets/") {
                if rest.ends_with("/estimate") {
                    "/api/v1/datasets/{name}/estimate"
                } else if rest.ends_with("/budget") {
                    "/api/v1/datasets/{name}/budget"
                } else {
                    "/api/v1/datasets/{name}"
                }
            } else {
                "other"
            }
        }
    }
}

fn method_label(method: &str) -> &'static str {
    match method {
        "GET" => "GET",
        "POST" => "POST",
        "PUT" => "PUT",
        "DELETE" => "DELETE",
        "HEAD" => "HEAD",
        _ => "other",
    }
}

fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        201 => "201",
        202 => "202",
        400 => "400",
        403 => "403",
        404 => "404",
        405 => "405",
        408 => "408",
        409 => "409",
        413 => "413",
        429 => "429",
        500 => "500",
        _ => "other",
    }
}

/// Records one handled request into the global registry and, when enabled, emits the
/// structured access-log line. A request that never parsed logs with empty method/path and
/// the `"other"` path label.
fn observe_request(method: &str, path: &str, status: u16, started: Instant, access_log: bool) {
    let elapsed = started.elapsed();
    let registry = Registry::global();
    let route_label = normalize_path(path);
    registry
        .counter(
            "kronpriv_http_requests_total",
            &[
                ("method", method_label(method)),
                ("path", route_label),
                ("status", status_label(status)),
            ],
        )
        .inc();
    registry
        .histogram("kronpriv_http_request_ns", &[("path", route_label)])
        .record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    if access_log {
        let epoch_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as f64)
            .unwrap_or(0.0);
        let line = Json::Object(vec![
            ("log".to_string(), Json::String("access".to_string())),
            ("ts_ms".to_string(), Json::Number(epoch_ms)),
            ("method".to_string(), Json::String(method.to_string())),
            ("path".to_string(), Json::String(path.to_string())),
            ("status".to_string(), Json::Number(status as f64)),
            ("duration_us".to_string(), Json::Number(elapsed.as_micros() as f64)),
        ]);
        println!("{}", kronpriv_json::to_string(&line));
    }
}

/// One-call convenience used by unit tests and docs: serve on an ephemeral localhost port.
pub fn serve_ephemeral(workers: usize, job_workers: usize) -> io::Result<ServerHandle> {
    serve(ServerConfig { workers, job_workers, ..ServerConfig::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    #[test]
    fn serves_health_and_shuts_down_gracefully() {
        let handle = serve_ephemeral(2, 1).unwrap();
        let addr = handle.addr();
        let (status, body) = client::get(addr, "/healthz").unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"ok\""));
        handle.shutdown();
        // After shutdown the port no longer accepts requests.
        assert!(
            client::get(addr, "/healthz").is_err() || {
                // A race can let one last connect through while the OS recycles the socket; but a
                // fresh bind on the same port must now succeed, proving the listener is gone.
                TcpListener::bind(addr).is_ok()
            }
        );
    }

    #[test]
    fn slowloris_drip_feed_is_cut_off_with_408() {
        use std::io::{Read, Write};
        // Regression: with only the per-read io_timeout, a client dripping one byte per
        // interval (well under the timeout) held an HTTP worker indefinitely. The overall
        // request deadline must cut it off with a 408 long before the drip would finish.
        let handle = serve(ServerConfig {
            workers: 1,
            job_workers: 1,
            request_deadline: Duration::from_millis(250),
            io_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let started = std::time::Instant::now();
        // Drip a never-completed request line, one byte every 20 ms, for up to ~4 s.
        let dripper = std::thread::spawn(move || {
            for _ in 0..200 {
                if writer.write_all(b"G").is_err() {
                    break; // the server already cut the connection
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        let elapsed = started.elapsed();
        dripper.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 408 "), "{response}");
        assert!(
            elapsed < Duration::from_secs(5),
            "drip-fed request held the worker for {elapsed:?}"
        );
        handle.shutdown();
    }

    #[test]
    fn slow_but_complete_requests_inside_the_deadline_still_succeed() {
        use std::io::{Read, Write};
        let handle = serve(ServerConfig {
            workers: 1,
            job_workers: 1,
            request_deadline: Duration::from_secs(10),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Send a valid request in two instalments with a pause in between: slower than one
        // buffer refill, but well inside the overall deadline.
        stream.write_all(b"GET /health").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        stream.write_all(b"z HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 "), "{response}");
        handle.shutdown();
    }

    #[test]
    fn malformed_and_oversized_requests_get_4xx() {
        use std::io::{Read, Write};
        let handle = serve_ephemeral(2, 1).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400 "), "{response}");

        let (status, _) = client::post_json(
            handle.addr(),
            "/api/estimate",
            "{\"this is\": \"not an estimate request\"}",
        )
        .unwrap();
        assert_eq!(status, 400);
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text_over_the_socket() {
        let handle = serve_ephemeral(2, 1).unwrap();
        // A prior request guarantees the HTTP counters exist before the scrape renders.
        client::get(handle.addr(), "/healthz").unwrap();
        let (status, body) = client::get(handle.addr(), "/metrics").unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(
            body.contains(
                "kronpriv_http_requests_total{method=\"GET\",path=\"/healthz\",status=\"200\"}"
            ),
            "{body}"
        );
        assert!(body.contains("kronpriv_http_request_ns_bucket{"), "{body}");
        for line in body.lines() {
            assert!(
                kronpriv_obs::well_formed_exposition_line(line),
                "malformed exposition line: {line:?}"
            );
        }
        handle.shutdown();
    }

    #[test]
    fn events_stream_is_chunked_ndjson_from_queued_to_done() {
        let handle = serve_ephemeral(2, 1).unwrap();
        let body = r#"{"graph": {"skg": {"theta": {"a": 0.95, "b": 0.55, "c": 0.2}, "k": 7}},
                       "params": {"epsilon": 1.0, "delta": 0.01}, "seed": 3}"#;
        let (status, submitted) = client::post_json(handle.addr(), "/api/estimate", body).unwrap();
        assert_eq!(status, 202, "{submitted}");
        let id = Json::parse(&submitted).unwrap().get("job_id").unwrap().as_f64().unwrap() as u64;
        let (status, head, stream) =
            client::get_stream(handle.addr(), &format!("/api/jobs/{id}/events")).unwrap();
        assert_eq!(status, 200, "{head}");
        assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
        assert!(head.contains("Content-Type: application/x-ndjson"), "{head}");
        let kinds: Vec<String> = stream
            .lines()
            .map(|line| {
                let doc = Json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
                doc.get("event").unwrap().as_str().unwrap().to_string()
            })
            .collect();
        assert_eq!(kinds.first().map(String::as_str), Some("queued"), "{kinds:?}");
        assert_eq!(kinds.last().map(String::as_str), Some("done"), "{kinds:?}");
        assert!(kinds.iter().any(|k| k == "stage_started"), "{kinds:?}");
        // Unknown jobs and wrong methods answer as plain (non-chunked) errors.
        let (status, _) = client::get(handle.addr(), "/api/jobs/424242/events").unwrap();
        assert_eq!(status, 404);
        let (status, _) = client::post_json(handle.addr(), "/api/jobs/1/events", "{}").unwrap();
        assert_eq!(status, 405);
        handle.shutdown();
    }
}
