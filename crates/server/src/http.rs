//! A minimal HTTP/1.1 layer over [`std::net`].
//!
//! The build environment has no crates.io access, so there is no hyper/axum to lean on; this
//! module implements exactly the slice of RFC 9112 the service needs: one request per
//! connection (the server always answers `Connection: close`), `Content-Length`-framed bodies,
//! and hard limits on header and body sizes so a misbehaving client cannot exhaust memory.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Upper bound on the request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: u64 = 16 * 1024;
/// Upper bound on the number of request headers.
pub const MAX_HEADERS: usize = 64;
/// Upper bound on the request body, in bytes (edge lists can be large, but not unbounded).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method (`GET`, `POST`, ...), uppercase as received.
    pub method: String,
    /// The request target path, e.g. `/api/estimate` (any `?query` suffix is kept verbatim).
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased at parse time.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless a `Content-Length` was supplied).
    pub body: Vec<u8>,
}

impl Request {
    /// Looks up a header by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying socket failed (including read timeouts and early EOF).
    Io(io::Error),
    /// The bytes on the wire were not a well-formed HTTP/1.1 request.
    Malformed(&'static str),
    /// The head or the declared body exceeded the configured limits.
    TooLarge,
    /// The request did not arrive in full before the per-request wall-clock deadline. The
    /// per-`read(2)` socket timeout cannot catch a slowloris client dripping one byte per
    /// interval; this overall deadline does.
    Timeout,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "I/O error reading request: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge => write!(f, "request exceeds the size limits"),
            HttpError::Timeout => {
                write!(f, "request did not complete within the server's deadline")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one HTTP/1.1 request from the stream.
///
/// The head is read through a [`Read::take`] guard of [`MAX_HEAD_BYTES`]; a head that exhausts
/// the guard (the final line arrives without its newline) is reported as [`HttpError::TooLarge`].
/// The body is read only when a valid `Content-Length` is present, and is bounded by
/// [`MAX_BODY_BYTES`].
///
/// `deadline` is the wall-clock instant by which the **whole** request must have arrived. It is
/// checked between buffer refills, so a client dripping bytes slowly enough to keep the
/// per-read socket timeout happy still gets cut off with [`HttpError::Timeout`] (the 408 path);
/// the worst-case overshoot is one socket read timeout past the deadline.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    deadline: Instant,
) -> Result<Request, HttpError> {
    let mut head = reader.by_ref().take(MAX_HEAD_BYTES);

    let request_line = read_head_line(&mut head, deadline)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Malformed("empty request line"))?.to_string();
    let path = parts.next().ok_or(HttpError::Malformed("request line has no target"))?.to_string();
    let version = parts.next().ok_or(HttpError::Malformed("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::Malformed("request target must be origin-form"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_head_line(&mut head, deadline)?;
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Err(HttpError::TooLarge);
        }
        let (name, value) =
            line.split_once(':').ok_or(HttpError::Malformed("header line has no colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    let request = Request { method, path, headers, body: Vec::new() };
    if request.header("transfer-encoding").is_some() {
        // RFC 9112 §6.1: a server that does not implement a transfer coding must reject it
        // rather than guess at the framing; this server only speaks Content-Length.
        return Err(HttpError::Malformed("Transfer-Encoding is not supported"));
    }
    if let Some(raw) = request.header("content-length") {
        let len: usize =
            raw.parse().map_err(|_| HttpError::Malformed("unparseable Content-Length"))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::TooLarge);
        }
        // Size the buffer by the bytes that actually arrive, not the declared length, so an
        // attacker declaring a huge Content-Length and sending nothing holds no memory. The
        // chunk-at-a-time loop (instead of one `read_to_end`) is what lets the overall
        // deadline interrupt a drip-fed body.
        let mut remaining = len;
        while remaining > 0 {
            if Instant::now() >= deadline {
                return Err(HttpError::Timeout);
            }
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                return Err(HttpError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before the declared body length",
                )));
            }
            let take = chunk.len().min(remaining);
            body.extend_from_slice(&chunk[..take]);
            reader.consume(take);
            remaining -= take;
        }
    }
    Ok(Request { body, ..request })
}

/// Reads one CRLF- (or bare-LF-) terminated line of the request head, without its terminator.
/// An EOF before any byte of the line is reported as `UnexpectedEof`; running dry mid-line
/// means the head hit the `take` budget. The deadline is checked before every buffer refill so
/// a drip-fed head cannot hold the worker past it.
fn read_head_line(head: &mut impl BufRead, deadline: Instant) -> Result<String, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        if Instant::now() >= deadline {
            return Err(HttpError::Timeout);
        }
        let available = head.fill_buf()?;
        if available.is_empty() {
            if line.is_empty() {
                return Err(HttpError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                )));
            }
            // Bytes arrived but the newline never did: either the head budget ran out or the
            // peer closed mid-line. Both were reported as TooLarge before the deadline existed;
            // keep that mapping.
            return Err(HttpError::TooLarge);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                line.extend_from_slice(&available[..newline]);
                head.consume(newline + 1);
                while matches!(line.last(), Some(b'\r')) {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map_err(|_| HttpError::Malformed("request head is not valid UTF-8"));
            }
            None => {
                let n = available.len();
                line.extend_from_slice(available);
                head.consume(n);
            }
        }
    }
}

/// An HTTP response: a status code plus a body with its content type, and optional extra
/// headers (e.g. `Deprecation: true` on legacy alias paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code (200, 202, 400, 404, ...).
    pub status: u16,
    /// The response body.
    pub body: String,
    /// The `Content-Type` header value; every constructor sets a static one.
    pub content_type: &'static str,
    /// Extra headers appended after the fixed ones. Static name/value pairs only: extra
    /// headers carry protocol signals (deprecation, allow lists), never request data.
    pub headers: Vec<(&'static str, &'static str)>,
}

/// The Prometheus text exposition content type served by `/metrics`.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

impl Response {
    /// Builds an `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            headers: Vec::new(),
        }
    }

    /// Builds a Prometheus text-exposition response (used by `/metrics`).
    pub fn metrics_text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: METRICS_CONTENT_TYPE,
            headers: Vec::new(),
        }
    }

    /// Returns the response with an extra header appended.
    pub fn with_header(mut self, name: &'static str, value: &'static str) -> Self {
        self.headers.push((name, value));
        self
    }

    /// Serialises the response (status line, headers, body) onto a writer.
    pub fn write_to(&self, mut writer: impl Write) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(self.body.as_bytes())?;
        writer.flush()
    }
}

/// Writes the head of a chunked (`Transfer-Encoding: chunked`) streaming response, with any
/// `extra` headers after the fixed ones. The body then follows as [`write_chunk`] calls
/// terminated by one [`finish_chunked`]. Used by the job event stream, whose length is
/// unknown while the job runs.
pub fn write_chunked_head(
    mut writer: impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
        status,
        reason_phrase(status),
        content_type
    )?;
    for (name, value) in extra {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.flush()
}

/// Writes one chunk (hex size line, payload, CRLF) and flushes so the client sees progress
/// immediately. Empty payloads are skipped: a zero-length chunk would terminate the stream.
pub fn write_chunk(mut writer: impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.is_empty() {
        return Ok(());
    }
    write!(writer, "{:x}\r\n", payload.len())?;
    writer.write_all(payload)?;
    writer.write_all(b"\r\n")?;
    writer.flush()
}

/// Writes the terminating zero-length chunk of a chunked response.
pub fn finish_chunked(mut writer: impl Write) -> io::Result<()> {
    writer.write_all(b"0\r\n\r\n")?;
    writer.flush()
}

/// The reason phrase for the status codes the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader as StdBufReader;
    use std::net::{TcpListener, TcpStream};

    /// Feeds raw bytes through a real localhost socket pair so `read_request` sees a
    /// `BufReader<TcpStream>` exactly as in production. The deadline is generous: these tests
    /// exercise parsing, not the slow-client cutoff (see `server::tests` for that).
    fn parse_raw(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(raw).unwrap();
        drop(client); // close so an under-declared body hits EOF instead of blocking
        let mut reader = StdBufReader::new(server);
        read_request(&mut reader, Instant::now() + std::time::Duration::from_secs(30))
    }

    #[test]
    fn an_expired_deadline_reports_timeout_not_a_parse_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = StdBufReader::new(server);
        let res = read_request(&mut reader, Instant::now());
        assert!(matches!(res, Err(HttpError::Timeout)), "{res:?}");
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse_raw(b"POST /api/estimate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/api/estimate");
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse_raw(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert!(matches!(parse_raw(b"NONSENSE\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse_raw(b"GET /x SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed("unsupported HTTP version"))
        ));
        assert!(matches!(
            parse_raw(b"GET http://e.com/x HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed("request target must be origin-form"))
        ));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n"),
            Err(HttpError::Malformed("unparseable Content-Length"))
        ));
    }

    #[test]
    fn rejects_oversized_heads_and_bodies() {
        let long_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(32 * 1024));
        assert!(matches!(parse_raw(long_header.as_bytes()), Err(HttpError::TooLarge)));
        let huge_body =
            format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse_raw(huge_body.as_bytes()), Err(HttpError::TooLarge)));
    }

    #[test]
    fn under_declared_body_is_an_io_error() {
        let res = parse_raw(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        assert!(matches!(res, Err(HttpError::Io(_))));
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected_not_misread() {
        let res = parse_raw(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n",
        );
        assert!(matches!(res, Err(HttpError::Malformed("Transfer-Encoding is not supported"))));
    }

    #[test]
    fn response_wire_format_is_framed_and_terminated() {
        let mut out = Vec::new();
        Response::json(202, "{\"job_id\":1}").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"job_id\":1}"));
    }

    #[test]
    fn metrics_responses_carry_the_prometheus_content_type() {
        let mut out = Vec::new();
        Response::metrics_text(200, "x_total 1\n").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"));
        assert!(text.ends_with("x_total 1\n"));
    }

    #[test]
    fn chunked_stream_wire_format_is_hex_framed_and_zero_terminated() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, "application/x-ndjson", &[]).unwrap();
        write_chunk(&mut out, b"{\"event\":\"queued\"}\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // must not emit a premature terminator
        write_chunk(&mut out, b"{\"event\":\"done\"}\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.contains("13\r\n{\"event\":\"queued\"}\n\r\n"));
        assert!(text.contains("11\r\n{\"event\":\"done\"}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
