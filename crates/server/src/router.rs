//! Request routing: maps `(method, path)` onto handlers and untrusted bodies onto validated
//! pipeline calls. Every response body is JSON; every client error is a 4xx with an
//! [`ErrorBody`], never a worker panic.
//!
//! The route table is versioned and resource-scoped under `/api/v1/`; the pre-versioning
//! paths (`/api/estimate`, `/api/jobs/{id}`, `/api/sample`) are aliases onto their v1
//! equivalents via [`canonical_path`] — same handlers, byte-identical bodies, plus a
//! `Deprecation: true` response header.

use crate::api::BudgetDoc;
use crate::api::{
    BaselineResult, DatasetCreateRequest, DatasetDeleteResponse, DatasetDoc,
    DatasetEstimateRequest, DatasetListResponse, ErrorBody, EstimateRequest, EstimateResult,
    EstimatorKind, HealthResponse, JobResponse, JobSpec, SampleRequest, SampleResponse,
    SubmitResponse,
};
use crate::datasets::{valid_name, CreateError, DatasetStore, DebitError};
use crate::http::{Request, Response};
use crate::jobs::{JobEventSink, JobStatus, JobStore};
use crate::ledger::{BudgetLedger, BudgetRefusal};
use crate::store::{self, PendingJob, Persistence};
use kronpriv::pipeline::{
    try_kronfit_estimate_observed, try_kronmom_estimate_on, try_private_estimate_observed,
    validate_estimator_inputs,
};
use kronpriv_estimate::{KronFitOptions, KronMomOptions};
use kronpriv_graph::io::{parse_edge_list_reader, to_edge_list_string};
use kronpriv_graph::Graph;
use kronpriv_json::{from_str, to_string, FromJson, Json, ToJson};
use kronpriv_obs::{ProgressEvent, ProgressSink, Registry};
use kronpriv_par::Executor;
use kronpriv_skg::sample::{sample_fast, SamplerOptions};
use kronpriv_skg::Initiator2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Shared state the handlers operate on.
pub struct AppState {
    /// The estimation job store (owns the estimation worker pool).
    pub jobs: JobStore,
    /// The named datasets with their privacy-budget ledgers.
    pub datasets: DatasetStore,
    /// Largest Kronecker order `/api/sample` and sampled-SKG inputs accept (`2^k` nodes each).
    pub max_order: u32,
    /// The compute executor, built **once** at startup and shared by every estimation job:
    /// each job borrows this pool for its parallel stages instead of spawning threads per
    /// call. Enforced over request options because the kernels are pool-size-deterministic,
    /// so only resources — never results — are at stake.
    pub executor: Arc<Executor>,
    /// When the state was built; `/healthz` reports the elapsed whole seconds as uptime.
    pub started: Instant,
    /// The durable store, or `None` when running in-memory (budget enforcement still applies;
    /// it just does not survive a restart).
    pub persist: Option<Arc<Persistence>>,
    /// Display form of the data dir, reported by `/healthz` (`None` when in-memory).
    pub data_dir: Option<String>,
}

impl AppState {
    /// Creates in-memory state with `job_workers` estimation threads and one shared compute
    /// pool of `compute_threads` workers (`0` = one per hardware thread) that every job's
    /// kernels borrow.
    pub fn new(job_workers: usize, max_order: u32, compute_threads: usize) -> Self {
        AppState {
            jobs: JobStore::new(job_workers),
            datasets: DatasetStore::new(),
            max_order,
            executor: Arc::new(Executor::new(compute_threads)),
            started: Instant::now(),
            persist: None,
            data_dir: None,
        }
    }

    /// Creates durable state backed by `data_dir`: opens (or initialises) the record log,
    /// restores datasets and finished jobs, and installs the job-completion write-behind.
    /// Returns the jobs that were still pending at shutdown — pass them to [`replay_pending`]
    /// once the state is in place, so they re-run (byte-identically, by seed determinism).
    pub fn with_persistence(
        job_workers: usize,
        max_order: u32,
        compute_threads: usize,
        data_dir: &Path,
        snapshot_every: u64,
    ) -> io::Result<(Self, Vec<PendingJob>)> {
        let (persist, replay) = Persistence::open(data_dir, snapshot_every)?;
        let mut state = AppState::new(job_workers, max_order, compute_threads);
        state.data_dir = Some(data_dir.display().to_string());
        for image in replay.datasets {
            state.datasets.restore(image);
        }
        for job in replay.finished {
            state.jobs.restore_finished(job.id, job.outcome, job.warnings);
        }
        state.jobs.seed_next_id(replay.next_job_id);
        let persist = Arc::new(persist);
        let hook_persist = Arc::clone(&persist);
        let hook_datasets = state.datasets.clone();
        let hook_imager = state.jobs.imager();
        state.jobs.set_completion_hook(Arc::new(move |id, outcome| {
            let mut fields = vec![("job_id", Json::Number(id as f64))];
            match outcome {
                Ok(result) => fields.push(("result", result.clone())),
                Err(message) => fields.push(("error", Json::String(message.clone()))),
            }
            hook_persist.record("job_finished", fields, || {
                store::state_image(&hook_datasets, &hook_imager)
            });
        }));
        state.persist = Some(persist);
        Ok((state, replay.pending))
    }

    /// Appends one record to the durable store, if there is one. `fields` is only evaluated
    /// in durable mode. Must not be called while holding the dataset or job-table locks (the
    /// snapshot hook takes both).
    fn persist_record(&self, kind: &str, fields: impl FnOnce() -> Vec<(&'static str, Json)>) {
        if let Some(persist) = &self.persist {
            let imager = self.jobs.imager();
            persist.record(kind, fields(), || store::state_image(&self.datasets, &imager));
        }
    }
}

/// Maps a request path onto its canonical v1 route. Returns the canonical path and whether
/// the original spelling is a deprecated alias (answered with `Deprecation: true`). This is
/// the **single** route table: legacy paths never get their own handlers.
pub(crate) fn canonical_path(path: &str) -> (String, bool) {
    if path == "/api/estimate" || path == "/api/sample" {
        return (format!("/api/v1{}", path.trim_start_matches("/api")), true);
    }
    if let Some(rest) = path.strip_prefix("/api/jobs/") {
        return (format!("/api/v1/jobs/{rest}"), true);
    }
    (path.to_string(), false)
}

/// Dispatches one request to its handler, answering deprecated alias spellings with the byte-
/// identical v1 body plus a `Deprecation: true` header.
pub fn route(state: &AppState, request: &Request) -> Response {
    let path = request.path.split('?').next().unwrap_or("");
    let (canonical, deprecated) = canonical_path(path);
    let response = dispatch(state, request, &canonical);
    if deprecated {
        // lint:allow(privacy-taint, reason = "responses can only carry baseline fits of graphs the client itself supplied: dataset-backed jobs are forced to the private estimator at admission (SpecError::NonPrivate in prepare_job)")
        response.with_header("Deprecation", "true")
    } else {
        response
    }
}

fn dispatch(state: &AppState, request: &Request, path: &str) -> Response {
    match path {
        "/healthz" => match request.method.as_str() {
            "GET" => health(state),
            _ => method_not_allowed("GET"),
        },
        "/metrics" => match request.method.as_str() {
            "GET" => metrics(),
            _ => method_not_allowed("GET"),
        },
        "/api/v1/estimate" => match request.method.as_str() {
            "POST" => estimate(state, request),
            _ => method_not_allowed("POST"),
        },
        "/api/v1/sample" => match request.method.as_str() {
            "POST" => sample(state, request),
            _ => method_not_allowed("POST"),
        },
        "/api/v1/datasets" => match request.method.as_str() {
            "GET" => list_datasets(state),
            "POST" => create_dataset(state, request),
            _ => method_not_allowed("GET, POST"),
        },
        _ => {
            if let Some(rest) = path.strip_prefix("/api/v1/jobs/") {
                if let Some(raw_id) = rest.strip_suffix("/events") {
                    // The chunked event stream is written by the connection layer, which
                    // intercepts this path before routing (it needs the raw socket). The
                    // router still owns the validation, and answers for transports that
                    // cannot stream.
                    return match events_target(state, request.method.as_str(), raw_id) {
                        Ok(_) => error(
                            400,
                            "bad_request",
                            "the event stream requires a direct connection",
                        ),
                        Err(response) => response,
                    };
                }
                match request.method.as_str() {
                    "GET" => job(state, rest),
                    _ => method_not_allowed("GET"),
                }
            } else if let Some(rest) = path.strip_prefix("/api/v1/datasets/") {
                dataset_route(state, request, rest)
            } else {
                error(404, "not_found", format!("no route for {path}"))
            }
        }
    }
}

/// Routes `/api/v1/datasets/{name}` and its `/estimate` / `/budget` sub-resources.
fn dataset_route(state: &AppState, request: &Request, rest: &str) -> Response {
    let (name, action) = match rest.split_once('/') {
        None => (rest, None),
        Some((name, action)) => (name, Some(action)),
    };
    if !valid_name(name) {
        return error(400, "bad_request", format!("invalid dataset name {name:?}"));
    }
    match (action, request.method.as_str()) {
        (None, "GET") => match state.datasets.meta(name) {
            Some(meta) => ok_json(200, &DatasetDoc::of(&meta)),
            None => no_such_dataset(name),
        },
        (None, "DELETE") => delete_dataset(state, name),
        (None, _) => method_not_allowed("GET, DELETE"),
        (Some("estimate"), "POST") => dataset_estimate(state, request, name),
        (Some("estimate"), _) => method_not_allowed("POST"),
        (Some("budget"), "GET") => match state.datasets.meta(name) {
            Some(meta) => ok_json(200, &BudgetDoc::of(name, &meta.ledger)),
            None => no_such_dataset(name),
        },
        (Some("budget"), _) => method_not_allowed("GET"),
        (Some(other), _) => error(404, "not_found", format!("no dataset sub-resource {other:?}")),
    }
}

/// Validates a `GET /api/v1/jobs/{id}/events` target: the method, the id syntax, and that the
/// job exists right now. `Ok(id)` means the caller may stream; `Err` is the response to send
/// instead. Shared by [`route`] and the connection layer's streaming intercept.
pub(crate) fn events_target(state: &AppState, method: &str, raw_id: &str) -> Result<u64, Response> {
    if method != "GET" {
        return Err(method_not_allowed("GET"));
    }
    let id: u64 = raw_id.parse().map_err(|_| {
        error(400, "bad_request", format!("job id must be an integer, got {raw_id:?}"))
    })?;
    if state.jobs.get(id).is_none() {
        return Err(error(404, "not_found", format!("no such job: {id}")));
    }
    Ok(id)
}

/// Builds a JSON error response with the unified [`ErrorBody`] document: a human-readable
/// `error` plus a stable machine `code` (documented in `API.md`).
pub fn error(status: u16, code: impl Into<String>, message: impl Into<String>) -> Response {
    Response::json(
        status,
        to_string(&ErrorBody {
            error: message.into(),
            code: code.into(),
            detail: None,
            remaining_epsilon: None,
            remaining_delta: None,
        }),
    )
}

/// The `429` budget refusal: `budget_exhausted` plus the remaining budget, so a client can
/// size a smaller draw without another round-trip.
fn budget_refused(name: &str, refusal: &BudgetRefusal) -> Response {
    Response::json(
        429,
        to_string(&ErrorBody {
            error: format!(
                "privacy budget exhausted for dataset {name:?}: the requested draw exceeds the \
                 remaining budget"
            ),
            code: "budget_exhausted".to_string(),
            detail: Some(format!(
                "remaining epsilon {:.6}, remaining delta {:.6}",
                refusal.remaining_epsilon, refusal.remaining_delta
            )),
            remaining_epsilon: Some(refusal.remaining_epsilon),
            remaining_delta: Some(refusal.remaining_delta),
        }),
    )
}

fn no_such_dataset(name: &str) -> Response {
    error(404, "no_such_dataset", format!("no such dataset: {name:?}"))
}

fn method_not_allowed(allowed: &str) -> Response {
    error(405, "method_not_allowed", format!("method not allowed; use {allowed}"))
}

fn ok_json<T: ToJson>(status: u16, body: &T) -> Response {
    Response::json(status, to_string(body))
}

fn health(state: &AppState) -> Response {
    let counts = state.jobs.counts();
    ok_json(
        200,
        &HealthResponse {
            status: "ok".to_string(),
            service: "kronpriv-server".to_string(),
            jobs_submitted: state.jobs.submitted(),
            uptime_seconds: state.started.elapsed().as_secs(),
            compute_threads: state.executor.threads() as u64,
            jobs_queued: counts.queued,
            jobs_running: counts.running,
            jobs_done: counts.done,
            jobs_failed: counts.failed,
            datasets: state.datasets.count(),
            data_dir: state.data_dir.clone(),
        },
    )
}

/// `GET /metrics`: the process-global registry in Prometheus text exposition format. Label
/// sets are bounded (fixed stage/mode names, normalized HTTP paths), so the scrape size is
/// O(instrument count), not O(traffic).
fn metrics() -> Response {
    Response::metrics_text(200, Registry::global().render())
}

/// The warning recorded when a request carries an explicit `compute_threads` that differs
/// from the server's startup-built shared pool. The request field is accepted (old clients
/// keep working) but has no effect on resources; it never affects results either, because
/// every parallel kernel is pool-size-deterministic.
fn compute_threads_warning(field: &str, requested: usize, exec: &Executor) -> Option<String> {
    (requested != 0 && requested != exec.threads()).then(|| {
        format!(
            "{field}={requested} is ignored: jobs run on the server's shared compute pool of \
             {} thread(s); results are byte-identical for any pool size",
            exec.threads()
        )
    })
}

/// Parses a request body as UTF-8 JSON into `T`, or produces the 400 response.
fn parse_body<T: FromJson>(request: &Request) -> Result<T, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| error(400, "bad_request", "request body is not valid UTF-8"))?;
    from_str::<T>(text).map_err(|e| error(400, "bad_request", format!("invalid request body: {e}")))
}

/// Upper bound on the *total* Metropolis proposals one KronFit request may run
/// (`gradient_steps × chains × per-step swaps`). Per-knob caps alone compose multiplicatively
/// into weeks of CPU; bounding the product is what actually protects the estimation workers.
/// 10⁹ proposals is minutes of work — ~150× the default configuration — so real fits pass.
const MAX_KRONFIT_TOTAL_SWAPS: u128 = 1_000_000_000;

/// Basic sanity bounds on wire-supplied KronFit options: reject parameter values that would
/// make the ascent numerically meaningless (non-positive clamps) or let one request hog an
/// estimation worker with an absurd iteration budget.
fn validate_kronfit_options(options: &KronFitOptions) -> Result<(), String> {
    if options.chains == 0 || options.chains > 64 {
        return Err(format!("kronfit.chains must be in 1..=64, got {}", options.chains));
    }
    if options.samples_per_step == 0 || options.samples_per_step > 64 {
        return Err(format!(
            "kronfit.samples_per_step must be in 1..=64, got {}",
            options.samples_per_step
        ));
    }
    // Swap-free configurations are still bounded by their O(edges) gradient evaluations.
    let evaluations =
        options.gradient_steps as u128 * options.chains as u128 * options.samples_per_step as u128;
    if evaluations > 1_000_000 {
        return Err(format!(
            "kronfit gradient budget too large: gradient_steps x chains x samples_per_step \
             = {evaluations} evaluations exceeds the limit of 1000000"
        ));
    }
    let per_step_swaps = options.warmup_swaps as u128
        + (options.samples_per_step as u128 - 1) * options.swaps_between_samples as u128;
    let total_swaps = options.gradient_steps as u128 * options.chains as u128 * per_step_swaps;
    if total_swaps > MAX_KRONFIT_TOTAL_SWAPS {
        return Err(format!(
            "kronfit iteration budget too large: gradient_steps x chains x per-step swaps \
             = {total_swaps} proposals exceeds the limit of {MAX_KRONFIT_TOTAL_SWAPS}"
        ));
    }
    if !(options.min_parameter.is_finite() && options.min_parameter > 0.0) {
        return Err(format!(
            "kronfit.min_parameter must be a positive number, got {}",
            options.min_parameter
        ));
    }
    if !(options.learning_rate.is_finite() && options.learning_rate > 0.0) {
        return Err(format!(
            "kronfit.learning_rate must be a positive number, got {}",
            options.learning_rate
        ));
    }
    for (name, v) in [("a", options.initial.a), ("b", options.initial.b), ("c", options.initial.c)]
    {
        if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
            return Err(format!("kronfit.initial.{name}={v} must lie in [0,1]"));
        }
    }
    Ok(())
}

/// Sanity bounds on wire-supplied KronMom options (reached both via the `"kronmom"` baseline
/// and as the fitting stage of the private pipeline): the multistart grid is **cubic** in
/// `grid_points_per_axis`, so an absurd value would pin an estimation worker or exhaust memory
/// before a single objective evaluation finishes.
fn validate_kronmom_options(options: &KronMomOptions) -> Result<(), String> {
    if options.grid_points_per_axis == 0 || options.grid_points_per_axis > 64 {
        return Err(format!(
            "kronmom.grid_points_per_axis must be in 1..=64, got {}",
            options.grid_points_per_axis
        ));
    }
    if options.refine_top > 64 {
        return Err(format!("kronmom.refine_top must be at most 64, got {}", options.refine_top));
    }
    if options.max_evaluations > 1_000_000 {
        return Err(format!(
            "kronmom.max_evaluations must be at most 1000000, got {}",
            options.max_evaluations
        ));
    }
    Ok(())
}

/// Realizes the job's input graph: parses the uploaded edge list, or samples the SKG spec from
/// the job RNG. Exactly one of the two is present (validated before submission).
fn materialize_graph<R: Rng + ?Sized>(
    edge_list: &Option<String>,
    skg: Option<(Initiator2, u32)>,
    rng: &mut R,
) -> Result<Graph, String> {
    match (edge_list, skg) {
        (Some(text), None) => {
            parse_edge_list_reader(text.as_bytes()).map_err(|e| format!("edge list rejected: {e}"))
        }
        (None, Some((theta, k))) => Ok(sample_fast(&theta, k, &SamplerOptions::default(), rng)),
        _ => unreachable!("graph spec validated before submission"),
    }
}

/// Why a job spec failed validation, mapped onto the response (or a replay failure message).
enum SpecError {
    /// A malformed or out-of-bounds field: `400 bad_request`.
    Bad(String),
    /// The named dataset does not exist: `404 no_such_dataset`.
    NoSuchDataset(String),
    /// A non-private estimator was requested on a dataset: `403 estimator_not_allowed` —
    /// baselines fit the sensitive input graph directly, which would void the ledger's
    /// cumulative `(ε, δ)` guarantee.
    NonPrivate(String),
}

impl SpecError {
    fn message(&self) -> String {
        match self {
            SpecError::Bad(message) => message.clone(),
            SpecError::NoSuchDataset(name) => format!("no such dataset: {name:?}"),
            SpecError::NonPrivate(kind) => format!(
                "estimator {kind:?} is not allowed on datasets: baselines fit the sensitive \
                 input graph directly and are not differentially private; use the private \
                 estimator, or an inline graph for baseline comparisons"
            ),
        }
    }

    fn response(&self) -> Response {
        match self {
            SpecError::Bad(message) => error(400, "bad_request", message.clone()),
            SpecError::NoSuchDataset(name) => no_such_dataset(name),
            SpecError::NonPrivate(_) => error(403, "estimator_not_allowed", self.message()),
        }
    }
}

/// The job body handed to [`JobStore::run`]: runs on an estimation worker, emitting progress
/// to the job's event sink.
type JobWork = Box<dyn FnOnce(&JobEventSink) -> Result<Json, String> + Send + 'static>;

/// A fully validated job, ready to debit (dataset jobs) and launch.
struct PreparedJob {
    /// Request fields the server accepted but overrode.
    warnings: Vec<String>,
    /// The `(ε, δ)` the job draws — present exactly for the private estimator; what dataset
    /// jobs debit from their ledger.
    draw: Option<(f64, f64)>,
    /// The job body, to hand to [`JobStore::run`].
    work: JobWork,
}

/// Validates a normalized [`JobSpec`] into a runnable job, without spending anything: no
/// budget is debited and no record is persisted here. Shared verbatim by live submissions
/// (both the inline and the dataset-scoped estimate routes) and boot replay — which is what
/// guarantees a replayed job re-runs under exactly the rules it was admitted under.
fn prepare_job(state: &AppState, spec: &JobSpec) -> Result<PreparedJob, SpecError> {
    // Validate everything that does not require touching the (possibly large) graph, so bad
    // requests are rejected on the connection thread with a 400 instead of failing as jobs.
    let kind = EstimatorKind::parse(spec.estimator.as_deref()).map_err(SpecError::Bad)?;
    let (edge_list, skg) = match (&spec.dataset, &spec.edge_list, &spec.skg) {
        (Some(name), None, None) => {
            if kind != EstimatorKind::Private {
                return Err(SpecError::NonPrivate(kind.as_str().to_string()));
            }
            match state.datasets.edge_text(name) {
                Some(text) => (Some(text), None),
                None => return Err(SpecError::NoSuchDataset(name.clone())),
            }
        }
        (None, Some(text), None) => (Some(text.clone()), None),
        (None, None, Some(skg)) => {
            if skg.k == 0 || skg.k > state.max_order {
                return Err(SpecError::Bad(format!(
                    "graph.skg.k must be in 1..={}, got {}",
                    state.max_order, skg.k
                )));
            }
            let theta = skg.theta.validate().map_err(SpecError::Bad)?;
            (None, Some((theta, skg.k)))
        }
        (None, _, _) => {
            return Err(SpecError::Bad(
                "graph must specify exactly one of edge_list or skg".to_string(),
            ));
        }
        _ => {
            return Err(SpecError::Bad(
                "specify exactly one input graph: the dataset in the path, an inline edge_list, \
                 or an skg"
                    .to_string(),
            ));
        }
    };

    let seed = spec.seed;
    // The server owns its compute resources: every estimator runs on the startup-built shared
    // executor, ignoring whatever thread count the request carried. Safe because all parallel
    // stages are deterministic for any pool size, so this cannot change the result document —
    // but the request is told so via the `warnings` field rather than silently.
    let exec = Arc::clone(&state.executor);
    match kind {
        EstimatorKind::Private => {
            let params = match spec.params {
                Some(budget) => budget.validate().map_err(|e| SpecError::Bad(e.to_string()))?,
                None => {
                    return Err(SpecError::Bad(
                        "params is required for the private estimator".to_string(),
                    ))
                }
            };
            let options = spec.options.unwrap_or_default();
            validate_estimator_inputs(params, &options)
                .map_err(|e| SpecError::Bad(e.to_string()))?;
            validate_kronmom_options(&options.kronmom).map_err(SpecError::Bad)?;
            let warnings: Vec<String> = [
                compute_threads_warning("options.compute_threads", options.compute_threads, &exec),
                compute_threads_warning(
                    "options.kronmom.compute_threads",
                    options.kronmom.compute_threads,
                    &exec,
                ),
            ]
            .into_iter()
            .flatten()
            .collect();
            let include_degrees = spec.include_degree_sequence.unwrap_or(false);
            Ok(PreparedJob {
                warnings,
                draw: Some((params.epsilon, params.delta)),
                work: Box::new(move |sink| {
                    // One seeded RNG drives both the optional SKG realization and the privacy
                    // noise, so the whole job is a pure function of the request document.
                    let mut rng = StdRng::seed_from_u64(seed);
                    let graph = materialize_graph(&edge_list, skg, &mut rng)?;
                    let estimate = try_private_estimate_observed(
                        &graph, params, &options, &mut rng, &exec, sink,
                    )
                    .map_err(|e| format!("estimation rejected: {e}"))?;
                    Ok(EstimateResult::from_estimate(&estimate, seed, include_degrees).to_json())
                }),
            })
        }
        EstimatorKind::KronMom => {
            let options = spec.options.unwrap_or_default().kronmom;
            validate_kronmom_options(&options).map_err(SpecError::Bad)?;
            let warnings: Vec<String> = compute_threads_warning(
                "options.kronmom.compute_threads",
                options.compute_threads,
                &exec,
            )
            .into_iter()
            .collect();
            Ok(PreparedJob {
                warnings,
                draw: None,
                work: Box::new(move |sink| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let graph = materialize_graph(&edge_list, skg, &mut rng)?;
                    sink.emit(&ProgressEvent::StageStarted { stage: "fit" });
                    let fit = try_kronmom_estimate_on(&graph, &options, &exec)
                        .map_err(|e| format!("estimation rejected: {e}"))?;
                    sink.emit(&ProgressEvent::StageFinished { stage: "fit" });
                    Ok(BaselineResult::from_fit(EstimatorKind::KronMom, &fit, seed).to_json())
                }),
            })
        }
        EstimatorKind::KronFit => {
            let options = spec.kronfit.unwrap_or_default();
            validate_kronfit_options(&options).map_err(SpecError::Bad)?;
            let warnings: Vec<String> =
                compute_threads_warning("kronfit.compute_threads", options.compute_threads, &exec)
                    .into_iter()
                    .collect();
            Ok(PreparedJob {
                warnings,
                draw: None,
                work: Box::new(move |sink| {
                    // The same seeded RNG realizes the optional SKG input and then seeds the
                    // multi-chain permutation sampling, so the fit is a pure function of the
                    // request document (and independent of --compute-threads).
                    let mut rng = StdRng::seed_from_u64(seed);
                    let graph = materialize_graph(&edge_list, skg, &mut rng)?;
                    let fit =
                        try_kronfit_estimate_observed(&graph, &options, &mut rng, &exec, sink)
                            .map_err(|e| format!("estimation rejected: {e}"))?;
                    Ok(BaselineResult::from_fit(EstimatorKind::KronFit, &fit, seed).to_json())
                }),
            })
        }
    }
}

/// Validates, debits (dataset jobs only), persists, and launches one normalized job spec.
/// The ordering is the accountant's contract: validation first (a rejected request spends
/// nothing), then the atomic ledger debit, then the durable `job_submitted` record, then
/// execution.
fn submit_spec(state: &AppState, spec: JobSpec) -> Response {
    let prepared = match prepare_job(state, &spec) {
        Ok(prepared) => prepared,
        Err(e) => return e.response(),
    };
    if let Some(name) = &spec.dataset {
        let (epsilon, delta) = prepared.draw.expect("dataset jobs are private and carry a draw");
        match state.datasets.try_debit(name, epsilon, delta) {
            Ok(()) => state.persist_record("debit", || {
                vec![
                    ("name", Json::String(name.clone())),
                    ("epsilon", Json::Number(epsilon)), // lint:allow(privacy-taint, reason = "epsilon and delta are the request's declared budget draw, not data-derived values; they reach here through PreparedJob, which the taint analysis over-approximates as sensitive because its work closure computes the release")
                    ("delta", Json::Number(delta)),
                ]
            }),
            // The dataset was deleted between validation and the debit.
            Err(DebitError::NoSuchDataset) => return no_such_dataset(name),
            Err(DebitError::Refused(refusal)) => return budget_refused(name, &refusal),
        }
    }
    let spec_json = spec.to_json();
    let warnings = prepared.warnings;
    let job_id = state.jobs.create(None, warnings.clone(), Some(spec_json.clone()));
    state.persist_record("job_submitted", || {
        vec![
            ("job_id", Json::Number(job_id as f64)), // lint:allow(privacy-taint, reason = "job_id and warnings are admission metadata (a counter and config advisories); they pick up taint only because they travel next to PreparedJob, whose work closure computes the release")
            ("warnings", Json::Array(warnings.iter().map(|w| Json::String(w.clone())).collect())),
            ("spec", spec_json),
        ]
    });
    state.jobs.run(job_id, prepared.work);
    ok_json(
        202,
        &SubmitResponse {
            job_id,
            status: JobStatus::Queued,
            warnings: (!warnings.is_empty()).then_some(warnings),
        },
    )
}

fn estimate(state: &AppState, request: &Request) -> Response {
    let req: EstimateRequest = match parse_body(request) {
        Ok(req) => req,
        Err(resp) => return resp,
    };
    submit_spec(state, JobSpec::from_estimate_request(req))
}

fn dataset_estimate(state: &AppState, request: &Request, name: &str) -> Response {
    let req: DatasetEstimateRequest = match parse_body(request) {
        Ok(req) => req,
        Err(resp) => return resp,
    };
    submit_spec(state, JobSpec::from_dataset_request(name, req))
}

fn create_dataset(state: &AppState, request: &Request) -> Response {
    let req: DatasetCreateRequest = match parse_body(request) {
        Ok(req) => req,
        Err(resp) => return resp,
    };
    if !valid_name(&req.name) {
        return error(
            400,
            "bad_request",
            format!(
                "invalid dataset name {:?}: use 1-64 characters of [A-Za-z0-9._-], starting \
                 with a letter or digit",
                req.name
            ),
        );
    }
    let budget = match req.budget.validate() {
        Ok(params) => params,
        Err(e) => return error(400, "bad_request", format!("budget rejected: {e}")),
    };
    // Parse the edge list up front: a dataset that can never be estimated should be rejected
    // at upload time, and the node/edge counts are part of the created resource.
    let graph = match parse_edge_list_reader(req.edge_list.as_bytes()) {
        Ok(graph) => graph,
        Err(e) => return error(400, "bad_request", format!("edge list rejected: {e}")),
    };
    let ledger = BudgetLedger::new(budget.epsilon, budget.delta);
    let (nodes, edges) = (graph.node_count() as u64, graph.edge_count() as u64);
    match state.datasets.create(&req.name, req.edge_list.clone(), nodes, edges, ledger) {
        Ok(()) => {
            state.persist_record("dataset_put", || {
                vec![
                    ("name", Json::String(req.name.clone())),
                    ("edge_list", Json::String(req.edge_list.clone())),
                    ("nodes", Json::Number(nodes as f64)),
                    ("edges", Json::Number(edges as f64)),
                    ("epsilon_limit", Json::Number(ledger.epsilon_limit)),
                    ("delta_limit", Json::Number(ledger.delta_limit)),
                ]
            });
            let meta = state.datasets.meta(&req.name).expect("dataset just created");
            ok_json(201, &DatasetDoc::of(&meta))
        }
        Err(CreateError::Exists) => error(
            409,
            "dataset_exists",
            format!(
                "dataset {:?} already exists; its ledger would be reset by replacement — \
                 delete it first or pick a new name",
                req.name
            ),
        ),
    }
}

fn list_datasets(state: &AppState) -> Response {
    let datasets: Vec<DatasetDoc> = state.datasets.list().iter().map(DatasetDoc::of).collect();
    let count = datasets.len() as u64;
    ok_json(200, &DatasetListResponse { datasets, count })
}

fn delete_dataset(state: &AppState, name: &str) -> Response {
    if !state.datasets.remove(name) {
        return no_such_dataset(name);
    }
    state.persist_record("dataset_delete", || vec![("name", Json::String(name.to_string()))]);
    ok_json(200, &DatasetDeleteResponse { deleted: name.to_string() })
}

/// Re-launches the jobs that were pending when the previous process stopped. Each persisted
/// spec passes through the same [`prepare_job`] validation as a live request, and its job id
/// is re-used so clients' poll URLs stay valid; seed determinism makes the re-run produce the
/// byte-identical result document. The budget is **not** debited again — the original debit
/// record replayed with the log. A spec that no longer validates (e.g. its dataset was
/// deleted later in the log) is restored as a `Failed` record instead of crashing the boot.
pub fn replay_pending(state: &AppState, pending: Vec<PendingJob>) {
    for job in pending {
        let spec = match JobSpec::from_json(&job.spec) {
            Ok(spec) => spec,
            Err(e) => {
                state.jobs.restore_finished(
                    job.id,
                    Err(format!("replay rejected: invalid persisted spec: {e}")),
                    job.warnings,
                );
                continue;
            }
        };
        match prepare_job(state, &spec) {
            Ok(prepared) => {
                // Persisted warnings — not freshly computed ones — keep the poll document
                // byte-identical across the restart even if the server config changed.
                state.jobs.create(Some(job.id), job.warnings, Some(job.spec));
                // lint:allow(debit-before-enqueue, reason = "boot replay: the original debit record was already replayed from the durable log before any pending job re-runs, so debiting again here would double-charge the dataset")
                state.jobs.run(job.id, prepared.work);
            }
            Err(e) => state.jobs.restore_finished(
                job.id,
                Err(format!("replay rejected: {}", e.message())),
                job.warnings,
            ),
        }
    }
}

fn job(state: &AppState, raw_id: &str) -> Response {
    let id: u64 = match raw_id.parse() {
        Ok(id) => id,
        Err(_) => {
            return error(400, "bad_request", format!("job id must be an integer, got {raw_id:?}"))
        }
    };
    match state.jobs.get(id) {
        Some(snapshot) => ok_json(
            200,
            &JobResponse {
                job_id: snapshot.id,
                status: snapshot.status,
                result: snapshot.result,
                error: snapshot.error,
                warnings: (!snapshot.warnings.is_empty()).then_some(snapshot.warnings),
            },
        ),
        None => error(404, "not_found", format!("no such job: {id}")),
    }
}

fn sample(state: &AppState, request: &Request) -> Response {
    let req: SampleRequest = match parse_body(request) {
        Ok(req) => req,
        Err(resp) => return resp,
    };
    let theta = match req.theta.validate() {
        Ok(theta) => theta,
        Err(e) => return error(400, "bad_request", e),
    };
    if req.k == 0 || req.k > state.max_order {
        return error(
            400,
            "bad_request",
            format!("k must be in 1..={}, got {}", state.max_order, req.k),
        );
    }
    let mut rng = StdRng::seed_from_u64(req.seed);
    let graph = sample_fast(&theta, req.k, &SamplerOptions::default(), &mut rng);
    ok_json(
        200,
        &SampleResponse {
            nodes: graph.node_count() as u64,
            edges: graph.edge_count() as u64,
            edge_list: to_edge_list_string(&graph),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_json::Json;
    use std::time::{Duration, Instant};

    fn state() -> AppState {
        AppState::new(2, 16, 0)
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn body_json(response: &Response) -> Json {
        Json::parse(&response.body).expect("response body must be JSON")
    }

    fn wait_for_job(state: &AppState, id: u64) -> crate::jobs::JobSnapshot {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let snap = state.jobs.get(id).expect("job vanished");
            if matches!(snap.status, JobStatus::Done | JobStatus::Failed) {
                return snap;
            }
            assert!(Instant::now() < deadline, "job {id} never finished");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    const SKG_BODY: &str = r#"{
        "graph": {"skg": {"theta": {"a": 0.95, "b": 0.55, "c": 0.2}, "k": 8}},
        "params": {"epsilon": 1.0, "delta": 0.01},
        "seed": 11
    }"#;

    #[test]
    fn health_reports_ok_and_counts_jobs() {
        let state = state();
        let response = route(&state, &request("GET", "/healthz", ""));
        assert_eq!(response.status, 200);
        let body = body_json(&response);
        assert_eq!(body.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(body.get("jobs_submitted").unwrap().as_f64(), Some(0.0));
        // The status document: uptime, pool size, and job lifecycle counts.
        assert!(body.get("uptime_seconds").unwrap().as_f64().unwrap() >= 0.0);
        assert!(body.get("compute_threads").unwrap().as_f64().unwrap() >= 1.0);
        for counter in ["jobs_queued", "jobs_running", "jobs_done", "jobs_failed"] {
            assert_eq!(body.get(counter).unwrap().as_f64(), Some(0.0), "{counter}");
        }
    }

    #[test]
    fn metrics_serves_the_prometheus_exposition() {
        let state = state();
        // Run one job so job counters exist in the registry.
        let response = route(&state, &request("POST", "/api/estimate", SKG_BODY));
        assert_eq!(response.status, 202, "{}", response.body);
        let id = body_json(&response).get("job_id").unwrap().as_f64().unwrap() as u64;
        wait_for_job(&state, id);
        let scrape = route(&state, &request("GET", "/metrics", ""));
        assert_eq!(scrape.status, 200);
        assert_eq!(scrape.content_type, crate::http::METRICS_CONTENT_TYPE);
        assert!(scrape.body.contains("# TYPE kronpriv_jobs_submitted_total counter"));
        assert!(scrape.body.contains("kronpriv_jobs_completed_total{outcome=\"done\"}"));
        assert!(scrape.body.contains("kronpriv_stage_ns_bucket{"), "stage spans missing");
        for line in scrape.body.lines() {
            assert!(
                kronpriv_obs::well_formed_exposition_line(line),
                "malformed exposition line: {line:?}"
            );
        }
        assert_eq!(route(&state, &request("POST", "/metrics", "")).status, 405);
    }

    #[test]
    fn mismatched_compute_threads_requests_get_an_explicit_warning() {
        let state = state();
        let pool = state.executor.threads();
        // An explicit thread count that cannot match the server pool.
        let options = kronpriv_estimate::PrivateEstimatorOptions {
            compute_threads: pool + 7,
            ..Default::default()
        };
        let body = SKG_BODY.replace(
            "\"seed\": 11",
            &format!("\"seed\": 11, \"options\": {}", kronpriv_json::to_string(&options)),
        );
        let response = route(&state, &request("POST", "/api/estimate", &body));
        assert_eq!(response.status, 202, "{}", response.body);
        let submitted = body_json(&response);
        let warnings = submitted.get("warnings").unwrap();
        let text = kronpriv_json::to_string(warnings);
        assert!(text.contains("options.compute_threads"), "{text}");
        assert!(text.contains("ignored"), "{text}");
        // The poll document echoes the same warnings for the job's whole lifetime.
        let id = submitted.get("job_id").unwrap().as_f64().unwrap() as u64;
        let poll = route(&state, &request("GET", &format!("/api/jobs/{id}"), ""));
        assert!(poll.body.contains("options.compute_threads"), "{}", poll.body);
        wait_for_job(&state, id);
        let done = route(&state, &request("GET", &format!("/api/jobs/{id}"), ""));
        assert!(done.body.contains("options.compute_threads"), "{}", done.body);
    }

    #[test]
    fn matching_or_auto_compute_threads_requests_carry_no_warnings() {
        let state = state();
        let pool = state.executor.threads();
        for threads in [0, pool] {
            let options = kronpriv_estimate::PrivateEstimatorOptions {
                compute_threads: threads,
                ..Default::default()
            };
            let options = kronpriv_json::to_string(&options);
            let body =
                SKG_BODY.replace("\"seed\": 11", &format!("\"seed\": 11, \"options\": {options}"));
            let response = route(&state, &request("POST", "/api/estimate", &body));
            assert_eq!(response.status, 202, "{}", response.body);
            assert_eq!(
                body_json(&response).get("warnings"),
                Some(&Json::Null),
                "{options}: {}",
                response.body
            );
        }
    }

    #[test]
    fn events_targets_are_validated_by_the_router() {
        let state = state();
        // Unknown job and bad id syntax answer like the poll endpoint.
        assert_eq!(route(&state, &request("GET", "/api/jobs/999/events", "")).status, 404);
        assert_eq!(route(&state, &request("GET", "/api/jobs/abc/events", "")).status, 400);
        assert_eq!(route(&state, &request("POST", "/api/jobs/1/events", "")).status, 405);
        // A live job is a valid stream target; the plain router cannot stream it.
        let response = route(&state, &request("POST", "/api/estimate", SKG_BODY));
        let id = body_json(&response).get("job_id").unwrap().as_f64().unwrap() as u64;
        assert_eq!(events_target(&state, "GET", &id.to_string()), Ok(id));
        let plain = route(&state, &request("GET", &format!("/api/jobs/{id}/events"), ""));
        assert_eq!(plain.status, 400);
        assert!(plain.body.contains("direct connection"), "{}", plain.body);
        wait_for_job(&state, id);
    }

    #[test]
    fn estimate_job_runs_to_done_via_polling() {
        let state = state();
        let response = route(&state, &request("POST", "/api/estimate", SKG_BODY));
        assert_eq!(response.status, 202, "{}", response.body);
        let id = body_json(&response).get("job_id").unwrap().as_f64().unwrap() as u64;
        let snap = wait_for_job(&state, id);
        assert_eq!(snap.status, JobStatus::Done, "{:?}", snap.error);
        let result = snap.result.unwrap();
        let theta = result.get("theta").unwrap();
        let a = theta.get("a").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&a));
        // Poll endpoint renders the same record.
        let poll = route(&state, &request("GET", &format!("/api/jobs/{id}"), ""));
        assert_eq!(poll.status, 200);
        assert_eq!(body_json(&poll).get("status").unwrap().as_str(), Some("Done"));
    }

    #[test]
    fn compute_thread_config_never_changes_job_results() {
        // The same request against a 1-thread server and a 4-thread server must produce the
        // exact same result document — the determinism contract of the parallel layer.
        let run = |compute_threads: usize| {
            let state = AppState::new(1, 16, compute_threads);
            let response = route(&state, &request("POST", "/api/estimate", SKG_BODY));
            assert_eq!(response.status, 202, "{}", response.body);
            let id = body_json(&response).get("job_id").unwrap().as_f64().unwrap() as u64;
            let snap = wait_for_job(&state, id);
            assert_eq!(snap.status, JobStatus::Done, "{:?}", snap.error);
            kronpriv_json::to_string(&snap.result.unwrap())
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn estimate_accepts_inline_edge_lists() {
        let state = state();
        // A small but non-trivial graph: a ring plus chords.
        let mut edges = String::new();
        for i in 0..64 {
            edges.push_str(&format!("{} {}\n", i, (i + 1) % 64));
            edges.push_str(&format!("{} {}\n", i, (i + 7) % 64));
        }
        let body = format!(
            r#"{{"graph": {{"edge_list": {}}}, "params": {{"epsilon": 2.0, "delta": 0.05}}, "seed": 3}}"#,
            kronpriv_json::to_string(&edges)
        );
        let response = route(&state, &request("POST", "/api/estimate", &body));
        assert_eq!(response.status, 202, "{}", response.body);
        let id = body_json(&response).get("job_id").unwrap().as_f64().unwrap() as u64;
        let snap = wait_for_job(&state, id);
        assert_eq!(snap.status, JobStatus::Done, "{:?}", snap.error);
    }

    #[test]
    fn bad_requests_are_400_not_jobs() {
        let state = state();
        for (body, needle) in [
            ("{", "invalid request body"),
            // `params` became optional with the estimator selector, so a bare seed now gets
            // past parsing and fails on the graph spec instead.
            ("{\"seed\": 1}", "exactly one of"),
            (
                r#"{"graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
                   "seed": 1}"#,
                "params is required",
            ),
            (
                r#"{"graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
                   "estimator": "mle",
                   "params": {"epsilon": 1.0, "delta": 0.01}, "seed": 1}"#,
                "unknown estimator",
            ),
            (
                r#"{"graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
                   "estimator": "kronfit", "seed": 1,
                   "kronfit": {"gradient_steps": 5, "warmup_swaps": 100,
                               "samples_per_step": 2, "swaps_between_samples": 50,
                               "learning_rate": 0.06, "min_parameter": 0.001,
                               "initial": {"a": 0.9, "b": 0.6, "c": 0.2}, "chains": 0}}"#,
                "kronfit.chains",
            ),
            // Per-knob values can be individually sane while multiplying into an absurd total
            // budget; the product caps must catch that.
            (
                r#"{"graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
                   "estimator": "kronfit", "seed": 1,
                   "kronfit": {"gradient_steps": 10000, "warmup_swaps": 10000000,
                               "samples_per_step": 64, "swaps_between_samples": 10000000,
                               "learning_rate": 0.06, "min_parameter": 0.001,
                               "initial": {"a": 0.9, "b": 0.6, "c": 0.2}, "chains": 64}}"#,
                "kronfit gradient budget too large",
            ),
            (
                r#"{"graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
                   "estimator": "kronfit", "seed": 1,
                   "kronfit": {"gradient_steps": 1000, "warmup_swaps": 10000000,
                               "samples_per_step": 2, "swaps_between_samples": 10000000,
                               "learning_rate": 0.06, "min_parameter": 0.001,
                               "initial": {"a": 0.9, "b": 0.6, "c": 0.2}, "chains": 64}}"#,
                "kronfit iteration budget too large",
            ),
            // KronMom options are bounded too — via the baseline selector and equally via the
            // private pipeline that embeds them (the grid is cubic in grid_points_per_axis).
            (
                r#"{"graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
                   "estimator": "kronmom", "seed": 1,
                   "options": {"degree_budget_fraction": 0.5,
                               "exact_smooth_sensitivity": false, "degrees_only": false,
                               "triangle_signal_threshold": 2.0,
                               "kronmom": {"grid_points_per_axis": 100000, "refine_top": 5,
                                           "max_evaluations": 4000}}}"#,
                "kronmom.grid_points_per_axis",
            ),
            (
                r#"{"graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
                   "params": {"epsilon": 1.0, "delta": 0.01}, "seed": 1,
                   "options": {"degree_budget_fraction": 0.5,
                               "exact_smooth_sensitivity": false, "degrees_only": false,
                               "triangle_signal_threshold": 2.0,
                               "kronmom": {"grid_points_per_axis": 7, "refine_top": 5,
                                           "max_evaluations": 99000000}}}"#,
                "kronmom.max_evaluations",
            ),
            (
                r#"{"graph": {}, "params": {"epsilon": 1.0, "delta": 0.01}, "seed": 1}"#,
                "exactly one of",
            ),
            (
                r#"{"graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8},
                    "edge_list": "0 1"},
                   "params": {"epsilon": 1.0, "delta": 0.01}, "seed": 1}"#,
                "exactly one of",
            ),
            (
                r#"{"graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
                   "params": {"epsilon": -1.0, "delta": 0.01}, "seed": 1}"#,
                "epsilon must be positive",
            ),
            (
                r#"{"graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
                   "params": {"epsilon": 1.0, "delta": 0.0}, "seed": 1}"#,
                "requires delta > 0",
            ),
            (
                r#"{"graph": {"skg": {"theta": {"a": 1.9, "b": 0.5, "c": 0.2}, "k": 8}},
                   "params": {"epsilon": 1.0, "delta": 0.01}, "seed": 1}"#,
                "must lie in [0,1]",
            ),
            (
                r#"{"graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 40}},
                   "params": {"epsilon": 1.0, "delta": 0.01}, "seed": 1}"#,
                "graph.skg.k must be in",
            ),
        ] {
            let response = route(&state, &request("POST", "/api/estimate", body));
            assert_eq!(response.status, 400, "body {body} gave {}", response.body);
            assert!(response.body.contains(needle), "{} lacks {needle}", response.body);
        }
        assert_eq!(state.jobs.submitted(), 0, "a rejected request must not enqueue a job");
    }

    #[test]
    fn baseline_estimators_produce_marked_non_private_documents() {
        let state = state();
        let kf = KronFitOptions {
            gradient_steps: 6,
            warmup_swaps: 400,
            samples_per_step: 2,
            swaps_between_samples: 100,
            chains: 2,
            ..Default::default()
        };
        for estimator in ["kronfit", "kronmom"] {
            // Baselines need no privacy budget; the kronfit block is ignored by kronmom.
            let body = format!(
                r#"{{"graph": {{"skg": {{"theta": {{"a": 0.95, "b": 0.55, "c": 0.2}}, "k": 7}}}},
                    "estimator": "{estimator}", "seed": 5, "kronfit": {}}}"#,
                kronpriv_json::to_string(&kf)
            );
            let response = route(&state, &request("POST", "/api/estimate", &body));
            assert_eq!(response.status, 202, "{estimator}: {}", response.body);
            let id = body_json(&response).get("job_id").unwrap().as_f64().unwrap() as u64;
            let snap = wait_for_job(&state, id);
            assert_eq!(snap.status, JobStatus::Done, "{estimator}: {:?}", snap.error);
            let result = snap.result.unwrap();
            assert_eq!(result.get("estimator").unwrap().as_str(), Some(estimator));
            let theta = result.get("theta").unwrap();
            let a = theta.get("a").unwrap().as_f64().unwrap();
            let c = theta.get("c").unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&a) && a >= c);
            // A baseline document must never look like a private release.
            for absent in ["params", "private_statistics", "triangle_release"] {
                assert!(result.get(absent).is_none(), "{estimator} result leaked {absent}");
            }
        }
    }

    #[test]
    fn omitting_the_estimator_field_matches_explicit_private_byte_for_byte() {
        let state = state();
        let run = |body: &str| {
            let response = route(&state, &request("POST", "/api/estimate", body));
            assert_eq!(response.status, 202, "{}", response.body);
            let id = body_json(&response).get("job_id").unwrap().as_f64().unwrap() as u64;
            let snap = wait_for_job(&state, id);
            assert_eq!(snap.status, JobStatus::Done, "{:?}", snap.error);
            kronpriv_json::to_string(&snap.result.unwrap())
        };
        let explicit = SKG_BODY.replace("\"seed\": 11", "\"estimator\": \"private\", \"seed\": 11");
        assert_eq!(run(SKG_BODY), run(&explicit));
    }

    #[test]
    fn one_node_edge_lists_fail_cleanly_for_every_estimator() {
        // Regression: "0 0" parses to a single node (self-loops are dropped), the k = 0 corner
        // that used to reach the reciprocal `powi(-1)` gradient. Every estimator must fail the
        // job with the empty-graph message instead.
        let state = state();
        for estimator in ["private", "kronmom", "kronfit"] {
            let body = format!(
                r#"{{"graph": {{"edge_list": "0 0\n"}}, "estimator": "{estimator}",
                    "params": {{"epsilon": 1.0, "delta": 0.01}}, "seed": 1}}"#
            );
            let response = route(&state, &request("POST", "/api/estimate", &body));
            assert_eq!(response.status, 202, "{estimator}: {}", response.body);
            let id = body_json(&response).get("job_id").unwrap().as_f64().unwrap() as u64;
            let snap = wait_for_job(&state, id);
            assert_eq!(snap.status, JobStatus::Failed, "{estimator}");
            let message = snap.error.unwrap();
            assert!(message.contains("empty"), "{estimator}: {message}");
        }
    }

    #[test]
    fn unparseable_edge_lists_fail_as_jobs_with_a_message() {
        let state = state();
        let body = r#"{"graph": {"edge_list": "0 1\nnot numbers\n"},
                       "params": {"epsilon": 1.0, "delta": 0.01}, "seed": 1}"#;
        let response = route(&state, &request("POST", "/api/estimate", body));
        assert_eq!(response.status, 202);
        let id = body_json(&response).get("job_id").unwrap().as_f64().unwrap() as u64;
        let snap = wait_for_job(&state, id);
        assert_eq!(snap.status, JobStatus::Failed);
        assert!(snap.error.unwrap().contains("edge list rejected"));
    }

    #[test]
    fn sample_returns_an_edge_list_synchronously() {
        let state = state();
        let body = r#"{"theta": {"a": 0.95, "b": 0.55, "c": 0.2}, "k": 7, "seed": 5}"#;
        let response = route(&state, &request("POST", "/api/sample", body));
        assert_eq!(response.status, 200, "{}", response.body);
        let doc = body_json(&response);
        assert_eq!(doc.get("nodes").unwrap().as_f64(), Some(128.0));
        assert!(doc.get("edges").unwrap().as_f64().unwrap() > 0.0);
        let edge_list = doc.get("edge_list").unwrap().as_str().unwrap();
        assert!(edge_list.lines().any(|l| !l.starts_with('#')));
        // Deterministic: the same request gives the same body, byte for byte.
        let again = route(&state, &request("POST", "/api/sample", body));
        assert_eq!(again.body, response.body);
    }

    #[test]
    fn sample_rejects_bad_theta_and_oversized_k() {
        let state = state();
        let bad_theta = r#"{"theta": {"a": 2.0, "b": 0.5, "c": 0.2}, "k": 7, "seed": 5}"#;
        assert_eq!(route(&state, &request("POST", "/api/sample", bad_theta)).status, 400);
        let big_k = r#"{"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 31, "seed": 5}"#;
        assert_eq!(route(&state, &request("POST", "/api/sample", big_k)).status, 400);
    }

    #[test]
    fn unknown_routes_ids_and_methods() {
        let state = state();
        assert_eq!(route(&state, &request("GET", "/nope", "")).status, 404);
        assert_eq!(route(&state, &request("GET", "/api/jobs/999", "")).status, 404);
        assert_eq!(route(&state, &request("GET", "/api/jobs/abc", "")).status, 400);
        assert_eq!(route(&state, &request("DELETE", "/healthz", "")).status, 405);
        assert_eq!(route(&state, &request("GET", "/api/estimate", "")).status, 405);
        assert_eq!(route(&state, &request("PUT", "/api/sample", "")).status, 405);
        // Query strings are ignored for routing.
        assert_eq!(route(&state, &request("GET", "/healthz?verbose=1", "")).status, 200);
    }
}
