//! The in-memory job store: submit → poll → fetch result.
//!
//! A private-release estimation can take seconds on a large graph, so `/api/estimate` must not
//! hold its connection open while Algorithm 1 runs. Instead the router submits a closure here
//! and immediately returns a job id; the closure runs on a dedicated estimation pool (separate
//! from the HTTP worker pool, so slow estimations never starve `/healthz` or job polling), and
//! clients poll `/api/jobs/{id}` until the record flips to `Done` or `Failed`.

use crate::pool::ThreadPool;
use kronpriv_json::{impl_json_enum, Json};
use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Default number of finished (`Done`/`Failed`) job records retained for polling. Older
/// finished records are evicted oldest-first so a long-running server cannot grow without
/// bound; queued and running jobs are never evicted.
pub const DEFAULT_RETAINED_JOBS: usize = 1024;

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted, not yet picked up by an estimation worker.
    Queued,
    /// An estimation worker is executing it.
    Running,
    /// Finished successfully; the result document is available.
    Done,
    /// Finished with an error; the error message is available.
    Failed,
}

impl_json_enum!(JobStatus { Queued, Running, Done, Failed });

/// A point-in-time copy of one job record, as returned to pollers.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job id assigned at submission.
    pub id: u64,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// The result document (present exactly when `status == Done`).
    pub result: Option<Json>,
    /// The failure message (present exactly when `status == Failed`).
    pub error: Option<String>,
}

#[derive(Debug)]
struct JobRecord {
    status: JobStatus,
    result: Option<Json>,
    error: Option<String>,
}

#[derive(Debug)]
struct JobTable {
    next_id: u64,
    jobs: HashMap<u64, JobRecord>,
    /// Finished job ids in completion order, for oldest-first eviction.
    finished: VecDeque<u64>,
    max_finished: usize,
}

impl JobTable {
    fn complete(&mut self, id: u64, outcome: Result<Json, String>) {
        if let Some(record) = self.jobs.get_mut(&id) {
            match outcome {
                Ok(result) => {
                    record.status = JobStatus::Done;
                    record.result = Some(result);
                }
                Err(message) => {
                    record.status = JobStatus::Failed;
                    record.error = Some(message);
                }
            }
            self.finished.push_back(id);
            while self.finished.len() > self.max_finished {
                if let Some(oldest) = self.finished.pop_front() {
                    self.jobs.remove(&oldest);
                }
            }
        }
    }
}

/// The store: a job table plus the worker pool that executes submitted jobs.
///
/// Dropping the store waits for in-flight jobs to finish (via the pool's graceful shutdown).
pub struct JobStore {
    table: Arc<Mutex<JobTable>>,
    pool: ThreadPool,
}

impl JobStore {
    /// Creates a store whose jobs run on `workers` dedicated threads, retaining the
    /// [`DEFAULT_RETAINED_JOBS`] most recent finished records.
    pub fn new(workers: usize) -> Self {
        Self::with_retention(workers, DEFAULT_RETAINED_JOBS)
    }

    /// Like [`JobStore::new`] with an explicit cap on retained finished records.
    ///
    /// # Panics
    /// Panics if `max_finished == 0` (a finished job must be pollable at least once).
    pub fn with_retention(workers: usize, max_finished: usize) -> Self {
        assert!(max_finished > 0, "must retain at least one finished job");
        JobStore {
            table: Arc::new(Mutex::new(JobTable {
                next_id: 0,
                jobs: HashMap::new(),
                finished: VecDeque::new(),
                max_finished,
            })),
            pool: ThreadPool::new(workers, "kronpriv-job"),
        }
    }

    /// Submits a job and returns its id immediately. The closure's `Ok` document becomes the
    /// job result; `Err` (or a panic, which is caught) marks the job `Failed`.
    pub fn submit(&self, work: impl FnOnce() -> Result<Json, String> + Send + 'static) -> u64 {
        let id = {
            let mut table = self.table.lock().expect("job table poisoned");
            table.next_id += 1;
            let id = table.next_id;
            table
                .jobs
                .insert(id, JobRecord { status: JobStatus::Queued, result: None, error: None });
            id
        };
        let table = Arc::clone(&self.table);
        self.pool.execute(move || {
            set_status(&table, id, JobStatus::Running);
            let outcome = panic::catch_unwind(AssertUnwindSafe(work))
                .unwrap_or_else(|_| Err("job panicked".to_string()));
            table.lock().expect("job table poisoned").complete(id, outcome);
        });
        id
    }

    /// A snapshot of the job, or `None` for an unknown id.
    pub fn get(&self, id: u64) -> Option<JobSnapshot> {
        let table = self.table.lock().expect("job table poisoned");
        table.jobs.get(&id).map(|record| JobSnapshot {
            id,
            status: record.status,
            result: record.result.clone(),
            error: record.error.clone(),
        })
    }

    /// Total number of jobs ever submitted (reported by `/healthz`).
    pub fn submitted(&self) -> u64 {
        self.table.lock().expect("job table poisoned").next_id
    }
}

fn set_status(table: &Mutex<JobTable>, id: u64, status: JobStatus) {
    if let Some(record) = table.lock().expect("job table poisoned").jobs.get_mut(&id) {
        record.status = status;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn wait_done(store: &JobStore, id: u64) -> JobSnapshot {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let snap = store.get(id).expect("job vanished");
            if matches!(snap.status, JobStatus::Done | JobStatus::Failed) {
                return snap;
            }
            assert!(Instant::now() < deadline, "job {id} never finished");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn submit_poll_fetch_lifecycle() {
        let store = JobStore::new(2);
        let id = store.submit(|| Ok(Json::Number(42.0)));
        let snap = wait_done(&store, id);
        assert_eq!(snap.status, JobStatus::Done);
        assert_eq!(snap.result, Some(Json::Number(42.0)));
        assert_eq!(snap.error, None);
        assert_eq!(store.submitted(), 1);
    }

    #[test]
    fn failures_and_panics_are_recorded_not_fatal() {
        let store = JobStore::new(1);
        let failing = store.submit(|| Err("bad input".to_string()));
        let panicking = store.submit(|| panic!("boom"));
        let ok = store.submit(|| Ok(Json::Bool(true)));
        assert_eq!(wait_done(&store, failing).error.as_deref(), Some("bad input"));
        assert_eq!(wait_done(&store, panicking).error.as_deref(), Some("job panicked"));
        assert_eq!(wait_done(&store, ok).status, JobStatus::Done);
    }

    #[test]
    fn finished_jobs_are_evicted_oldest_first_beyond_the_retention_cap() {
        let store = JobStore::with_retention(1, 2);
        let first = store.submit(|| Ok(Json::Number(1.0)));
        wait_done(&store, first);
        let second = store.submit(|| Ok(Json::Number(2.0)));
        wait_done(&store, second);
        let third = store.submit(|| Ok(Json::Number(3.0)));
        wait_done(&store, third);
        assert!(store.get(first).is_none(), "oldest finished job must be evicted");
        assert!(store.get(second).is_some());
        assert!(store.get(third).is_some());
        // The submission counter is unaffected by eviction.
        assert_eq!(store.submitted(), 3);
    }

    #[test]
    fn ids_are_unique_and_unknown_ids_are_none() {
        let store = JobStore::new(2);
        let a = store.submit(|| Ok(Json::Null));
        let b = store.submit(|| Ok(Json::Null));
        assert_ne!(a, b);
        assert!(store.get(u64::MAX).is_none());
    }

    #[test]
    fn dropping_the_store_waits_for_running_jobs() {
        let table;
        {
            let store = JobStore::new(1);
            table = Arc::clone(&store.table);
            for _ in 0..8 {
                store.submit(|| {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok(Json::Null)
                });
            }
        }
        let table = table.lock().unwrap();
        assert!(table.jobs.values().all(|r| r.status == JobStatus::Done));
    }
}
