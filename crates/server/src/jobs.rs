//! The in-memory job store: submit → poll → fetch result, with a streaming event log.
//!
//! A private-release estimation can take seconds on a large graph, so `/api/estimate` must not
//! hold its connection open while Algorithm 1 runs. Instead the router submits a closure here
//! and immediately returns a job id; the closure runs on a dedicated estimation pool (separate
//! from the HTTP worker pool, so slow estimations never starve `/healthz` or job polling), and
//! clients poll `/api/jobs/{id}` until the record flips to `Done` or `Failed`.
//!
//! Every job additionally carries an append-only **event log** of typed JSON documents:
//! `queued` and `running` lifecycle markers, the pipeline's stage/chain progress (the closure
//! receives a [`JobEventSink`], which implements [`kronpriv_obs::ProgressSink`]), and a
//! terminal `done`/`failed` document carrying the same result/error the poll endpoint serves.
//! Streamers follow the log with [`JobStore::wait_events`], which blocks on a condvar instead
//! of polling.

use crate::pool::ThreadPool;
use kronpriv_json::{impl_json_enum, Json};
use kronpriv_obs::{ProgressEvent, ProgressSink, Registry};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A callback the store runs after a job reaches `Done`/`Failed` — the persistence layer's
/// write-behind for `job_finished` records. Invoked outside the table lock.
pub type CompletionHook = Arc<dyn Fn(u64, &Result<Json, String>) + Send + Sync>;

/// Default number of finished (`Done`/`Failed`) job records retained for polling. Older
/// finished records are evicted oldest-first so a long-running server cannot grow without
/// bound; queued and running jobs are never evicted.
pub const DEFAULT_RETAINED_JOBS: usize = 1024;

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted, not yet picked up by an estimation worker.
    Queued,
    /// An estimation worker is executing it.
    Running,
    /// Finished successfully; the result document is available.
    Done,
    /// Finished with an error; the error message is available.
    Failed,
}

impl_json_enum!(JobStatus { Queued, Running, Done, Failed });

/// A point-in-time copy of one job record, as returned to pollers.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job id assigned at submission.
    pub id: u64,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// The result document (present exactly when `status == Done`).
    pub result: Option<Json>,
    /// The failure message (present exactly when `status == Failed`).
    pub error: Option<String>,
    /// Request-level warnings recorded at submission (e.g. an ignored `compute_threads`).
    pub warnings: Vec<String>,
}

/// Monotonic job counters since startup, reported by `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs currently waiting for an estimation worker.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs finished successfully since startup (eviction does not decrement this).
    pub done: u64,
    /// Jobs finished with an error since startup (eviction does not decrement this).
    pub failed: u64,
}

#[derive(Debug)]
struct JobRecord {
    status: JobStatus,
    result: Option<Json>,
    error: Option<String>,
    warnings: Vec<String>,
    /// The persisted request spec (durable mode only): what the snapshot stores so a pending
    /// job can be re-run after a restart. Never served to clients.
    spec: Option<Json>,
    /// Append-only typed progress log; see the module docs for the document shapes.
    events: Vec<Json>,
}

/// The job map is id-ordered (`BTreeMap`) so snapshot images and any future listings are
/// deterministic without sorting.
#[derive(Debug)]
struct JobTable {
    next_id: u64,
    jobs: BTreeMap<u64, JobRecord>,
    /// Finished job ids in completion order, for oldest-first eviction.
    finished: VecDeque<u64>,
    max_finished: usize,
    completed_done: u64,
    completed_failed: u64,
}

/// The table plus the condvar event streamers block on. One condvar covers all jobs: event
/// traffic is a handful of documents per job, so spurious wakeups are irrelevant.
struct Shared {
    table: Mutex<JobTable>,
    events: Condvar,
    hook: Mutex<Option<CompletionHook>>,
}

impl JobTable {
    fn complete(&mut self, id: u64, outcome: Result<Json, String>) {
        if let Some(record) = self.jobs.get_mut(&id) {
            let registry = Registry::global();
            match outcome {
                Ok(result) => {
                    record.status = JobStatus::Done;
                    record.events.push(event_doc("done", &[("result", result.clone())]));
                    record.result = Some(result);
                    self.completed_done += 1;
                    registry.counter("kronpriv_jobs_completed_total", &[("outcome", "done")]).inc();
                }
                Err(message) => {
                    record.status = JobStatus::Failed;
                    record
                        .events
                        .push(event_doc("failed", &[("error", Json::String(message.clone()))]));
                    record.error = Some(message);
                    self.completed_failed += 1;
                    registry
                        .counter("kronpriv_jobs_completed_total", &[("outcome", "failed")])
                        .inc();
                }
            }
            self.finished.push_back(id);
            while self.finished.len() > self.max_finished {
                if let Some(oldest) = self.finished.pop_front() {
                    self.jobs.remove(&oldest);
                }
            }
        }
    }
}

/// Builds one typed event document: `{"event": kind, ...fields}`.
fn event_doc(kind: &str, fields: &[(&str, Json)]) -> Json {
    let mut pairs = vec![("event".to_string(), Json::String(kind.to_string()))];
    pairs.extend(fields.iter().map(|(k, v)| (k.to_string(), v.clone())));
    Json::Object(pairs)
}

/// The progress sink one running job emits into: appends typed JSON documents to the job's
/// event log and wakes any streamer blocked in [`JobStore::wait_events`].
///
/// Implements [`ProgressSink`], so it plugs directly into the `*_observed` pipeline entry
/// points. It opts into per-step chain log-likelihoods (`wants_chain_likelihood`) because the
/// streamed `chain_step` documents carry them — an extra likelihood evaluation per step that
/// consumes no randomness, so results stay byte-identical (the `kronpriv-obs` no-feedback
/// invariant).
pub struct JobEventSink {
    shared: Arc<Shared>,
    id: u64,
}

impl JobEventSink {
    /// Appends one event document to the job's log and wakes streamers. Events for an evicted
    /// job are silently dropped.
    pub fn push(&self, event: Json) {
        let mut table = self.shared.table.lock().expect("job table poisoned");
        if let Some(record) = table.jobs.get_mut(&self.id) {
            record.events.push(event);
            self.shared.events.notify_all();
        }
    }
}

impl ProgressSink for JobEventSink {
    fn emit(&self, event: &ProgressEvent) {
        let doc = match event {
            ProgressEvent::StageStarted { stage } => {
                event_doc("stage_started", &[("stage", Json::String(stage.to_string()))])
            }
            ProgressEvent::StageFinished { stage } => {
                event_doc("stage_finished", &[("stage", Json::String(stage.to_string()))])
            }
            ProgressEvent::ChainStep { chain, step, total_steps, log_likelihood } => event_doc(
                "chain_step",
                &[
                    ("chain", Json::Number(*chain as f64)),
                    ("step", Json::Number(*step as f64)),
                    ("total_steps", Json::Number(*total_steps as f64)),
                    // JSON has no NaN; an unevaluated likelihood becomes null.
                    (
                        "log_likelihood",
                        if log_likelihood.is_finite() {
                            Json::Number(*log_likelihood)
                        } else {
                            Json::Null
                        },
                    ),
                ],
            ),
        };
        self.push(doc);
    }

    fn wants_chain_likelihood(&self) -> bool {
        true
    }
}

/// The store: a job table plus the worker pool that executes submitted jobs.
///
/// Dropping the store waits for in-flight jobs to finish (via the pool's graceful shutdown).
pub struct JobStore {
    shared: Arc<Shared>,
    pool: ThreadPool,
}

impl JobStore {
    /// Creates a store whose jobs run on `workers` dedicated threads, retaining the
    /// [`DEFAULT_RETAINED_JOBS`] most recent finished records.
    pub fn new(workers: usize) -> Self {
        Self::with_retention(workers, DEFAULT_RETAINED_JOBS)
    }

    /// Like [`JobStore::new`] with an explicit cap on retained finished records.
    ///
    /// # Panics
    /// Panics if `max_finished == 0` (a finished job must be pollable at least once).
    pub fn with_retention(workers: usize, max_finished: usize) -> Self {
        assert!(max_finished > 0, "must retain at least one finished job");
        JobStore {
            shared: Arc::new(Shared {
                table: Mutex::new(JobTable {
                    next_id: 0,
                    jobs: BTreeMap::new(),
                    finished: VecDeque::new(),
                    max_finished,
                    completed_done: 0,
                    completed_failed: 0,
                }),
                events: Condvar::new(),
                hook: Mutex::new(None),
            }),
            pool: ThreadPool::new(workers, "kronpriv-job"),
        }
    }

    /// Installs the completion hook run after every job finishes (outside the table lock) —
    /// the persistence layer's `job_finished` write-behind. Replaces any previous hook.
    pub fn set_completion_hook(&self, hook: CompletionHook) {
        *self.shared.hook.lock().expect("job hook poisoned") = Some(hook);
    }

    /// A lightweight imaging handle onto the same job table, for the persistence snapshot
    /// hook (which must not capture the whole `AppState`).
    pub fn imager(&self) -> JobImager {
        JobImager { shared: Arc::clone(&self.shared) }
    }

    /// Creates a `Queued` job record and returns its id, without scheduling any work yet.
    /// `id` is `Some` only on boot replay, to re-create a job under its persisted id (the
    /// counter advances past it so fresh ids never collide). `spec` is the persisted request
    /// spec in durable mode, `None` in-memory.
    pub fn create(&self, id: Option<u64>, warnings: Vec<String>, spec: Option<Json>) -> u64 {
        let id = {
            let mut table = self.shared.table.lock().expect("job table poisoned");
            let id = match id {
                Some(id) => {
                    table.next_id = table.next_id.max(id);
                    id
                }
                None => {
                    table.next_id += 1;
                    table.next_id
                }
            };
            table.jobs.insert(
                id,
                JobRecord {
                    status: JobStatus::Queued,
                    result: None,
                    error: None,
                    warnings,
                    spec,
                    events: vec![event_doc("queued", &[("job_id", Json::Number(id as f64))])],
                },
            );
            id
        };
        Registry::global().counter("kronpriv_jobs_submitted_total", &[]).inc();
        self.shared.events.notify_all();
        id
    }

    /// Schedules the work of an already-created job on the estimation pool. The closure's `Ok`
    /// document becomes the job result; `Err` (or a panic, which is caught) marks the job
    /// `Failed`. The closure receives the job's [`JobEventSink`] for progress reporting.
    pub fn run(
        &self,
        id: u64,
        work: impl FnOnce(&JobEventSink) -> Result<Json, String> + Send + 'static,
    ) {
        let shared = Arc::clone(&self.shared);
        self.pool.execute(move || {
            let sink = JobEventSink { shared: Arc::clone(&shared), id };
            set_status(&shared, id, JobStatus::Running);
            sink.push(event_doc("running", &[]));
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| work(&sink)))
                .unwrap_or_else(|_| Err("job panicked".to_string()));
            let hook = shared.hook.lock().expect("job hook poisoned").clone();
            shared.table.lock().expect("job table poisoned").complete(id, outcome.clone());
            shared.events.notify_all();
            if let Some(hook) = hook {
                hook(id, &outcome);
            }
        });
    }

    /// Submits a job and returns its id immediately: [`JobStore::create`] followed by
    /// [`JobStore::run`]. `warnings` are recorded on the job verbatim (e.g. request fields the
    /// server overrode).
    pub fn submit(
        &self,
        warnings: Vec<String>,
        work: impl FnOnce(&JobEventSink) -> Result<Json, String> + Send + 'static,
    ) -> u64 {
        let id = self.create(None, warnings, None);
        self.run(id, work);
        id
    }

    /// Restores an already-finished job verbatim (boot replay): the record appears `Done` or
    /// `Failed` with a synthesized two-event log, counts towards the `/healthz` completion
    /// tallies, but does not re-run and does not touch the traffic metrics or the hook.
    pub fn restore_finished(&self, id: u64, outcome: Result<Json, String>, warnings: Vec<String>) {
        let mut table = self.shared.table.lock().expect("job table poisoned");
        table.next_id = table.next_id.max(id);
        let record = match &outcome {
            Ok(result) => {
                table.completed_done += 1;
                JobRecord {
                    status: JobStatus::Done,
                    result: Some(result.clone()),
                    error: None,
                    warnings,
                    spec: None,
                    events: vec![
                        event_doc("queued", &[("job_id", Json::Number(id as f64))]),
                        event_doc("done", &[("result", result.clone())]),
                    ],
                }
            }
            Err(message) => {
                table.completed_failed += 1;
                JobRecord {
                    status: JobStatus::Failed,
                    result: None,
                    error: Some(message.clone()),
                    warnings,
                    spec: None,
                    events: vec![
                        event_doc("queued", &[("job_id", Json::Number(id as f64))]),
                        event_doc("failed", &[("error", Json::String(message.clone()))]),
                    ],
                }
            }
        };
        table.jobs.insert(id, record);
        table.finished.push_back(id);
        while table.finished.len() > table.max_finished {
            if let Some(oldest) = table.finished.pop_front() {
                table.jobs.remove(&oldest);
            }
        }
    }

    /// A snapshot of the job, or `None` for an unknown id.
    pub fn get(&self, id: u64) -> Option<JobSnapshot> {
        let table = self.shared.table.lock().expect("job table poisoned");
        table.jobs.get(&id).map(|record| JobSnapshot {
            id,
            status: record.status,
            result: record.result.clone(),
            error: record.error.clone(),
            warnings: record.warnings.clone(),
        })
    }

    /// The job's event documents from index `from` onward, blocking up to `timeout` for new
    /// ones. Returns `(events, terminal)` where `terminal` says the returned slice reaches the
    /// end of a finished job's log — the stream is complete. `None` for an unknown (or
    /// evicted) id.
    ///
    /// A timeout with no fresh events returns `(vec![], false)` so streamers can keep the
    /// connection alive and re-wait.
    pub fn wait_events(
        &self,
        id: u64,
        from: usize,
        timeout: Duration,
    ) -> Option<(Vec<Json>, bool)> {
        let deadline = Instant::now() + timeout;
        let mut table = self.shared.table.lock().expect("job table poisoned");
        loop {
            let record = table.jobs.get(&id)?;
            let finished = matches!(record.status, JobStatus::Done | JobStatus::Failed);
            if record.events.len() > from || finished {
                let events = record.events.get(from..).unwrap_or_default().to_vec();
                return Some((events, finished));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Some((Vec::new(), false));
            }
            let (guard, wait) =
                self.shared.events.wait_timeout(table, remaining).expect("job table poisoned");
            table = guard;
            if wait.timed_out() {
                let record = table.jobs.get(&id)?;
                let finished = matches!(record.status, JobStatus::Done | JobStatus::Failed);
                let events = record.events.get(from..).unwrap_or_default().to_vec();
                return Some((events, finished));
            }
        }
    }

    /// Raises the id counter to at least `floor` (boot replay: fresh ids must never collide
    /// with ids the previous process handed out, even ones whose records were compacted away).
    pub fn seed_next_id(&self, floor: u64) {
        let mut table = self.shared.table.lock().expect("job table poisoned");
        table.next_id = table.next_id.max(floor);
    }

    /// Total number of jobs ever submitted (reported by `/healthz`).
    pub fn submitted(&self) -> u64 {
        self.shared.table.lock().expect("job table poisoned").next_id
    }

    /// Current and cumulative lifecycle counts (reported by `/healthz`).
    pub fn counts(&self) -> JobCounts {
        let table = self.shared.table.lock().expect("job table poisoned");
        let mut queued = 0;
        let mut running = 0;
        for record in table.jobs.values() {
            match record.status {
                JobStatus::Queued => queued += 1,
                JobStatus::Running => running += 1,
                _ => {}
            }
        }
        JobCounts { queued, running, done: table.completed_done, failed: table.completed_failed }
    }
}

/// A handle that images the job table for persistence snapshots without owning the pool (so
/// the snapshot hook can live inside the store's own completion callback without a cycle).
#[derive(Clone)]
pub struct JobImager {
    shared: Arc<Shared>,
}

impl JobImager {
    /// `(next_job_id, job documents)` in id order. Finished jobs persist their outcome;
    /// queued/running jobs persist their spec (to be re-run on boot); pending jobs without a
    /// spec (in-memory submissions) are skipped — they cannot be replayed.
    pub fn image_docs(&self) -> (u64, Vec<Json>) {
        let table = self.shared.table.lock().expect("job table poisoned");
        let mut docs = Vec::new();
        for (id, record) in table.jobs.iter() {
            let mut pairs = vec![("job_id".to_string(), Json::Number(*id as f64))];
            match record.status {
                JobStatus::Done => {
                    pairs.push(("status".to_string(), Json::String("done".to_string())));
                    if let Some(result) = &record.result {
                        pairs.push(("result".to_string(), result.clone()));
                    }
                }
                JobStatus::Failed => {
                    pairs.push(("status".to_string(), Json::String("failed".to_string())));
                    pairs.push((
                        "error".to_string(),
                        Json::String(record.error.clone().unwrap_or_default()),
                    ));
                }
                JobStatus::Queued | JobStatus::Running => match &record.spec {
                    Some(spec) => {
                        pairs.push(("status".to_string(), Json::String("pending".to_string())));
                        pairs.push(("spec".to_string(), spec.clone()));
                    }
                    None => continue,
                },
            }
            pairs.push((
                "warnings".to_string(),
                Json::Array(record.warnings.iter().map(|w| Json::String(w.clone())).collect()),
            ));
            docs.push(Json::Object(pairs));
        }
        (table.next_id, docs)
    }
}

fn set_status(shared: &Shared, id: u64, status: JobStatus) {
    if let Some(record) = shared.table.lock().expect("job table poisoned").jobs.get_mut(&id) {
        record.status = status;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait_done(store: &JobStore, id: u64) -> JobSnapshot {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let snap = store.get(id).expect("job vanished");
            if matches!(snap.status, JobStatus::Done | JobStatus::Failed) {
                return snap;
            }
            assert!(Instant::now() < deadline, "job {id} never finished");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn event_kind(event: &Json) -> String {
        event.get("event").and_then(|e| e.as_str().map(str::to_string)).expect("untyped event")
    }

    #[test]
    fn submit_poll_fetch_lifecycle() {
        let store = JobStore::new(2);
        let id = store.submit(Vec::new(), |_| Ok(Json::Number(42.0)));
        let snap = wait_done(&store, id);
        assert_eq!(snap.status, JobStatus::Done);
        assert_eq!(snap.result, Some(Json::Number(42.0)));
        assert_eq!(snap.error, None);
        assert!(snap.warnings.is_empty());
        assert_eq!(store.submitted(), 1);
        let counts = store.counts();
        assert_eq!((counts.queued, counts.running, counts.done, counts.failed), (0, 0, 1, 0));
    }

    #[test]
    fn failures_and_panics_are_recorded_not_fatal() {
        let store = JobStore::new(1);
        let failing = store.submit(Vec::new(), |_| Err("bad input".to_string()));
        let panicking = store.submit(Vec::new(), |_| panic!("boom"));
        let ok = store.submit(Vec::new(), |_| Ok(Json::Bool(true)));
        assert_eq!(wait_done(&store, failing).error.as_deref(), Some("bad input"));
        assert_eq!(wait_done(&store, panicking).error.as_deref(), Some("job panicked"));
        assert_eq!(wait_done(&store, ok).status, JobStatus::Done);
        assert_eq!(store.counts().failed, 2);
    }

    #[test]
    fn finished_jobs_are_evicted_oldest_first_beyond_the_retention_cap() {
        let store = JobStore::with_retention(1, 2);
        let first = store.submit(Vec::new(), |_| Ok(Json::Number(1.0)));
        wait_done(&store, first);
        let second = store.submit(Vec::new(), |_| Ok(Json::Number(2.0)));
        wait_done(&store, second);
        let third = store.submit(Vec::new(), |_| Ok(Json::Number(3.0)));
        wait_done(&store, third);
        assert!(store.get(first).is_none(), "oldest finished job must be evicted");
        assert!(store.get(second).is_some());
        assert!(store.get(third).is_some());
        // The submission counter is unaffected by eviction.
        assert_eq!(store.submitted(), 3);
        // An evicted job's event stream reports unknown, not empty.
        assert!(store.wait_events(first, 0, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn ids_are_unique_and_unknown_ids_are_none() {
        let store = JobStore::new(2);
        let a = store.submit(Vec::new(), |_| Ok(Json::Null));
        let b = store.submit(Vec::new(), |_| Ok(Json::Null));
        assert_ne!(a, b);
        assert!(store.get(u64::MAX).is_none());
        assert!(store.wait_events(u64::MAX, 0, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn warnings_are_echoed_on_the_snapshot() {
        let store = JobStore::new(1);
        let id = store.submit(vec!["heads up".to_string()], |_| Ok(Json::Null));
        assert_eq!(wait_done(&store, id).warnings, vec!["heads up".to_string()]);
    }

    #[test]
    fn event_log_runs_queued_to_terminal_in_order() {
        let store = JobStore::new(1);
        let id = store.submit(Vec::new(), |sink| {
            sink.emit(&ProgressEvent::StageStarted { stage: "fit" });
            sink.emit(&ProgressEvent::ChainStep {
                chain: 0,
                step: 1,
                total_steps: 4,
                log_likelihood: f64::NAN,
            });
            sink.emit(&ProgressEvent::StageFinished { stage: "fit" });
            Ok(Json::Number(7.0))
        });
        wait_done(&store, id);
        let (events, terminal) = store.wait_events(id, 0, Duration::from_secs(5)).unwrap();
        assert!(terminal);
        let kinds: Vec<String> = events.iter().map(event_kind).collect();
        assert_eq!(
            kinds,
            ["queued", "running", "stage_started", "chain_step", "stage_finished", "done"]
        );
        // The terminal event embeds the same result the poll endpoint serves.
        assert_eq!(events.last().unwrap().get("result"), Some(&Json::Number(7.0)));
        // NaN log-likelihoods cross the wire as null.
        assert_eq!(events[3].get("log_likelihood"), Some(&Json::Null));
        // A cursor past the queued/running prefix sees only the tail.
        let (tail, terminal) = store.wait_events(id, 4, Duration::from_secs(5)).unwrap();
        assert!(terminal);
        assert_eq!(tail.iter().map(event_kind).collect::<Vec<_>>(), ["stage_finished", "done"]);
    }

    #[test]
    fn wait_events_blocks_until_events_arrive() {
        let store = JobStore::new(1);
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let id = store.submit(Vec::new(), move |sink| {
            release_rx.recv().unwrap();
            sink.push(Json::String("late".to_string()));
            Ok(Json::Null)
        });
        // Nothing beyond queued/running yet: a short wait times out empty and non-terminal.
        let (events, _) = store.wait_events(id, 2, Duration::from_millis(30)).unwrap();
        assert!(events.is_empty());
        release_tx.send(()).unwrap();
        // Now the blocked wait must be woken by the push/completion, well before its timeout.
        let started = Instant::now();
        let (events, _) = store.wait_events(id, 2, Duration::from_secs(10)).unwrap();
        assert!(!events.is_empty());
        assert!(started.elapsed() < Duration::from_secs(5), "condvar wake, not timeout");
    }

    #[test]
    fn dropping_the_store_waits_for_running_jobs() {
        let shared;
        {
            let store = JobStore::new(1);
            shared = Arc::clone(&store.shared);
            for _ in 0..8 {
                store.submit(Vec::new(), |_| {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok(Json::Null)
                });
            }
        }
        let table = shared.table.lock().unwrap();
        assert!(table.jobs.values().all(|r| r.status == JobStatus::Done));
    }
}
