//! `kronpriv-server` — a std-only HTTP/JSON service that serves private graph releases.
//!
//! The library workspace implements Mir & Wright's Algorithm 1; this crate puts it on the
//! network. Because the build environment has no crates.io access there is no tokio/hyper/axum
//! to build on, so every layer is hand-rolled on `std`:
//!
//! * [`http`] — a minimal HTTP/1.1 request reader / response writer over [`std::net`], with
//!   hard size limits,
//! * [`pool`] — a fixed-size worker thread pool with graceful drain-on-drop shutdown,
//! * [`jobs`] — the job store (submit → poll → fetch) that keeps long estimations off the
//!   connection threads, with a per-job event log streamers can follow,
//! * [`ledger`] — the per-dataset privacy-budget accountant: a cumulative (ε, δ) ledger that
//!   estimates debit atomically before execution and that refuses draws it cannot afford,
//! * [`datasets`] — named uploaded edge lists, each carrying its [`ledger`] for life,
//! * [`store`] — optional durability: an append-only record log plus periodic snapshot
//!   compaction under `--data-dir`, replayed on boot so jobs and datasets survive restarts,
//! * [`api`] — the wire request/response types, built with the `kronpriv-json` macros; untrusted
//!   fields land in `*Spec` types and pass explicit validation before touching the pipeline,
//! * [`router`] — the single versioned route table (`/api/v1/...`) plus thin deprecated
//!   aliases for the original unversioned paths,
//! * [`server`] — the accept loop, connection handling (including the chunked event stream and
//!   the structured access log) and [`ServerHandle`] lifecycle,
//! * [`client`] — the tiny blocking HTTP client the integration tests and the `--probe` mode
//!   drive the server with.
//!
//! # Endpoints
//!
//! | Method & path                              | Purpose                                                        |
//! |--------------------------------------------|----------------------------------------------------------------|
//! | `GET /healthz`                             | status document: uptime, pool size, job and dataset counts     |
//! | `GET /metrics`                             | Prometheus text exposition of the process-global registry      |
//! | `POST /api/v1/estimate`                    | submit an Algorithm 1 job on an inline graph (edge list / SKG) |
//! | `GET /api/v1/jobs/{id}`                    | poll a job; carries the result document when finished          |
//! | `GET /api/v1/jobs/{id}/events`             | chunked NDJSON stream of the job's typed progress events       |
//! | `POST /api/v1/sample`                      | synchronously sample a synthetic graph from a public initiator |
//! | `GET /api/v1/datasets`                     | list datasets with their budget documents                      |
//! | `POST /api/v1/datasets`                    | upload a named edge list with an (ε, δ) budget                 |
//! | `GET /api/v1/datasets/{name}`              | fetch one dataset document                                     |
//! | `DELETE /api/v1/datasets/{name}`           | delete a dataset (and forget its ledger)                       |
//! | `POST /api/v1/datasets/{name}/estimate`    | submit a private estimate debited against the dataset's ledger |
//! | `GET /api/v1/datasets/{name}/budget`       | the dataset's budget document (limits, spent, remaining)       |
//!
//! The pre-versioning spellings `/api/estimate`, `/api/sample` and `/api/jobs/{id}[/events]`
//! remain as aliases: same handlers, byte-identical bodies, plus a `Deprecation: true` header.
//! See `API.md` at the repository root for request/response examples and the error-code table.
//!
//! # Reproducibility over the wire
//!
//! Every job is a pure function of its request document: one `StdRng` seeded from the request
//! `seed` drives the optional SKG realization and all privacy noise, and the JSON writer is
//! deterministic — identical requests produce byte-identical result documents. The same
//! contract is what makes crash recovery exact: replaying a persisted pending job re-runs it
//! from its spec and reproduces the original result bytes.
//!
//! ```
//! use kronpriv_server::{client, server::serve_ephemeral};
//!
//! let handle = serve_ephemeral(2, 1).unwrap();
//! let (status, body) = client::get(handle.addr(), "/healthz").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("kronpriv-server"));
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod datasets;
pub mod http;
pub mod jobs;
pub mod ledger;
pub mod pool;
pub mod router;
pub mod server;
pub mod store;

pub use jobs::{JobSnapshot, JobStatus, JobStore};
pub use server::{serve, serve_ephemeral, ServerConfig, ServerHandle};
