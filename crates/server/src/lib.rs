//! `kronpriv-server` — a std-only HTTP/JSON service that serves private graph releases.
//!
//! The library workspace implements Mir & Wright's Algorithm 1; this crate puts it on the
//! network. Because the build environment has no crates.io access there is no tokio/hyper/axum
//! to build on, so every layer is hand-rolled on `std`:
//!
//! * [`http`] — a minimal HTTP/1.1 request reader / response writer over [`std::net`], with
//!   hard size limits,
//! * [`pool`] — a fixed-size worker thread pool with graceful drain-on-drop shutdown,
//! * [`jobs`] — the in-memory job store (submit → poll → fetch) that keeps long estimations
//!   off the connection threads, with a per-job event log streamers can follow,
//! * [`api`] — the wire request/response types, built with the `kronpriv-json` macros; untrusted
//!   fields land in `*Spec` types and pass explicit validation before touching the pipeline,
//! * [`router`] — `(method, path)` dispatch onto the endpoints,
//! * [`server`] — the accept loop, connection handling (including the chunked event stream and
//!   the structured access log) and [`ServerHandle`] lifecycle,
//! * [`client`] — the tiny blocking HTTP client the integration tests and the `--probe` mode
//!   drive the server with.
//!
//! # Endpoints
//!
//! | Method & path               | Purpose                                                        |
//! |-----------------------------|----------------------------------------------------------------|
//! | `GET /healthz`              | status document: uptime, pool size, job lifecycle counts       |
//! | `GET /metrics`              | Prometheus text exposition of the process-global registry      |
//! | `POST /api/estimate`        | submit an Algorithm 1 private-release job (edge list or SKG)   |
//! | `GET /api/jobs/{id}`        | poll a job; carries the result document when finished          |
//! | `GET /api/jobs/{id}/events` | chunked NDJSON stream of the job's typed progress events       |
//! | `POST /api/sample`          | synchronously sample a synthetic graph from a public initiator |
//!
//! See `API.md` at the repository root for request/response examples.
//!
//! # Reproducibility over the wire
//!
//! Every job is a pure function of its request document: one `StdRng` seeded from the request
//! `seed` drives the optional SKG realization and all privacy noise, and the JSON writer is
//! deterministic — identical requests produce byte-identical result documents.
//!
//! ```
//! use kronpriv_server::{client, server::serve_ephemeral};
//!
//! let handle = serve_ephemeral(2, 1).unwrap();
//! let (status, body) = client::get(handle.addr(), "/healthz").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("kronpriv-server"));
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod jobs;
pub mod pool;
pub mod router;
pub mod server;

pub use jobs::{JobSnapshot, JobStatus, JobStore};
pub use server::{serve, serve_ephemeral, ServerConfig, ServerHandle};
