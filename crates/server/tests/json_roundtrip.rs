//! Round-trip coverage for the wire types of the HTTP API: every request/response struct must
//! survive `to_string` → `from_str` unchanged, tolerate unknown fields (clients may send more
//! than we know), and render error payloads the way the API.md documents them.

use kronpriv_json::{from_str, to_string, Json};
use kronpriv_server::api::{
    BudgetSpec, ErrorBody, EstimateRequest, EstimateResult, GraphSpec, HealthResponse,
    InitiatorSpec, JobResponse, SampleRequest, SampleResponse, SkgSpec, SubmitResponse,
    TriangleReleaseDoc,
};
use kronpriv_server::JobStatus;

#[test]
fn estimate_request_round_trips_and_tolerates_unknowns() {
    let req = EstimateRequest {
        graph: GraphSpec {
            edge_list: None,
            skg: Some(SkgSpec { theta: InitiatorSpec { a: 0.9, b: 0.5, c: 0.2 }, k: 8 }),
        },
        params: Some(BudgetSpec { epsilon: 0.2, delta: 0.01 }),
        seed: 7,
        estimator: None,
        options: None,
        kronfit: None,
        include_degree_sequence: Some(true),
    };
    let text = to_string(&req);
    let back: EstimateRequest = from_str(&text).unwrap();
    assert_eq!(back.seed, req.seed);
    assert_eq!(back.params, req.params);
    assert_eq!(back.graph, req.graph);
    assert_eq!(back.include_degree_sequence, Some(true));

    // Unknown fields anywhere in the document are ignored, not rejected.
    let with_extras = r#"{
        "graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}, "format": "snap"},
        "params": {"epsilon": 0.2, "delta": 0.01},
        "seed": 7,
        "client_version": "2.3",
        "tags": ["nightly", "ci"]
    }"#;
    let back: EstimateRequest = from_str(with_extras).unwrap();
    assert_eq!(back.seed, 7);
    assert_eq!(back.graph.skg.unwrap().k, 8);
}

#[test]
fn estimate_request_reports_missing_required_fields() {
    // `params` became optional with the estimator selector (the baselines need no budget);
    // whether it is required is now the router's per-estimator decision.
    let req = from_str::<EstimateRequest>(r#"{"graph": {}, "seed": 1}"#).unwrap();
    assert!(req.params.is_none());
    // `seed` is required (null is not a u64).
    let err =
        from_str::<EstimateRequest>(r#"{"graph": {}, "params": {"epsilon": 1.0, "delta": 0.01}}"#)
            .unwrap_err();
    assert!(err.to_string().contains("number"), "{err}");
}

#[test]
fn estimate_result_round_trips_with_and_without_optionals() {
    let full = EstimateResult {
        seed: 42,
        params: BudgetSpec { epsilon: 1.0, delta: 0.01 },
        theta: InitiatorSpec { a: 0.99, b: 0.45, c: 0.25 },
        k: 14,
        objective_value: 1.25e-3,
        evaluations: 321,
        private_statistics: [14000.5, 250000.0, 420.25, 310000.0],
        triangle_release: Some(TriangleReleaseDoc {
            value: 420.25,
            beta: 0.09,
            params: BudgetSpec { epsilon: 0.5, delta: 0.01 },
        }),
        degree_sequence: Some(vec![0.5, 1.0, 2.25]),
    };
    let back: EstimateResult = from_str(&to_string(&full)).unwrap();
    assert_eq!(back, full);

    let lean = EstimateResult { triangle_release: None, degree_sequence: None, ..full };
    let text = to_string(&lean);
    let back: EstimateResult = from_str(&text).unwrap();
    assert_eq!(back, lean);
    // Optionals serialize as null (and absent keys parse the same way).
    assert!(text.contains("\"triangle_release\":null"), "{text}");
}

#[test]
fn job_and_submit_responses_round_trip() {
    for status in [JobStatus::Queued, JobStatus::Running, JobStatus::Done, JobStatus::Failed] {
        let submit = SubmitResponse { job_id: 9, status, warnings: None };
        let back: SubmitResponse = from_str(&to_string(&submit)).unwrap();
        assert_eq!(back, submit);
    }
    let warned = SubmitResponse {
        job_id: 10,
        status: JobStatus::Queued,
        warnings: Some(vec!["options.compute_threads=8 is ignored".to_string()]),
    };
    let text = to_string(&warned);
    assert!(text.contains("\"warnings\":[\"options.compute_threads"), "{text}");
    let back: SubmitResponse = from_str(&text).unwrap();
    assert_eq!(back, warned);
    let done = JobResponse {
        job_id: 3,
        status: JobStatus::Done,
        result: Some(Json::Object(vec![("theta".into(), Json::Number(0.5))])),
        error: None,
        warnings: None,
    };
    let back: JobResponse = from_str(&to_string(&done)).unwrap();
    assert_eq!(back, done);
    let failed = JobResponse {
        job_id: 4,
        status: JobStatus::Failed,
        result: None,
        error: Some("edge list rejected: cannot parse edge list line 2".into()),
        warnings: Some(vec!["kronfit.compute_threads=3 is ignored".to_string()]),
    };
    let back: JobResponse = from_str(&to_string(&failed)).unwrap();
    assert_eq!(back, failed);
}

#[test]
fn sample_and_health_round_trip() {
    let sample_req =
        SampleRequest { theta: InitiatorSpec { a: 0.9, b: 0.5, c: 0.2 }, k: 10, seed: 77 };
    let back: SampleRequest = from_str(&to_string(&sample_req)).unwrap();
    assert_eq!(back, sample_req);

    let sample_resp =
        SampleResponse { nodes: 1024, edges: 2981, edge_list: "# 1024 nodes\n0\t1\n".to_string() };
    let back: SampleResponse = from_str(&to_string(&sample_resp)).unwrap();
    assert_eq!(back, sample_resp);

    let health = HealthResponse {
        status: "ok".to_string(),
        service: "kronpriv-server".to_string(),
        jobs_submitted: 12,
        uptime_seconds: 3600,
        compute_threads: 4,
        jobs_queued: 1,
        jobs_running: 2,
        jobs_done: 8,
        jobs_failed: 1,
        datasets: 3,
        data_dir: Some("/var/lib/kronpriv".to_string()),
    };
    let back: HealthResponse = from_str(&to_string(&health)).unwrap();
    assert_eq!(back, health);
    // An in-memory server reports no data directory; the field stays present as null.
    let in_memory = HealthResponse { data_dir: None, ..health };
    let text = to_string(&in_memory);
    assert!(text.contains("\"data_dir\":null"), "{text}");
    let back: HealthResponse = from_str(&text).unwrap();
    assert_eq!(back, in_memory);
}

#[test]
fn error_payloads_have_the_documented_shape() {
    let body = ErrorBody {
        error: "epsilon must be positive, got -1".to_string(),
        code: "bad_request".to_string(),
        detail: None,
        remaining_epsilon: None,
        remaining_delta: None,
    };
    let text = to_string(&body);
    assert_eq!(
        text,
        "{\"error\":\"epsilon must be positive, got -1\",\"code\":\"bad_request\",\
         \"detail\":null,\"remaining_epsilon\":null,\"remaining_delta\":null}"
    );
    let back: ErrorBody = from_str(&text).unwrap();
    assert_eq!(back, body);
    // A budget refusal carries the remaining budget so clients can plan their next draw.
    let refused = ErrorBody {
        error: "privacy budget exhausted for dataset \"ca-hepph\"".to_string(),
        code: "budget_exhausted".to_string(),
        detail: Some("remaining epsilon 0.100000, remaining delta 0.000000".to_string()),
        remaining_epsilon: Some(0.1),
        remaining_delta: Some(0.0),
    };
    let back: ErrorBody = from_str(&to_string(&refused)).unwrap();
    assert_eq!(back, refused);
    // Unknown fields in an error payload are tolerated by clients using these types too.
    let back: ErrorBody =
        from_str("{\"error\": \"x\", \"code\": \"bad_request\", \"trace_id\": \"abc\"}").unwrap();
    assert_eq!(back.error, "x");
}

#[test]
fn wire_documents_are_deterministic() {
    // The writer emits object keys in declaration order with shortest-round-trip floats, so the
    // same value always renders to the same bytes — the property the reproducibility guarantee
    // of /api/estimate rests on.
    let doc = EstimateResult {
        seed: 1,
        params: BudgetSpec { epsilon: 0.1, delta: 0.001 },
        theta: InitiatorSpec { a: 0.9999999999999999, b: 0.1, c: 0.1 },
        k: 3,
        objective_value: f64::MIN_POSITIVE,
        evaluations: 0,
        private_statistics: [0.1 + 0.2, 0.0, -0.0, 1e300],
        triangle_release: None,
        degree_sequence: None,
    };
    let first = to_string(&doc);
    let second = to_string(&doc);
    assert_eq!(first, second);
    let reparsed: EstimateResult = from_str(&first).unwrap();
    assert_eq!(to_string(&reparsed), first);
}
