//! The published numbers of Table 1: the (a, b, c) estimates the paper reports for each network
//! under the three estimators, at ε = 0.2, δ = 0.01.
//!
//! These are used two ways: the KronFit column doubles as the generator parameters of the
//! dataset stand-ins (see `dataset.rs`), and the whole table is the reference the `table1`
//! benchmark harness prints next to the values measured by this reproduction (EXPERIMENTS.md
//! records both).

use kronpriv_json::impl_to_json_struct;
use kronpriv_skg::Initiator2;

/// One row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Network name as printed in the paper.
    pub network: &'static str,
    /// Node count of the original network as reported in the paper (figure captions).
    pub nodes: usize,
    /// Edge count of the original network as reported in the paper (figure captions).
    pub edges: usize,
    /// Kronecker order used for the fits (`2^k ≥ nodes`).
    pub k: u32,
    /// The "KronFit" column.
    pub kronfit: Initiator2,
    /// The "KronMom" column.
    pub kronmom: Initiator2,
    /// The "Private" column (ε = 0.2, δ = 0.01).
    pub private: Initiator2,
}

impl_to_json_struct!(Table1Row { network, nodes, edges, k, kronfit, kronmom, private });

/// The four rows of Table 1. The synthetic row's "generating" parameters are
/// `[0.99 0.45; 0.45 0.25]` with `k = 14`.
pub fn paper_table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            network: "CA-GrQc",
            nodes: 5242,
            edges: 28980,
            k: 13,
            kronfit: Initiator2::new(0.999, 0.245, 0.691),
            kronmom: Initiator2::new(1.000, 0.4674, 0.2790),
            private: Initiator2::new(1.000, 0.4618, 0.2930),
        },
        Table1Row {
            network: "CA-HepTh",
            nodes: 9877,
            edges: 51971,
            k: 14,
            kronfit: Initiator2::new(0.999, 0.271, 0.587),
            kronmom: Initiator2::new(1.000, 0.4012, 0.3789),
            private: Initiator2::new(1.000, 0.4048, 0.3720),
        },
        Table1Row {
            network: "AS20",
            nodes: 6474,
            edges: 26467,
            k: 13,
            kronfit: Initiator2::new(0.987, 0.571, 0.049),
            kronmom: Initiator2::new(1.000, 0.6300, 0.000),
            private: Initiator2::new(1.000, 0.6286, 0.000),
        },
        Table1Row {
            network: "Synthetic",
            nodes: 16384,
            edges: 0, // the paper does not report the realized edge count of its synthetic graph
            k: 14,
            kronfit: Initiator2::new(0.9523, 0.4743, 0.2493),
            kronmom: Initiator2::new(0.9894, 0.5396, 0.2388),
            private: Initiator2::new(0.9924, 0.5343, 0.2466),
        },
    ]
}

/// The generating parameters of the paper's synthetic Kronecker graph.
pub fn synthetic_source_parameters() -> Initiator2 {
    Initiator2::new(0.99, 0.45, 0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_four_rows_with_the_papers_networks() {
        let rows = paper_table1();
        assert_eq!(rows.len(), 4);
        let names: Vec<&str> = rows.iter().map(|r| r.network).collect();
        assert_eq!(names, vec!["CA-GrQc", "CA-HepTh", "AS20", "Synthetic"]);
    }

    #[test]
    fn kronecker_orders_cover_the_node_counts() {
        for row in paper_table1() {
            assert!(1usize << row.k >= row.nodes, "{}: 2^{} < {}", row.network, row.k, row.nodes);
            assert!(1usize << (row.k - 1) < row.nodes.max(2), "{}: order too large", row.network);
        }
    }

    #[test]
    fn private_column_is_close_to_kronmom_column() {
        // The paper's headline observation: the private estimates track the non-private
        // moment-based estimates closely (within ~0.02 per entry).
        for row in paper_table1() {
            assert!(
                row.private.distance(&row.kronmom) < 0.03,
                "{}: {:?} vs {:?}",
                row.network,
                row.private,
                row.kronmom
            );
        }
    }

    #[test]
    fn all_parameters_are_canonical_probabilities() {
        for row in paper_table1() {
            for theta in [row.kronfit, row.kronmom, row.private] {
                for p in theta.as_array() {
                    assert!((0.0..=1.0).contains(&p));
                }
            }
        }
    }

    #[test]
    fn synthetic_source_matches_the_paper() {
        let theta = synthetic_source_parameters();
        assert_eq!(theta.as_array(), [0.99, 0.45, 0.25]);
    }
}
