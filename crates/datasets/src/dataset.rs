//! Dataset registry and stand-in generation.
//!
//! Each [`Dataset`] corresponds to one evaluation graph of the paper. Calling
//! [`Dataset::generate`] produces the stand-in deterministically from a seed; calling
//! [`Dataset::load_or_generate`] first looks for the real SNAP edge list under a caller-supplied
//! directory (file names match SNAP's: `ca-GrQc.txt`, `ca-HepTh.txt`, `as20000102.txt`) so that
//! users with the original data reproduce the paper against it directly.

use crate::table1::{paper_table1, synthetic_source_parameters, Table1Row};
use kronpriv_graph::io::read_edge_list;
use kronpriv_graph::Graph;
use kronpriv_json::{impl_json_enum, impl_to_json_struct};
use kronpriv_skg::sample::{sample_fast, SamplerOptions};
use kronpriv_skg::Initiator2;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// The four evaluation graphs of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// arXiv general-relativity co-authorship network (N = 5,242, E = 28,980).
    CaGrQc,
    /// arXiv high-energy-physics-theory co-authorship network (N = 9,877, E = 51,971).
    CaHepTh,
    /// Autonomous-systems topology from 2 January 2000 (N = 6,474, E = 26,467).
    As20,
    /// The paper's synthetic stochastic Kronecker graph (Θ = [0.99 0.45; 0.45 0.25], k = 14).
    SyntheticKronecker,
}

/// Static description of a dataset: the paper's reported sizes, the Kronecker order, and the
/// parameters used to build the stand-in.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMetadata {
    /// Which dataset this describes.
    pub dataset: Dataset,
    /// Display name matching the paper.
    pub name: &'static str,
    /// Node count of the original network (paper figure captions).
    pub paper_nodes: usize,
    /// Edge count of the original network (paper figure captions).
    pub paper_edges: usize,
    /// Kronecker order used both for fitting and for the stand-in generator.
    pub k: u32,
    /// Initiator used to generate the stand-in.
    pub generator: Initiator2,
    /// SNAP file name this dataset corresponds to (None for the synthetic graph).
    pub snap_file: Option<&'static str>,
}

impl_json_enum!(Dataset { CaGrQc, CaHepTh, As20, SyntheticKronecker });

impl_to_json_struct!(DatasetMetadata {
    dataset,
    name,
    paper_nodes,
    paper_edges,
    k,
    generator,
    snap_file,
});

impl Dataset {
    /// All four datasets in the order the paper presents them.
    pub fn all() -> [Dataset; 4] {
        [Dataset::CaGrQc, Dataset::CaHepTh, Dataset::As20, Dataset::SyntheticKronecker]
    }

    /// The three real-network datasets (everything except the synthetic source graph).
    pub fn real_networks() -> [Dataset; 3] {
        [Dataset::CaGrQc, Dataset::CaHepTh, Dataset::As20]
    }

    /// The paper's Table 1 row for this dataset.
    pub fn table1_row(&self) -> Table1Row {
        let index = match self {
            Dataset::CaGrQc => 0,
            Dataset::CaHepTh => 1,
            Dataset::As20 => 2,
            Dataset::SyntheticKronecker => 3,
        };
        paper_table1().swap_remove(index)
    }

    /// Static metadata, including the stand-in generator parameters.
    ///
    /// For the real networks the stand-in generator is the paper's published **KronMom**
    /// initiator for that network (Table 1): the moment-based fit reproduces the original's
    /// edge/wedge/triangle/3-star counts far more closely than the KronFit fit does (that gap is
    /// the entire motivation for the moment estimator), so it yields the more faithful stand-in.
    /// For the synthetic dataset the generator is the true source initiator.
    pub fn metadata(&self) -> DatasetMetadata {
        let row = self.table1_row();
        match self {
            Dataset::CaGrQc => DatasetMetadata {
                dataset: *self,
                name: "CA-GrQc",
                paper_nodes: row.nodes,
                paper_edges: row.edges,
                k: row.k,
                generator: row.kronmom,
                snap_file: Some("ca-GrQc.txt"),
            },
            Dataset::CaHepTh => DatasetMetadata {
                dataset: *self,
                name: "CA-HepTh",
                paper_nodes: row.nodes,
                paper_edges: row.edges,
                k: row.k,
                generator: row.kronmom,
                snap_file: Some("ca-HepTh.txt"),
            },
            Dataset::As20 => DatasetMetadata {
                dataset: *self,
                name: "AS20",
                paper_nodes: row.nodes,
                paper_edges: row.edges,
                k: row.k,
                generator: row.kronmom,
                snap_file: Some("as20000102.txt"),
            },
            Dataset::SyntheticKronecker => DatasetMetadata {
                dataset: *self,
                name: "Synthetic",
                paper_nodes: 1 << 14,
                paper_edges: 0,
                k: 14,
                generator: synthetic_source_parameters(),
                snap_file: None,
            },
        }
    }

    /// Generates the stand-in graph deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Graph {
        let meta = self.metadata();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6b72_6f6e_7072_6976);
        sample_fast(&meta.generator, meta.k, &SamplerOptions::default(), &mut rng)
    }

    /// Loads the real SNAP edge list from `data_dir` if present, otherwise generates the
    /// stand-in. Returns the graph together with a flag saying whether real data was used.
    pub fn load_or_generate(&self, data_dir: Option<&Path>, seed: u64) -> (Graph, bool) {
        if let (Some(dir), Some(file)) = (data_dir, self.metadata().snap_file) {
            let path = dir.join(file);
            if path.exists() {
                if let Ok(graph) = read_edge_list(&path) {
                    return (graph, true);
                }
            }
        }
        (self.generate(seed), false)
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.metadata().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_graph::MatchingStatistics;

    #[test]
    fn all_datasets_have_consistent_metadata() {
        for ds in Dataset::all() {
            let meta = ds.metadata();
            assert_eq!(meta.dataset, ds);
            assert!(1usize << meta.k >= meta.paper_nodes);
            assert!(!meta.name.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Dataset::CaGrQc.generate(7);
        let b = Dataset::CaGrQc.generate(7);
        let c = Dataset::CaGrQc.generate(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn standins_land_near_the_papers_edge_counts() {
        // The stand-ins are SKG realizations from the published KronMom parameters, so their
        // edge counts should be the same order of magnitude as the original networks'. (They do
        // not match exactly: the published parameters were fitted against the real N-node graph
        // while the stand-in realizes the model on the padded 2^k nodes, and the moment fit
        // itself balances four features rather than pinning the edge count.)
        for ds in Dataset::real_networks() {
            let meta = ds.metadata();
            let g = ds.generate(1);
            let ratio = g.edge_count() as f64 / meta.paper_edges as f64;
            assert!(
                (0.3..=3.0).contains(&ratio),
                "{}: stand-in edges {} vs paper {} (ratio {ratio:.2})",
                meta.name,
                g.edge_count(),
                meta.paper_edges
            );
        }
    }

    #[test]
    fn standins_have_heavy_tailed_degree_distributions() {
        for ds in Dataset::real_networks() {
            let g = ds.generate(2);
            let max_d = g.max_degree() as f64;
            let avg_d = g.average_degree();
            assert!(max_d > 6.0 * avg_d, "{ds}: max {max_d} avg {avg_d}");
        }
    }

    #[test]
    fn standins_contain_triangles_and_wedges() {
        for ds in [Dataset::CaGrQc, Dataset::CaHepTh] {
            let g = ds.generate(3);
            let stats = MatchingStatistics::of_graph(&g);
            assert!(stats.triangles > 0.0, "{ds} has no triangles");
            assert!(stats.hairpins > stats.edges, "{ds} wedge count implausibly low");
        }
    }

    #[test]
    fn synthetic_dataset_uses_the_source_parameters() {
        let meta = Dataset::SyntheticKronecker.metadata();
        assert_eq!(meta.generator.as_array(), [0.99, 0.45, 0.25]);
        assert_eq!(meta.k, 14);
        let g = Dataset::SyntheticKronecker.generate(4);
        assert_eq!(g.node_count(), 16384);
    }

    #[test]
    fn load_or_generate_falls_back_to_the_standin() {
        let (g, real) = Dataset::As20.load_or_generate(Some(Path::new("/nonexistent")), 5);
        assert!(!real);
        assert_eq!(g.node_count(), 8192);
        let (g2, real2) = Dataset::SyntheticKronecker.load_or_generate(None, 5);
        assert!(!real2);
        assert_eq!(g2.node_count(), 16384);
    }

    #[test]
    fn load_or_generate_prefers_real_data_when_present() {
        let dir = std::env::temp_dir().join("kronpriv-datasets-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("as20000102.txt");
        std::fs::write(&path, "# tiny fake\n0 1\n1 2\n2 0\n").unwrap();
        let (g, real) = Dataset::As20.load_or_generate(Some(&dir), 6);
        assert!(real);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn table1_rows_match_dataset_names() {
        for ds in Dataset::all() {
            assert_eq!(ds.table1_row().network, ds.metadata().name);
        }
    }
}
