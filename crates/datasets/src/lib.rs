//! `kronpriv-datasets` — the evaluation datasets of the paper, as reproducible stand-ins.
//!
//! The paper evaluates on three SNAP networks (CA-GrQc, CA-HepTh, AS20) and one synthetic
//! stochastic Kronecker graph. The SNAP files are not redistributable inside this repository,
//! so each real network is replaced by a *stand-in*: a stochastic Kronecker graph realized from
//! the KronFit parameters the paper itself reports for that network in Table 1. The paper's own
//! argument (Section 4.2 and Leskovec et al.) is that such a graph reproduces the degree
//! distribution, hop plot, scree plot and network values of the original; it therefore exercises
//! the same code paths (heavy-tailed degrees, sparse adjacency, large-but-bounded triangle
//! sensitivity) and preserves the shape of every comparison in the evaluation. The substitution
//! table in `DESIGN.md` records this decision.
//!
//! If the actual SNAP edge-list files are available locally, [`Dataset::load_or_generate`]
//! prefers them, so the experiments can also be run against the real data without code changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod table1;

pub use dataset::{Dataset, DatasetMetadata};
pub use table1::{paper_table1, Table1Row};
