//! Executor instrumentation: pre-resolved handles into the process-global
//! [`kronpriv_obs::Registry`], so the hot dispatch path pays only relaxed atomic adds and
//! never a registry lookup.
//!
//! Series (all under the `kronpriv_par_` prefix):
//!
//! * `kronpriv_par_calls_total{mode, work}` — map/fold-reduce calls, by cutoff decision
//!   (`inline` / `pooled`) and [`crate::Work`] class (`light` / `moderate` / `heavy` /
//!   `custom`).
//! * `kronpriv_par_chunks_total{mode}` — planned chunks, by cutoff decision.
//! * `kronpriv_par_helpers_engaged_total` — helper slots published across pooled calls.
//! * `kronpriv_par_call_ns{mode}` — whole-call wall time histogram.
//! * `kronpriv_par_queue_wait_ns` — publication-to-worker-attach latency histogram.
//! * `kronpriv_par_worker_busy_ns_total{worker}` — nanoseconds each pooled worker spent
//!   running claimed jobs.
//!
//! Everything here is reporting-only: the executor never reads these values back.

use kronpriv_obs::{Counter, Histogram, Registry};
use std::sync::{Arc, OnceLock};

/// Index of the inline mode in the per-mode instrument arrays.
pub(crate) const INLINE: usize = 0;
/// Index of the pooled mode in the per-mode instrument arrays.
pub(crate) const POOLED: usize = 1;

const MODES: [&str; 2] = ["inline", "pooled"];
const WORK_CLASSES: [&str; 4] = ["light", "moderate", "heavy", "custom"];

/// The executor's resolved instrument handles.
pub(crate) struct ExecMetrics {
    /// `[mode][work class]` call counts.
    pub(crate) calls: [[Arc<Counter>; 4]; 2],
    /// `[mode]` planned chunk counts.
    pub(crate) chunks: [Arc<Counter>; 2],
    /// Helper slots published across all pooled calls.
    pub(crate) helpers_engaged: Arc<Counter>,
    /// `[mode]` whole-call wall time.
    pub(crate) call_ns: [Arc<Histogram>; 2],
    /// Publication-to-attach latency, recorded once per worker attach.
    pub(crate) queue_wait_ns: Arc<Histogram>,
}

/// The process-global executor metrics, resolved on first use.
pub(crate) fn exec_metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = Registry::global();
        ExecMetrics {
            calls: MODES.map(|mode| {
                WORK_CLASSES.map(|work| {
                    registry.counter("kronpriv_par_calls_total", &[("mode", mode), ("work", work)])
                })
            }),
            chunks: MODES
                .map(|mode| registry.counter("kronpriv_par_chunks_total", &[("mode", mode)])),
            helpers_engaged: registry.counter("kronpriv_par_helpers_engaged_total", &[]),
            call_ns: MODES
                .map(|mode| registry.histogram("kronpriv_par_call_ns", &[("mode", mode)])),
            queue_wait_ns: registry.histogram("kronpriv_par_queue_wait_ns", &[]),
        }
    })
}

/// The busy-time counter for pooled worker `index`, resolved once at worker spawn.
pub(crate) fn worker_busy_counter(index: usize) -> Arc<Counter> {
    Registry::global()
        .counter("kronpriv_par_worker_busy_ns_total", &[("worker", &index.to_string())])
}
