//! `kronpriv-par` — a deterministic parallel compute layer over [`std::thread::scope`].
//!
//! The hot kernels of Algorithm 1 (triangle counting, the smooth-sensitivity bound, the
//! structural-agreement statistics) are all "map a pure function over an index range, combine
//! the pieces" computations. This crate runs them on multiple threads while keeping one hard
//! guarantee: **the result is byte-identical for every thread count**, including one. That
//! guarantee is what lets the rest of the workspace (seeded experiments, the server's
//! identical-seed ⇒ identical-response contract) treat the thread count as a pure performance
//! knob.
//!
//! Determinism comes from two rules, both enforced here rather than by callers:
//!
//! 1. **Fixed chunk boundaries.** The index range is split into chunks whose boundaries depend
//!    only on the range length and the caller's chunk size — never on the thread count. Threads
//!    *claim* chunks dynamically (so load imbalance costs nothing), but the set of chunks is the
//!    same for 1 thread and for 64.
//! 2. **Reduction in chunk order.** [`Parallelism::map_reduce`] folds the per-chunk results in
//!    chunk index order on the calling thread, so even non-associative combines (floating-point
//!    sums) give the same answer regardless of which thread computed which chunk.
//!
//! [`Parallelism::try_map_reduce`] extends the first entry point to fallible per-chunk tasks:
//! the error that comes back is always the one from the lowest-index failing chunk, so even the
//! failure mode is byte-identical for every thread count.
//!
//! [`Parallelism::fold_reduce`] trades the second rule for memory: each *worker* folds chunks
//! into one private accumulator (e.g. an `O(n)` counter array) and the accumulators are merged
//! afterwards. Which chunks land in which accumulator does depend on scheduling, so that entry
//! point requires an associative **and commutative** merge (integer sums, `max`, bitwise or) —
//! exactly the merges the workspace kernels use — and then the same byte-identical guarantee
//! holds.
//!
//! Worker panics are re-raised on the calling thread (after all workers have been joined), so
//! existing panic containment — e.g. the server job store's `catch_unwind` — keeps working.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Minimum number of chunks before threads are spawned at all. Below this the input is too
/// small for thread spawn/join (tens of microseconds) to amortize, so both entry points take
/// their sequential path — a decision that depends only on `(len, chunk_size)`, never on the
/// thread count, so it cannot break the determinism guarantee (the sequential path is the
/// reference the parallel path must match anyway).
const MIN_PARALLEL_CHUNKS: usize = 4;

/// The compute-thread knob: how many worker threads a kernel may use.
///
/// `Parallelism` is deliberately cheap to copy and carries no pool: every `map_reduce` /
/// `fold_reduce` call spawns scoped threads and joins them before returning. For the kernel
/// sizes this workspace cares about (milliseconds to minutes of work) spawn cost is noise, and
/// scoped threads keep the API free of lifetimes and shutdown protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Creates a knob for exactly `threads` workers; `0` means "ask the OS"
    /// (see [`Parallelism::auto`]).
    pub fn new(threads: usize) -> Self {
        match NonZeroUsize::new(threads) {
            Some(threads) => Parallelism { threads },
            None => Self::auto(),
        }
    }

    /// One worker per available hardware thread ([`std::thread::available_parallelism`]),
    /// falling back to 1 when the OS cannot say.
    pub fn auto() -> Self {
        let threads = thread::available_parallelism().unwrap_or(NonZeroUsize::MIN);
        Parallelism { threads }
    }

    /// Exactly one worker: the kernels degenerate to their plain sequential loops (no threads
    /// are spawned), which is also the reference the determinism tests compare against.
    pub fn sequential() -> Self {
        Parallelism { threads: NonZeroUsize::MIN }
    }

    /// The configured worker count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Deterministic chunked map-reduce over `0..len`.
    ///
    /// `map` is applied to each fixed chunk (the last one may be short) and must be a pure
    /// function of its range; `fold` combines the per-chunk results **in chunk order** on the
    /// calling thread, starting from `init`. Because the chunk boundaries depend only on
    /// `len` and `chunk_size`, the result is byte-identical for every thread count even when
    /// `fold` is not associative (floating-point accumulation).
    pub fn map_reduce<M, A>(
        &self,
        len: usize,
        chunk_size: usize,
        map: impl Fn(Range<usize>) -> M + Sync,
        fold: impl FnMut(A, M) -> A,
        init: A,
    ) -> A
    where
        M: Send,
    {
        // Infallible tasks are the `Result`-free view of the fallible entry point, so the two
        // cannot drift apart.
        match self.try_map_reduce(
            len,
            chunk_size,
            |range| Ok::<M, std::convert::Infallible>(map(range)),
            fold,
            init,
        ) {
            Ok(acc) => acc,
        }
    }

    /// Deterministic chunked map-reduce for **fallible** per-chunk tasks.
    ///
    /// Like [`Parallelism::map_reduce`], but `map` may fail. On success every chunk result is
    /// folded in chunk order; on failure the returned error is the one produced by the
    /// **lowest-index failing chunk**, which keeps the outcome byte-identical for every thread
    /// count. To preserve that guarantee every chunk is evaluated even after a failure has been
    /// observed — errors are expected to be exceptional, so the wasted work does not matter; a
    /// caller that needs cheap early exit should encode the failure in `M` and short-circuit in
    /// `fold` instead.
    pub fn try_map_reduce<M, A, E>(
        &self,
        len: usize,
        chunk_size: usize,
        map: impl Fn(Range<usize>) -> Result<M, E> + Sync,
        mut fold: impl FnMut(A, M) -> A,
        init: A,
    ) -> Result<A, E>
    where
        M: Send,
        E: Send,
    {
        let chunk_size = chunk_size.max(1);
        let chunks = len.div_ceil(chunk_size);
        let workers = self.threads().min(chunks);
        if workers <= 1 || chunks < MIN_PARALLEL_CHUNKS {
            let mut acc = init;
            for c in 0..chunks {
                acc = fold(acc, map(chunk_range(c, chunk_size, len))?);
            }
            return Ok(acc);
        }

        let mut slots: Vec<Option<Result<M, E>>> = Vec::with_capacity(chunks);
        slots.resize_with(chunks, || None);
        let next = AtomicUsize::new(0);
        let per_worker = run_workers(workers, || {
            let mut out: Vec<(usize, Result<M, E>)> = Vec::new();
            loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    break;
                }
                out.push((c, map(chunk_range(c, chunk_size, len))));
            }
            out
        });
        for (c, m) in per_worker.into_iter().flatten() {
            slots[c] = Some(m);
        }
        let mut acc = init;
        for m in slots {
            acc = fold(acc, m.expect("every chunk was claimed exactly once")?);
        }
        Ok(acc)
    }

    /// Chunked fold with one private accumulator **per worker**, for kernels whose natural
    /// accumulator is large (an `O(n)` counter array) and whose merge is cheap.
    ///
    /// Each worker builds an accumulator with `identity`, folds every chunk it claims into it
    /// via `fold_chunk`, and the per-worker accumulators are merged left-to-right in worker
    /// order with `merge`. Chunk boundaries are fixed exactly as in
    /// [`Parallelism::map_reduce`], but chunk→worker assignment is dynamic, so the result is
    /// thread-count-independent **iff `merge` is associative and commutative** and `fold_chunk`
    /// commutes across chunks (true for the element-wise integer sums, `max`es and bitwise ors
    /// the workspace kernels use). With one worker this is the plain sequential fold and
    /// `merge` is never called.
    pub fn fold_reduce<A>(
        &self,
        len: usize,
        chunk_size: usize,
        identity: impl Fn() -> A + Sync,
        fold_chunk: impl Fn(&mut A, Range<usize>) + Sync,
        mut merge: impl FnMut(A, A) -> A,
    ) -> A
    where
        A: Send,
    {
        let chunk_size = chunk_size.max(1);
        let chunks = len.div_ceil(chunk_size);
        let workers = self.threads().min(chunks.max(1));
        if workers <= 1 || chunks < MIN_PARALLEL_CHUNKS {
            let mut acc = identity();
            for c in 0..chunks {
                fold_chunk(&mut acc, chunk_range(c, chunk_size, len));
            }
            return acc;
        }

        let next = AtomicUsize::new(0);
        let accs = run_workers(workers, || {
            let mut acc = identity();
            loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    break;
                }
                fold_chunk(&mut acc, chunk_range(c, chunk_size, len));
            }
            acc
        });
        let mut accs = accs.into_iter();
        let first = accs.next().expect("at least one worker ran");
        accs.fold(first, &mut merge)
    }
}

impl Default for Parallelism {
    /// Defaults to [`Parallelism::auto`]: results never depend on the thread count, so the
    /// fastest setting is the safe default.
    fn default() -> Self {
        Self::auto()
    }
}

/// The fixed boundaries of chunk `c`: a pure function of `(c, chunk_size, len)`.
fn chunk_range(c: usize, chunk_size: usize, len: usize) -> Range<usize> {
    let start = c * chunk_size;
    start..(start + chunk_size).min(len)
}

/// Spawns `workers` scoped threads running `work`, joins them all, and returns their results in
/// worker order. If any worker panicked, every other worker is still joined first and then the
/// first panic (in worker order) is resumed on the calling thread.
fn run_workers<T: Send>(workers: usize, work: impl Fn() -> T + Sync) -> Vec<T> {
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers).map(|_| scope.spawn(&work)).collect();
        let mut results = Vec::with_capacity(workers);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(value) => results.push(value),
                Err(payload) => {
                    if panic.is_none() {
                        panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn thread_counts_resolve() {
        assert_eq!(Parallelism::sequential().threads(), 1);
        assert_eq!(Parallelism::new(7).threads(), 7);
        assert!(Parallelism::new(0).threads() >= 1);
        assert!(Parallelism::auto().threads() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::auto());
    }

    #[test]
    fn map_reduce_sums_integers_for_any_thread_count() {
        let expected: u64 = (0..10_000u64).sum();
        for threads in [1, 2, 3, 8, 32] {
            let par = Parallelism::new(threads);
            let got = par.map_reduce(
                10_000,
                97,
                |range| range.map(|i| i as u64).sum::<u64>(),
                |acc: u64, m| acc + m,
                0,
            );
            assert_eq!(got, expected, "threads {threads}");
        }
    }

    #[test]
    fn map_reduce_is_bit_identical_for_float_folds() {
        // A deliberately non-associative fold: floating-point accumulation of values at wildly
        // different magnitudes. Chunk-order reduction must make every thread count agree with
        // the single-threaded chunked fold bit for bit.
        let value =
            |i: usize| ((i % 17) as f64).exp() * if i.is_multiple_of(3) { 1e-12 } else { 1e3 };
        let fold = |par: Parallelism| {
            par.map_reduce(
                5_000,
                61,
                |range| range.map(value).sum::<f64>(),
                |acc: f64, m| acc + m,
                0.0,
            )
        };
        let reference = fold(Parallelism::sequential());
        for threads in [2, 5, 16] {
            assert_eq!(
                fold(Parallelism::new(threads)).to_bits(),
                reference.to_bits(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn map_reduce_visits_every_chunk_exactly_once() {
        for threads in [1, 4] {
            let par = Parallelism::new(threads);
            let ranges = par.map_reduce(
                103,
                10,
                |range| vec![range],
                |mut acc: Vec<Range<usize>>, m| {
                    acc.extend(m);
                    acc
                },
                Vec::new(),
            );
            // Chunk-order reduction ⇒ the ranges tile 0..103 in order.
            assert_eq!(ranges.len(), 11);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, 103);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
    }

    #[test]
    fn fold_reduce_matches_sequential_for_commutative_merges() {
        // Element-wise histogram accumulation: the shape the per-node kernels use.
        let reference = Parallelism::sequential().fold_reduce(
            1_000,
            13,
            || vec![0u64; 10],
            |acc, range| {
                for i in range {
                    acc[i % 10] += (i as u64) % 7;
                }
            },
            |a, _b| a,
        );
        for threads in [2, 8] {
            let got = Parallelism::new(threads).fold_reduce(
                1_000,
                13,
                || vec![0u64; 10],
                |acc, range| {
                    for i in range {
                        acc[i % 10] += (i as u64) % 7;
                    }
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
            assert_eq!(got, reference, "threads {threads}");
        }
    }

    #[test]
    fn try_map_reduce_folds_successes_in_chunk_order() {
        for threads in [1, 2, 8] {
            let par = Parallelism::new(threads);
            let got: Result<Vec<usize>, ()> = par.try_map_reduce(
                100,
                9,
                |range| Ok(range.start),
                |mut acc: Vec<usize>, start| {
                    acc.push(start);
                    acc
                },
                Vec::new(),
            );
            let expected: Vec<usize> = (0..100).step_by(9).collect();
            assert_eq!(got.unwrap(), expected, "threads {threads}");
        }
    }

    #[test]
    fn try_map_reduce_reports_the_lowest_index_error_for_any_thread_count() {
        // Chunks 3 and 7 both fail; every thread count must report chunk 3's error, matching
        // the sequential scan.
        for threads in [1, 2, 8] {
            let par = Parallelism::new(threads);
            let got: Result<usize, String> = par.try_map_reduce(
                100,
                10,
                |range| {
                    let chunk = range.start / 10;
                    if chunk == 3 || chunk == 7 {
                        Err(format!("chunk {chunk} failed"))
                    } else {
                        Ok(range.len())
                    }
                },
                |acc: usize, m| acc + m,
                0,
            );
            assert_eq!(got.unwrap_err(), "chunk 3 failed", "threads {threads}");
        }
    }

    #[test]
    fn try_map_reduce_empty_range_is_ok() {
        let got: Result<u32, ()> =
            Parallelism::new(4).try_map_reduce(0, 8, |_| Err(()), |a: u32, m: u32| a + m, 7);
        assert_eq!(got.unwrap(), 7);
    }

    #[test]
    fn empty_ranges_return_the_identity() {
        let par = Parallelism::new(4);
        assert_eq!(par.map_reduce(0, 8, |_| 1u32, |a: u32, m| a + m, 0), 0);
        assert_eq!(par.fold_reduce(0, 8, || 41u32, |acc, _| *acc += 1, |a, b| a + b), 41);
    }

    #[test]
    fn oversized_thread_counts_and_tiny_inputs_work() {
        let par = Parallelism::new(64);
        let got = par.map_reduce(3, 1000, |range| range.len(), |a: usize, m| a + m, 0);
        assert_eq!(got, 3);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        for threads in [1, 4] {
            let par = Parallelism::new(threads);
            let result = catch_unwind(AssertUnwindSafe(|| {
                par.map_reduce(
                    100,
                    10,
                    |range| {
                        if range.contains(&55) {
                            panic!("kernel exploded");
                        }
                        range.len()
                    },
                    |a: usize, m| a + m,
                    0,
                )
            }));
            assert!(result.is_err(), "threads {threads}");
        }
    }
}
