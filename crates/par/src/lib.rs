//! `kronpriv-par` — a deterministic parallel compute layer built around a persistent
//! [`Executor`] worker pool.
//!
//! The hot kernels of Algorithm 1 (triangle counting, the smooth-sensitivity bound, the
//! structural-agreement statistics) are all "map a pure function over an index range, combine
//! the pieces" computations. This crate runs them on a pool of long-lived worker threads while
//! keeping one hard guarantee: **the result is byte-identical for every worker count**,
//! including one. That guarantee is what lets the rest of the workspace (seeded experiments,
//! the server's identical-seed ⇒ identical-response contract) treat the thread count as a pure
//! performance knob.
//!
//! Determinism comes from two rules, both enforced here rather than by callers:
//!
//! 1. **Fixed chunk boundaries.** The index range is split into chunks whose boundaries depend
//!    only on the range length and the caller's chunk size — never on the thread count. Threads
//!    *claim* chunks dynamically (so load imbalance costs nothing), but the set of chunks is the
//!    same for 1 thread and for 64.
//! 2. **Reduction in chunk order.** [`Executor::map_reduce`] folds the per-chunk results in
//!    chunk index order on the calling thread, so even non-associative combines (floating-point
//!    sums) give the same answer regardless of which thread computed which chunk.
//!
//! [`Executor::try_map_reduce`] extends the first entry point to fallible per-chunk tasks: the
//! error that comes back is always the one from the lowest-index failing chunk, so even the
//! failure mode is byte-identical for every thread count.
//!
//! [`Executor::fold_reduce`] trades the second rule for memory: each *participant* folds chunks
//! into one private accumulator (e.g. an `O(n)` counter array) and the accumulators are merged
//! afterwards. Which chunks land in which accumulator does depend on scheduling, so that entry
//! point requires an associative **and commutative** merge (integer sums, `max`, bitwise or) —
//! exactly the merges the workspace kernels use — and then the same byte-identical guarantee
//! holds.
//!
//! # Executor lifecycle
//!
//! [`Executor::new`] spawns its helper threads **once**; every subsequent `map_reduce` /
//! `fold_reduce` call hands the pool a job through a [`Mutex`]/[`Condvar`] queue instead of
//! paying a `thread::spawn` + `join` round trip (tens of microseconds) per call. The calling
//! thread always participates in its own job, so an `Executor::new(t)` runs a kernel on up to
//! `t` threads using `t - 1` pooled helpers. Dropping the executor drains the pool: workers
//! finish their current task, observe the shutdown flag and exit, and `Drop` joins every one of
//! them — no threads outlive the executor.
//!
//! Nested calls are deadlock-free by construction: a worker that itself calls into the shared
//! executor participates in the nested job inline and, on completion, *retracts* whatever
//! helper slots nobody claimed — it never blocks waiting for an idle worker.
//!
//! A panic inside a kernel closure poisons **only its own call**: every participant runs chunks
//! under `catch_unwind`, the first payload is recorded, remaining chunks are abandoned, and the
//! payload is re-raised on the calling thread after all helpers have detached. The pool threads
//! survive and the next call on the same executor proceeds normally, so existing panic
//! containment — e.g. the server job store's `catch_unwind` — keeps working.
//!
//! # Work-aware sequential cutoff
//!
//! Every entry point takes a [`Work`] hint: the caller's estimate of the cost of one element.
//! When the estimated total work is too small to amortize waking even one helper
//! (`len · ns_per_item < 2 ×` [`SPAWN_AMORTIZATION_NS`]), the call runs inline on the calling
//! thread with no queue traffic at all; above that, the helper count is capped so every
//! participant has at least [`SPAWN_AMORTIZATION_NS`] of estimated work. The decision is a pure
//! function of the input *shape* `(len, chunk_size, work)` — never of the thread count — and
//! the inline path is exactly the reference loop the parallel path must reproduce bit for bit,
//! so the cutoff can never change a result.
//!
//! # Instrumentation
//!
//! Every call records its cutoff decision into the process-global `kronpriv-obs` registry:
//! calls and planned chunks per mode (`inline` / `pooled`) and per [`Work`] class, engaged
//! helper counts, whole-call run time, queue wait from job publication to worker attach, and
//! per-worker busy nanoseconds (`kronpriv_par_*` — see the `metrics` module). The counters are
//! strictly write-only from this crate's point of view: nothing the executor schedules ever
//! depends on an instrument value or a clock reading, so the byte-identical guarantee is
//! untouched (the cutoff remains a pure function of the input shape).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
// lint:allow(determinism-time, reason = "write-only latency instrumentation: Instant readings feed kronpriv-obs histograms and never influence scheduling or results")
use std::time::Instant;

use kronpriv_par_queue::{RawRunnable, Runnable};

mod metrics;
use metrics::{exec_metrics, INLINE, POOLED};

/// Estimated nanoseconds of kernel work needed to amortize handing a job to one pooled helper
/// (a `Condvar` wake plus queue bookkeeping, measured in the tens of microseconds with
/// scheduling jitter). A call runs inline unless every participant — the caller plus each
/// helper — would get at least this much estimated work.
pub const SPAWN_AMORTIZATION_NS: u64 = 100_000;

/// A per-element cost estimate: how many nanoseconds one index of a kernel's range costs.
///
/// The executor multiplies it by the range length to decide, purely from the input shape,
/// whether parallelism can pay for itself (see [`SPAWN_AMORTIZATION_NS`]). The estimate only
/// steers scheduling — results are byte-identical whatever hint is passed — so order-of-
/// magnitude accuracy is all that matters. Use the named classes where they fit and
/// [`Work::per_item_ns`] when the per-element cost is itself a function of the input (e.g. one
/// BFS per element costs `O(nodes + edges)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Work {
    ns_per_item: u64,
}

impl Work {
    /// A few arithmetic operations per element (pool-adjacent-violators steps, noise adds).
    pub const LIGHT: Work = Work::per_item_ns(25);
    /// A short data-dependent scan per element (sorted-neighbor intersections, per-node
    /// degree work).
    pub const MODERATE: Work = Work::per_item_ns(400);
    /// A full objective evaluation or similar multi-microsecond computation per element.
    pub const HEAVY: Work = Work::per_item_ns(20_000);

    /// A custom estimate of `ns` nanoseconds per element (clamped to at least 1).
    pub const fn per_item_ns(ns: u64) -> Work {
        Work { ns_per_item: if ns == 0 { 1 } else { ns } }
    }

    /// Estimated total cost of a `len`-element range.
    fn total_ns(self, len: usize) -> u128 {
        self.ns_per_item as u128 * len as u128
    }

    /// The metrics label for this hint: one of the named classes, or `custom` for any other
    /// [`Work::per_item_ns`] estimate. Used to break the executor counters down by work class.
    pub fn class(self) -> &'static str {
        if self == Work::LIGHT {
            "light"
        } else if self == Work::MODERATE {
            "moderate"
        } else if self == Work::HEAVY {
            "heavy"
        } else {
            "custom"
        }
    }

    /// `class()` as a dense index into the per-class instrument arrays.
    fn class_index(self) -> usize {
        match self.class() {
            "light" => 0,
            "moderate" => 1,
            "heavy" => 2,
            _ => 3,
        }
    }
}

/// The auto thread count, resolved from the OS **once per process** and cached: the server
/// resolves `--compute-threads 0` on every request, and `available_parallelism` is a syscall.
fn auto_thread_count() -> NonZeroUsize {
    static AUTO: OnceLock<NonZeroUsize> = OnceLock::new();
    *AUTO.get_or_init(|| thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
}

/// A persistent deterministic executor: `threads - 1` pooled helper threads plus the calling
/// thread, servicing [`Executor::map_reduce`] / [`Executor::fold_reduce`] /
/// [`Executor::try_map_reduce`] with byte-identical results for every thread count.
///
/// Construction spawns the helpers once; see the crate docs for the lifecycle, panic and
/// work-cutoff contracts. The executor is `Sync`: one instance is meant to be shared (e.g.
/// behind an [`Arc`]) by every component that runs kernels — the server builds exactly one at
/// startup.
pub struct Executor {
    threads: NonZeroUsize,
    /// `None` when `threads == 1`: a sequential executor never spawns or queues anything.
    pool: Option<Pool>,
}

impl Executor {
    /// An executor with exactly `threads` participants (the calling thread plus `threads - 1`
    /// pooled helpers); `0` means "one per available hardware thread" (see [`Executor::auto`]).
    pub fn new(threads: usize) -> Executor {
        let threads = NonZeroUsize::new(threads).unwrap_or_else(auto_thread_count);
        let pool = match threads.get() {
            1 => None,
            t => Some(Pool::start(t - 1)),
        };
        Executor { threads, pool }
    }

    /// One participant per available hardware thread. The OS is asked once per process and the
    /// answer is cached (falling back to 1 when it cannot say).
    pub fn auto() -> Executor {
        Executor::new(0)
    }

    /// Exactly one participant: no helper threads are spawned and every call degenerates to the
    /// plain sequential loop, which is also the reference the determinism tests compare
    /// against.
    pub fn sequential() -> Executor {
        Executor::new(1)
    }

    /// The configured participant count (≥ 1): the calling thread plus the pooled helpers.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Deterministic chunked map-reduce over `0..len`.
    ///
    /// `map` is applied to each fixed chunk (the last one may be short) and must be a pure
    /// function of its range; `fold` combines the per-chunk results **in chunk order** on the
    /// calling thread, starting from `init`. Because the chunk boundaries depend only on
    /// `len` and `chunk_size`, the result is byte-identical for every thread count even when
    /// `fold` is not associative (floating-point accumulation). `work` is the caller's
    /// per-element cost estimate steering the sequential cutoff (see [`Work`]).
    pub fn map_reduce<M, A>(
        &self,
        len: usize,
        chunk_size: usize,
        work: Work,
        map: impl Fn(Range<usize>) -> M + Sync,
        fold: impl FnMut(A, M) -> A,
        init: A,
    ) -> A
    where
        M: Send,
    {
        // Infallible tasks are the `Result`-free view of the fallible entry point, so the two
        // cannot drift apart.
        match self.try_map_reduce(
            len,
            chunk_size,
            work,
            |range| Ok::<M, std::convert::Infallible>(map(range)),
            fold,
            init,
        ) {
            Ok(acc) => acc,
        }
    }

    /// Deterministic chunked map-reduce for **fallible** per-chunk tasks.
    ///
    /// Like [`Executor::map_reduce`], but `map` may fail. On success every chunk result is
    /// folded in chunk order; on failure the returned error is the one produced by the
    /// **lowest-index failing chunk**, which keeps the outcome byte-identical for every thread
    /// count. To preserve that guarantee every chunk is evaluated even after a failure has been
    /// observed — errors are expected to be exceptional, so the wasted work does not matter; a
    /// caller that needs cheap early exit should encode the failure in `M` and short-circuit in
    /// `fold` instead.
    pub fn try_map_reduce<M, A, E>(
        &self,
        len: usize,
        chunk_size: usize,
        work: Work,
        map: impl Fn(Range<usize>) -> Result<M, E> + Sync,
        mut fold: impl FnMut(A, M) -> A,
        init: A,
    ) -> Result<A, E>
    where
        M: Send,
        E: Send,
    {
        let chunk_size = chunk_size.max(1);
        let chunks = len.div_ceil(chunk_size);
        let helpers = self.plan_helpers(len, chunks, work);
        let _call_span = record_call(work, chunks, helpers);
        if helpers == 0 {
            let mut acc = init;
            for c in 0..chunks {
                acc = fold(acc, map(chunk_range(c, chunk_size, len))?);
            }
            return Ok(acc);
        }

        let results: Mutex<Vec<(usize, Result<M, E>)>> = Mutex::new(Vec::with_capacity(chunks));
        let mut job = ChunkJob::new(chunks, |c| {
            let outcome = map(chunk_range(c, chunk_size, len));
            results.lock().expect("no code panics while holding the slot lock").push((c, outcome));
        });
        self.dispatch(&job, helpers);
        let panicked = job.take_panic();
        drop(job);
        if let Some(payload) = panicked {
            panic::resume_unwind(payload);
        }
        let mut collected = results.into_inner().expect("all participants have detached");
        debug_assert_eq!(collected.len(), chunks, "every chunk is claimed exactly once");
        collected.sort_unstable_by_key(|&(c, _)| c);
        let mut acc = init;
        for (_, outcome) in collected {
            acc = fold(acc, outcome?);
        }
        Ok(acc)
    }

    /// Chunked fold with one private accumulator **per participant**, for kernels whose natural
    /// accumulator is large (an `O(n)` counter array) and whose merge is cheap.
    ///
    /// Each participant builds an accumulator with `identity` the first time it claims a chunk,
    /// folds every chunk it claims into it via `fold_chunk`, and the accumulators are merged on
    /// the calling thread with `merge`. Chunk boundaries are fixed exactly as in
    /// [`Executor::map_reduce`], but chunk→participant assignment is dynamic, so the result is
    /// thread-count-independent **iff `merge` is associative and commutative** and `fold_chunk`
    /// commutes across chunks (true for the element-wise integer sums, `max`es and bitwise ors
    /// the workspace kernels use). With one participant this is the plain sequential fold and
    /// `merge` is never called.
    pub fn fold_reduce<A>(
        &self,
        len: usize,
        chunk_size: usize,
        work: Work,
        identity: impl Fn() -> A + Sync,
        fold_chunk: impl Fn(&mut A, Range<usize>) + Sync,
        mut merge: impl FnMut(A, A) -> A,
    ) -> A
    where
        A: Send,
    {
        let chunk_size = chunk_size.max(1);
        let chunks = len.div_ceil(chunk_size);
        let helpers = self.plan_helpers(len, chunks, work);
        let _call_span = record_call(work, chunks, helpers);
        if helpers == 0 {
            let mut acc = identity();
            for c in 0..chunks {
                fold_chunk(&mut acc, chunk_range(c, chunk_size, len));
            }
            return acc;
        }

        let job = FoldJob {
            next: AtomicUsize::new(0),
            chunks,
            chunk_size,
            len,
            identity,
            fold_chunk,
            accumulators: Mutex::new(Vec::new()),
            panic: Mutex::new(None),
        };
        self.dispatch(&job, helpers);
        let (panicked, mut parts) = job.finish();
        if let Some(payload) = panicked {
            panic::resume_unwind(payload);
        }
        // Merge in order of each participant's first claimed chunk: a canonical order that a
        // commutative merge is free to ignore but which keeps runs comparable in practice.
        parts.sort_unstable_by_key(|&(first_chunk, _)| first_chunk);
        let mut parts = parts.into_iter().map(|(_, acc)| acc);
        let first = parts.next().expect("len > 0, so at least one chunk was folded");
        parts.fold(first, &mut merge)
    }

    /// Helper-thread budget for a call, `0` meaning "run inline". A pure function of the input
    /// shape `(len, chunks, work)` and the pool size — never of scheduling — so together with
    /// the fixed chunk boundaries it cannot affect results.
    fn plan_helpers(&self, len: usize, chunks: usize, work: Work) -> usize {
        let Some(pool) = &self.pool else { return 0 };
        if chunks <= 1 {
            return 0;
        }
        // Every participant (the caller included) must have at least the amortization budget of
        // estimated work, otherwise queue traffic dominates the kernel itself.
        let affordable =
            (work.total_ns(len) / SPAWN_AMORTIZATION_NS as u128).min(usize::MAX as u128) as usize;
        pool.workers.len().min(chunks - 1).min(affordable.saturating_sub(1))
    }

    /// Runs `job` on the calling thread plus up to `helpers` pooled workers, returning once
    /// every participant has detached from it.
    fn dispatch(&self, job: &(impl Runnable + Sync), helpers: usize) {
        match &self.pool {
            Some(pool) if helpers > 0 => pool.run_shared(job, helpers),
            _ => job.run(),
        }
    }
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor").field("threads", &self.threads.get()).finish()
    }
}

/// The fixed boundaries of chunk `c`: a pure function of `(c, chunk_size, len)`.
fn chunk_range(c: usize, chunk_size: usize, len: usize) -> Range<usize> {
    let start = c * chunk_size;
    start..(start + chunk_size).min(len)
}

/// Records one executor call's cutoff decision and returns the RAII span timing the call.
/// Reporting only: the returned span exposes nothing the caller could branch on.
fn record_call(work: Work, chunks: usize, helpers: usize) -> kronpriv_obs::Span {
    let m = exec_metrics();
    let mode = if helpers == 0 { INLINE } else { POOLED };
    m.calls[mode][work.class_index()].inc();
    m.chunks[mode].add(chunks as u64);
    if helpers > 0 {
        m.helpers_engaged.add(helpers as u64);
    }
    m.call_ns[mode].span()
}

type PanicPayload = Box<dyn Any + Send + 'static>;

/// Claims the next chunk index, or `None` when the job is exhausted (or aborted).
fn claim(next: &AtomicUsize, chunks: usize) -> Option<usize> {
    let c = next.fetch_add(1, Ordering::Relaxed);
    (c < chunks).then_some(c)
}

/// Records the first panic payload and aborts further chunk claims for the job.
fn record_panic(
    slot: &Mutex<Option<PanicPayload>>,
    next: &AtomicUsize,
    chunks: usize,
    payload: PanicPayload,
) {
    let mut slot = match slot.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if slot.is_none() {
        *slot = Some(payload);
    }
    drop(slot);
    // Parking the claim counter at `chunks` makes every later `claim` fail fast: the results
    // are about to be discarded by `resume_unwind`, so finishing the range is pure waste.
    next.store(chunks, Ordering::Relaxed);
}

/// The map-reduce job: every chunk runs the same body (which records its own result).
struct ChunkJob<F> {
    next: AtomicUsize,
    chunks: usize,
    body: F,
    panic: Mutex<Option<PanicPayload>>,
}

impl<F: Fn(usize) + Sync> ChunkJob<F> {
    fn new(chunks: usize, body: F) -> ChunkJob<F> {
        ChunkJob { next: AtomicUsize::new(0), chunks, body, panic: Mutex::new(None) }
    }

    /// The recorded panic payload, if any participant's chunk panicked. Exclusive access: only
    /// callable once every participant has detached.
    fn take_panic(&mut self) -> Option<PanicPayload> {
        match self.panic.get_mut() {
            Ok(slot) => slot.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        }
    }
}

impl<F: Fn(usize) + Sync> Runnable for ChunkJob<F> {
    fn run(&self) {
        while let Some(c) = claim(&self.next, self.chunks) {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| (self.body)(c))) {
                record_panic(&self.panic, &self.next, self.chunks, payload);
                return;
            }
        }
    }
}

/// The fold-reduce job: each participant lazily builds one private accumulator and folds every
/// chunk it claims into it, then parks the accumulator (tagged with its first chunk index) for
/// the caller to merge.
struct FoldJob<A, I, F> {
    next: AtomicUsize,
    chunks: usize,
    chunk_size: usize,
    len: usize,
    identity: I,
    fold_chunk: F,
    accumulators: Mutex<Vec<(usize, A)>>,
    panic: Mutex<Option<PanicPayload>>,
}

impl<A, I, F> FoldJob<A, I, F> {
    /// Tears the job down after every participant has detached: the recorded panic (if any)
    /// and the per-participant accumulators.
    #[allow(clippy::type_complexity)]
    fn finish(mut self) -> (Option<PanicPayload>, Vec<(usize, A)>) {
        let panicked = match self.panic.get_mut() {
            Ok(slot) => slot.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        let parts = match self.accumulators.into_inner() {
            Ok(parts) => parts,
            Err(poisoned) => poisoned.into_inner(),
        };
        (panicked, parts)
    }
}

impl<A, I, F> Runnable for FoldJob<A, I, F>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, Range<usize>) + Sync,
{
    fn run(&self) {
        let mut acc: Option<(usize, A)> = None;
        while let Some(c) = claim(&self.next, self.chunks) {
            let step = panic::catch_unwind(AssertUnwindSafe(|| {
                let (_, acc) = acc.get_or_insert_with(|| (c, (self.identity)()));
                (self.fold_chunk)(acc, chunk_range(c, self.chunk_size, self.len));
            }));
            if let Err(payload) = step {
                record_panic(&self.panic, &self.next, self.chunks, payload);
                return; // the partial accumulator dies with the poisoned call
            }
        }
        if let Some(part) = acc {
            self.accumulators
                .lock()
                .expect("no code panics while holding the part lock")
                .push(part);
        }
    }
}

// The erased-pointer corner of the pool lives in `kronpriv-par-queue`: jobs live on the
// submitting thread's stack, so the queue stores a lifetime-erased pointer to them. That
// erasure is the workspace's only unsafe code, isolated in the micro-crate so this crate can
// `#![forbid(unsafe_code)]`. Its safety argument is the drain protocol in [`Pool::run_shared`]:
// a worker only dereferences the pointer between incrementing and decrementing the job's
// `attached` counter, both under the pool mutex, and the submitting thread does not return
// (and therefore does not invalidate the referent) until it has removed the job from the queue
// and observed `attached == 0` under that same mutex. After the removal no worker can attach
// anymore, so the wait is a true barrier on every dereference.

/// Per-job pool bookkeeping. `attached` counts the workers currently inside the job's `run`;
/// it is only ever mutated under the pool mutex (the atomic is for shared mutability, not for
/// lock-free access), which is what makes the submitting thread's drain wait race-free.
struct JobState {
    runnable: RawRunnable,
    attached: AtomicUsize,
    /// When the job was published to the queue — read only to report queue-wait latency.
    // lint:allow(determinism-time, reason = "write-only latency instrumentation: the timestamp feeds the queue-wait histogram and never influences scheduling or results")
    published: Instant,
}

/// A queue entry: the job plus how many more helpers may still join it. The entry is removed
/// when the last helper slot is claimed — or retracted by the submitting thread on completion.
struct QueuedJob {
    job: Arc<JobState>,
    helper_slots: usize,
}

struct PoolState {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for jobs (or shutdown).
    work_cv: Condvar,
    /// Submitting threads park here waiting for their job's `attached` count to reach zero.
    done_cv: Condvar,
}

/// The persistent helper pool: `workers` long-lived threads parked on `work_cv`.
struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    fn start(workers: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { jobs: VecDeque::new(), shutdown: false }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("kronpriv-exec-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn executor worker thread")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Publishes `job` with `helper_slots` helper slots, participates in it on the calling
    /// thread, then retracts the unclaimed slots and waits until every attached helper has
    /// detached. On return the caller has exclusive access to the job again.
    fn run_shared(&self, job: &(dyn Runnable + Sync), helper_slots: usize) {
        let state = Arc::new(JobState {
            runnable: RawRunnable::erase(job),
            attached: AtomicUsize::new(0),
            // lint:allow(determinism-time, reason = "write-only latency instrumentation: the timestamp feeds the queue-wait histogram and never influences scheduling or results")
            published: Instant::now(),
        });
        {
            let mut guard = self.shared.state.lock().expect("pool mutex never poisoned");
            guard.jobs.push_back(QueuedJob { job: Arc::clone(&state), helper_slots });
        }
        if helper_slots == 1 {
            self.shared.work_cv.notify_one();
        } else {
            self.shared.work_cv.notify_all();
        }
        // The guard drains even if `job.run()` somehow unwound: returning with the job still
        // published would leave workers holding a dangling pointer.
        let drain = DrainGuard { shared: &self.shared, job: state };
        job.run();
        drop(drain);
    }
}

impl Drop for Pool {
    /// Graceful shutdown: flag, wake everyone, join everyone. Outstanding jobs cannot exist
    /// here — every job borrows the executor for the duration of its call.
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool mutex never poisoned").shutdown = true;
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("executor workers never panic");
        }
    }
}

/// Retracts a job from the queue and waits for attached helpers to detach (see
/// [`Pool::run_shared`]).
struct DrainGuard<'p> {
    shared: &'p PoolShared,
    job: Arc<JobState>,
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        let mut guard = self.shared.state.lock().expect("pool mutex never poisoned");
        // Retract the helper slots nobody claimed; after this no worker can attach anymore.
        guard.jobs.retain(|queued| !Arc::ptr_eq(&queued.job, &self.job));
        // `attached` only moves under this mutex, so the wait cannot miss a detach.
        while self.job.attached.load(Ordering::Relaxed) > 0 {
            guard = self.shared.done_cv.wait(guard).expect("pool mutex never poisoned");
        }
    }
}

fn worker_loop(shared: &PoolShared, index: usize) {
    let busy_ns = metrics::worker_busy_counter(index);
    let mut guard = shared.state.lock().expect("pool mutex never poisoned");
    loop {
        if let Some(front) = guard.jobs.front_mut() {
            // Claiming a helper slot and attaching happen under ONE lock acquisition: a
            // submitting thread that retracts the job afterwards is guaranteed to see this
            // participant in `attached` and wait for it.
            front.helper_slots -= 1;
            let job = Arc::clone(&front.job);
            if front.helper_slots == 0 {
                guard.jobs.pop_front();
            }
            job.attached.fetch_add(1, Ordering::Relaxed);
            drop(guard);
            // lint:allow(determinism-time, reason = "reporting only: neither latency feeds back into any scheduling decision")
            let attach = Instant::now();
            exec_metrics()
                .queue_wait_ns
                .record_ns(duration_ns(attach.duration_since(job.published)));
            job.runnable.run();
            busy_ns.add(duration_ns(attach.elapsed()));
            guard = shared.state.lock().expect("pool mutex never poisoned");
            job.attached.fetch_sub(1, Ordering::Relaxed);
            shared.done_cv.notify_all();
        } else if guard.shutdown {
            return;
        } else {
            guard = shared.work_cv.wait(guard).expect("pool mutex never poisoned");
        }
    }
}

/// A duration in whole nanoseconds, saturating rather than panicking on absurd values.
// lint:allow(determinism-time, reason = "pure unit conversion for the latency histograms; no clock is read here")
fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;
    use std::sync::atomic::AtomicU64;

    /// Forces the parallel path for any non-trivial range: with 1ms per element even two
    /// elements clear the amortization threshold.
    const FORCE_PARALLEL: Work = Work::per_item_ns(1_000_000);

    #[test]
    fn thread_counts_resolve() {
        assert_eq!(Executor::sequential().threads(), 1);
        assert_eq!(Executor::new(7).threads(), 7);
        assert!(Executor::new(0).threads() >= 1);
        assert!(Executor::auto().threads() >= 1);
        assert_eq!(Executor::auto().threads(), Executor::new(0).threads());
    }

    #[test]
    fn map_reduce_sums_integers_for_any_thread_count() {
        let expected: u64 = (0..10_000u64).sum();
        for threads in [1, 2, 3, 8, 32] {
            let exec = Executor::new(threads);
            let got = exec.map_reduce(
                10_000,
                97,
                FORCE_PARALLEL,
                |range| range.map(|i| i as u64).sum::<u64>(),
                |acc: u64, m| acc + m,
                0,
            );
            assert_eq!(got, expected, "threads {threads}");
        }
    }

    #[test]
    fn map_reduce_is_bit_identical_for_float_folds() {
        // A deliberately non-associative fold: floating-point accumulation of values at wildly
        // different magnitudes. Chunk-order reduction must make every thread count agree with
        // the single-threaded chunked fold bit for bit.
        let value =
            |i: usize| ((i % 17) as f64).exp() * if i.is_multiple_of(3) { 1e-12 } else { 1e3 };
        let fold = |exec: &Executor| {
            exec.map_reduce(
                5_000,
                61,
                FORCE_PARALLEL,
                |range| range.map(value).sum::<f64>(),
                |acc: f64, m| acc + m,
                0.0,
            )
        };
        let reference = fold(&Executor::sequential());
        for threads in [2, 5, 16] {
            assert_eq!(
                fold(&Executor::new(threads)).to_bits(),
                reference.to_bits(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn work_hint_never_changes_the_result() {
        // The cutoff is pure scheduling: the inline path (LIGHT on a small range) and the
        // pooled path (forced parallel) must agree bit for bit on the same executor.
        let exec = Executor::new(4);
        let run = |work: Work| {
            exec.map_reduce(
                2_500,
                37,
                work,
                |range| range.map(|i| (i as f64).sqrt()).sum::<f64>(),
                |acc: f64, m| acc + m,
                0.0,
            )
        };
        assert_eq!(run(Work::LIGHT).to_bits(), run(FORCE_PARALLEL).to_bits());
    }

    #[test]
    fn small_work_runs_inline_without_touching_the_pool() {
        // 100 elements × 25ns is far below the amortization threshold: the helper plan must be
        // zero (the body observes it by noting which thread runs chunks).
        let exec = Executor::new(8);
        let main_thread = thread::current().id();
        let ran_elsewhere = exec.map_reduce(
            100,
            1,
            Work::LIGHT,
            |_range| thread::current().id() != main_thread,
            |acc: bool, m| acc || m,
            false,
        );
        assert!(!ran_elsewhere, "sub-threshold work must stay on the calling thread");
    }

    #[test]
    fn map_reduce_visits_every_chunk_exactly_once() {
        for threads in [1, 4] {
            let exec = Executor::new(threads);
            let ranges = exec.map_reduce(
                103,
                10,
                FORCE_PARALLEL,
                |range| vec![range],
                |mut acc: Vec<Range<usize>>, m| {
                    acc.extend(m);
                    acc
                },
                Vec::new(),
            );
            // Chunk-order reduction ⇒ the ranges tile 0..103 in order.
            assert_eq!(ranges.len(), 11);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, 103);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
    }

    #[test]
    fn fold_reduce_matches_sequential_for_commutative_merges() {
        // Element-wise histogram accumulation: the shape the per-node kernels use.
        let reference = Executor::sequential().fold_reduce(
            1_000,
            13,
            FORCE_PARALLEL,
            || vec![0u64; 10],
            |acc, range| {
                for i in range {
                    acc[i % 10] += (i as u64) % 7;
                }
            },
            |a, _b| a,
        );
        for threads in [2, 8] {
            let got = Executor::new(threads).fold_reduce(
                1_000,
                13,
                FORCE_PARALLEL,
                || vec![0u64; 10],
                |acc, range| {
                    for i in range {
                        acc[i % 10] += (i as u64) % 7;
                    }
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
            assert_eq!(got, reference, "threads {threads}");
        }
    }

    #[test]
    fn try_map_reduce_folds_successes_in_chunk_order() {
        for threads in [1, 2, 8] {
            let exec = Executor::new(threads);
            let got: Result<Vec<usize>, ()> = exec.try_map_reduce(
                100,
                9,
                FORCE_PARALLEL,
                |range| Ok(range.start),
                |mut acc: Vec<usize>, start| {
                    acc.push(start);
                    acc
                },
                Vec::new(),
            );
            let expected: Vec<usize> = (0..100).step_by(9).collect();
            assert_eq!(got.unwrap(), expected, "threads {threads}");
        }
    }

    #[test]
    fn try_map_reduce_reports_the_lowest_index_error_for_any_thread_count() {
        // Chunks 3 and 7 both fail; every thread count must report chunk 3's error, matching
        // the sequential scan.
        for threads in [1, 2, 8] {
            let exec = Executor::new(threads);
            let got: Result<usize, String> = exec.try_map_reduce(
                100,
                10,
                FORCE_PARALLEL,
                |range| {
                    let chunk = range.start / 10;
                    if chunk == 3 || chunk == 7 {
                        Err(format!("chunk {chunk} failed"))
                    } else {
                        Ok(range.len())
                    }
                },
                |acc: usize, m| acc + m,
                0,
            );
            assert_eq!(got.unwrap_err(), "chunk 3 failed", "threads {threads}");
        }
    }

    #[test]
    fn try_map_reduce_empty_range_is_ok() {
        let got: Result<u32, ()> = Executor::new(4).try_map_reduce(
            0,
            8,
            FORCE_PARALLEL,
            |_| Err(()),
            |a: u32, m: u32| a + m,
            7,
        );
        assert_eq!(got.unwrap(), 7);
    }

    #[test]
    fn empty_ranges_return_the_identity() {
        let exec = Executor::new(4);
        assert_eq!(exec.map_reduce(0, 8, Work::LIGHT, |_| 1u32, |a: u32, m| a + m, 0), 0);
        assert_eq!(
            exec.fold_reduce(0, 8, Work::LIGHT, || 41u32, |acc, _| *acc += 1, |a, b| a + b),
            41
        );
    }

    #[test]
    fn oversized_thread_counts_and_tiny_inputs_work() {
        let exec = Executor::new(64);
        let got =
            exec.map_reduce(3, 1000, FORCE_PARALLEL, |range| range.len(), |a: usize, m| a + m, 0);
        assert_eq!(got, 3);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        for threads in [1, 4] {
            let exec = Executor::new(threads);
            let result = catch_unwind(AssertUnwindSafe(|| {
                exec.map_reduce(
                    100,
                    10,
                    FORCE_PARALLEL,
                    |range| {
                        if range.contains(&55) {
                            panic!("kernel exploded");
                        }
                        range.len()
                    },
                    |a: usize, m| a + m,
                    0,
                )
            }));
            assert!(result.is_err(), "threads {threads}");
        }
    }

    #[test]
    fn pool_reuse_is_bit_identical_across_many_consecutive_calls() {
        // The tentpole regression test: one executor, many calls — no per-call state may leak
        // from one job into the next.
        let value =
            |i: usize| ((i % 13) as f64).ln_1p() * if i.is_multiple_of(2) { 1.0 } else { -1e6 };
        let reference = Executor::sequential().map_reduce(
            4_096,
            53,
            FORCE_PARALLEL,
            |range| range.map(value).sum::<f64>(),
            |acc: f64, m| acc + m,
            0.0,
        );
        for threads in [1, 2, 8] {
            let exec = Executor::new(threads);
            for call in 0..100 {
                let got = exec.map_reduce(
                    4_096,
                    53,
                    FORCE_PARALLEL,
                    |range| range.map(value).sum::<f64>(),
                    |acc: f64, m| acc + m,
                    0.0,
                );
                assert_eq!(got.to_bits(), reference.to_bits(), "threads {threads}, call {call}");
            }
        }
    }

    #[test]
    fn a_panicking_task_poisons_only_its_own_call() {
        let exec = Executor::new(4);
        let sum = |exec: &Executor| {
            exec.map_reduce(
                1_000,
                10,
                FORCE_PARALLEL,
                |range| range.sum::<usize>(),
                |a: usize, m| a + m,
                0,
            )
        };
        let healthy = sum(&exec);
        for round in 0..10 {
            let poisoned = catch_unwind(AssertUnwindSafe(|| {
                exec.map_reduce(
                    1_000,
                    10,
                    FORCE_PARALLEL,
                    |range| {
                        if range.contains(&500) {
                            panic!("round {round} exploded");
                        }
                        range.len()
                    },
                    |a: usize, m| a + m,
                    0,
                )
            }));
            assert!(poisoned.is_err(), "round {round}");
            // The very next call on the same pool must succeed and agree with the first.
            assert_eq!(sum(&exec), healthy, "round {round}");
        }
    }

    #[test]
    fn nested_calls_on_the_same_executor_complete() {
        // A worker that re-enters the executor participates inline and retracts unclaimed
        // slots, so nesting can never deadlock — the shape the KronFit chain fan-out uses.
        let exec = Executor::new(4);
        let got = exec.map_reduce(
            8,
            1,
            FORCE_PARALLEL,
            |outer| {
                outer
                    .map(|i| {
                        exec.map_reduce(
                            64,
                            4,
                            FORCE_PARALLEL,
                            |inner| inner.map(|j| (i * 1_000 + j) as u64).sum::<u64>(),
                            |acc: u64, m| acc + m,
                            0,
                        )
                    })
                    .sum::<u64>()
            },
            |acc: u64, m| acc + m,
            0,
        );
        let expected: u64 = (0..8).flat_map(|i| (0..64).map(move |j| (i * 1_000 + j) as u64)).sum();
        assert_eq!(got, expected);
    }

    #[test]
    fn cutoff_decisions_are_visible_in_the_global_registry() {
        use kronpriv_obs::Registry;
        let registry = Registry::global();
        // HEAVY and MODERATE are reserved for this test within this crate's test binary, so
        // the per-class deltas below cannot race with the other tests (which use LIGHT or
        // custom hints).
        let pooled =
            registry.counter("kronpriv_par_calls_total", &[("mode", "pooled"), ("work", "heavy")]);
        let inline = registry
            .counter("kronpriv_par_calls_total", &[("mode", "inline"), ("work", "moderate")]);
        let (pooled_before, inline_before) = (pooled.get(), inline.get());

        let exec = Executor::new(4);
        // 1_000 × 20_000ns clears the amortization threshold with 100 chunks: pooled.
        let sum = exec.map_reduce(1_000, 10, Work::HEAVY, |r| r.len(), |a: usize, m| a + m, 0);
        assert_eq!(sum, 1_000);
        // 10 × 400ns is far below it: inline.
        let sum = exec.map_reduce(10, 2, Work::MODERATE, |r| r.len(), |a: usize, m| a + m, 0);
        assert_eq!(sum, 10);

        assert_eq!(pooled.get(), pooled_before + 1, "pooled heavy call must be counted");
        assert_eq!(inline.get(), inline_before + 1, "inline moderate call must be counted");
        assert!(registry.render().contains("kronpriv_par_calls_total{mode=\"pooled\""));
    }

    #[test]
    fn work_classes_have_stable_names() {
        assert_eq!(Work::LIGHT.class(), "light");
        assert_eq!(Work::MODERATE.class(), "moderate");
        assert_eq!(Work::HEAVY.class(), "heavy");
        assert_eq!(Work::per_item_ns(123).class(), "custom");
        assert_eq!(FORCE_PARALLEL.class(), "custom");
    }

    #[test]
    fn drop_drains_the_pool_without_leaking_work() {
        // Every call completes fully before it returns, so dropping right after a call must
        // join all workers (a leaked worker would abort the test binary's clean exit; a lost
        // chunk would break the count).
        let touched = AtomicU64::new(0);
        {
            let exec = Executor::new(8);
            let chunks = exec.map_reduce(
                512,
                8,
                FORCE_PARALLEL,
                |_range| {
                    touched.fetch_add(1, Ordering::Relaxed);
                    1u64
                },
                |a: u64, m| a + m,
                0,
            );
            assert_eq!(chunks, 64);
        }
        assert_eq!(touched.load(Ordering::Relaxed), 64, "drop must not replay or lose chunks");
    }
}
