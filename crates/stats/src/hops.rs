//! Hop plots (Figures 1–4(a)): the number of reachable ordered node pairs within `h` hops, as a
//! function of `h`.
//!
//! Two estimators are provided: the exact all-sources BFS (quadratic in nodes × edges, fine for
//! the paper's graph sizes) and the approximate neighbourhood function (ANF) of Palmer et al.,
//! which uses Flajolet–Martin-style bit-string sketches and runs in `O((N + E)·h·r)` for `r`
//! sketch repetitions. The approximate variant exists so the library remains usable on graphs
//! well beyond the paper's scale; tests check it tracks the exact curve.

use kronpriv_graph::traversal::reachable_pairs_by_hops_par;
use kronpriv_graph::Graph;
use kronpriv_json::impl_json_struct;
use kronpriv_par::{Executor, Work};
use rand::Rng;

/// Cost hint for propagating one FM sketch layer by one hop: an `O(nodes + edges)` pass of
/// cheap bitwise ORs, estimated from the graph shape alone.
fn sketch_work(g: &Graph) -> Work {
    Work::per_item_ns(g.node_count() as u64 + 2 * g.edge_count() as u64)
}

/// Options for [`approximate_hop_plot`].
#[derive(Debug, Clone, Copy)]
pub struct HopPlotOptions {
    /// Number of independent Flajolet–Martin sketches to average (more = less variance).
    pub sketches: usize,
    /// Maximum number of hops to expand (the curve is truncated once it saturates anyway).
    pub max_hops: usize,
}

impl_json_struct!(HopPlotOptions { sketches, max_hops });

impl Default for HopPlotOptions {
    fn default() -> Self {
        HopPlotOptions { sketches: 32, max_hops: 32 }
    }
}

/// Exact hop plot: entry `h` is the number of ordered pairs `(u, v)` with `dist(u, v) ≤ h`
/// (including `u = v` at distance 0, following the convention of the paper's plots which start
/// at the node count).
pub fn exact_hop_plot(g: &Graph) -> Vec<u64> {
    exact_hop_plot_par(g, &Executor::sequential())
}

/// [`exact_hop_plot`] on `exec`'s worker pool: the all-sources BFS is partitioned over fixed
/// source chunks and the per-chunk distance histograms are summed exactly, so the curve is
/// identical for any thread count.
pub fn exact_hop_plot_par(g: &Graph, exec: &Executor) -> Vec<u64> {
    reachable_pairs_by_hops_par(g, exec)
}

/// Approximate hop plot using Flajolet–Martin neighbourhood sketches.
///
/// Each node keeps a bitmask per sketch; the position of the lowest zero bit estimates the
/// neighbourhood size as in the classic ANF algorithm. Estimates are averaged over
/// `options.sketches` independent sketches.
pub fn approximate_hop_plot<R: Rng + ?Sized>(
    g: &Graph,
    options: &HopPlotOptions,
    rng: &mut R,
) -> Vec<f64> {
    approximate_hop_plot_par(g, options, rng, &Executor::sequential())
}

/// [`approximate_hop_plot`] with the per-hop mask propagation run on `exec`'s worker pool,
/// sketch-parallel: each sketch's bitmask layer propagates independently (a pure
/// function of the previous hop's layers), and the layers are collected in sketch order. Mask
/// initialisation consumes the RNG in the same sequential order regardless of the thread
/// count, so the curve is byte-identical for any [`Executor`].
pub fn approximate_hop_plot_par<R: Rng + ?Sized>(
    g: &Graph,
    options: &HopPlotOptions,
    rng: &mut R,
    exec: &Executor,
) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let sketches = options.sketches.max(1);
    const BITS: usize = 64;
    // masks[s][v]: the FM bitmask of node v in sketch s.
    let mut masks: Vec<Vec<u64>> = Vec::with_capacity(sketches);
    for _ in 0..sketches {
        let mut layer = Vec::with_capacity(n);
        for _ in 0..n {
            layer.push(1u64 << geometric_bit(rng, BITS));
        }
        masks.push(layer);
    }

    // Correction constant of the Flajolet–Martin estimator.
    const PHI: f64 = 0.77351;
    let estimate_total = |masks: &Vec<Vec<u64>>| -> f64 {
        // Sum over nodes of the per-node neighbourhood-size estimate, averaging the lowest zero
        // bit position across sketches before exponentiating (the standard ANF averaging).
        (0..n)
            .map(|v| {
                let mean_bit: f64 =
                    masks.iter().map(|layer| lowest_zero_bit(layer[v]) as f64).sum::<f64>()
                        / sketches as f64;
                2f64.powf(mean_bit) / PHI
            })
            .sum()
    };

    let mut curve = vec![n as f64];
    let mut previous_total = n as f64;
    for _hop in 1..=options.max_hops {
        // Propagate: every node ORs in its neighbours' masks. Each sketch layer is a pure
        // function of the previous hop's layer, so the sketches fan out across threads; the
        // chunk-order reduction reassembles them in sketch order.
        masks = exec.map_reduce(
            sketches,
            1,
            sketch_work(g),
            |sketch_range| {
                sketch_range
                    .map(|s| {
                        let previous = &masks[s];
                        (0..n)
                            .map(|v| {
                                let mut acc = previous[v];
                                for &w in g.neighbors(v as u32) {
                                    acc |= previous[w as usize];
                                }
                                acc
                            })
                            .collect::<Vec<u64>>()
                    })
                    .collect::<Vec<Vec<u64>>>()
            },
            |mut acc: Vec<Vec<u64>>, chunk| {
                acc.extend(chunk);
                acc
            },
            Vec::with_capacity(sketches),
        );
        let total = estimate_total(&masks).max(previous_total);
        curve.push(total);
        // Stop once the curve has saturated (no growth beyond numerical noise).
        if (total - previous_total) / previous_total.max(1.0) < 1e-4 {
            break;
        }
        previous_total = total;
    }
    curve
}

/// Samples a geometric "first one bit" position as in Flajolet–Martin: bit `i` with probability
/// `2^-(i+1)`, capped at `max_bits - 1`.
fn geometric_bit<R: Rng + ?Sized>(rng: &mut R, max_bits: usize) -> u32 {
    let mut bit = 0u32;
    while bit + 1 < max_bits as u32 && rng.gen::<bool>() {
        bit += 1;
    }
    bit
}

/// Position of the lowest zero bit of the mask (the FM size statistic).
fn lowest_zero_bit(mask: u64) -> u32 {
    (!mask).trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_graph::generators::erdos_renyi_gnp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_hop_plot_of_a_path() {
        let g = Graph::from_edges(4, (0..3u32).map(|i| (i, i + 1)));
        assert_eq!(exact_hop_plot(&g), vec![4, 10, 14, 16]);
    }

    #[test]
    fn exact_hop_plot_saturates_at_n_squared_for_connected_graphs() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(*exact_hop_plot(&g).last().unwrap(), 36);
    }

    #[test]
    fn fm_bit_helpers_behave() {
        assert_eq!(lowest_zero_bit(0b0), 0);
        assert_eq!(lowest_zero_bit(0b1), 1);
        assert_eq!(lowest_zero_bit(0b1011), 2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(geometric_bit(&mut rng, 8) < 8);
        }
    }

    #[test]
    fn approximate_curve_starts_at_node_count_and_is_monotone() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi_gnp(200, 0.03, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(3);
        let curve = approximate_hop_plot(&g, &HopPlotOptions::default(), &mut rng2);
        assert_eq!(curve[0], 200.0);
        assert!(curve.windows(2).all(|w| w[0] <= w[1] + 1e-9));
    }

    #[test]
    fn approximate_tracks_exact_on_a_random_graph() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = erdos_renyi_gnp(300, 0.02, &mut rng);
        let exact = exact_hop_plot(&g);
        let mut rng2 = StdRng::seed_from_u64(5);
        let approx =
            approximate_hop_plot(&g, &HopPlotOptions { sketches: 64, max_hops: 32 }, &mut rng2);
        // Compare the saturation levels (total reachable pairs): the FM estimate should land
        // within ~25% of the truth with 64 sketches.
        let exact_total = *exact.last().unwrap() as f64;
        let approx_total = *approx.last().unwrap();
        let rel = (approx_total - exact_total).abs() / exact_total;
        assert!(rel < 0.25, "approx {approx_total} vs exact {exact_total} (rel {rel})");
        // And the hop at which the curve reaches 90% of saturation should agree to within 1.
        let hop90 = |curve: &[f64], total: f64| {
            curve.iter().position(|&v| v >= 0.9 * total).unwrap_or(curve.len()) as i64
        };
        let exact_f: Vec<f64> = exact.iter().map(|&v| v as f64).collect();
        let gap = (hop90(&exact_f, exact_total) - hop90(&approx, approx_total)).abs();
        assert!(gap <= 1, "90% hop differs by {gap}");
    }

    #[test]
    fn empty_graph_produces_empty_curve() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(
            approximate_hop_plot(&Graph::empty(0), &HopPlotOptions::default(), &mut rng).is_empty()
        );
    }

    #[test]
    fn disconnected_graph_saturates_below_n_squared() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (3, 4), (4, 5)]);
        let exact = exact_hop_plot(&g);
        assert_eq!(*exact.last().unwrap(), 18); // two components of 3 nodes: 2 * 9
    }

    #[test]
    fn approximate_is_reproducible_with_a_seed() {
        let g = Graph::from_edges(10, (0..9u32).map(|i| (i, i + 1)));
        let a = approximate_hop_plot(&g, &HopPlotOptions::default(), &mut StdRng::seed_from_u64(7));
        let b = approximate_hop_plot(&g, &HopPlotOptions::default(), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
