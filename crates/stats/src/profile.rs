//! Graph profiles: all five statistic families of the paper's figures bundled into one
//! serialisable record, plus a quantitative comparison between two profiles.
//!
//! The figure harness computes one [`GraphProfile`] per graph (original, KronFit synthetic,
//! KronMom synthetic, Private synthetic, and optionally the expectation over many synthetic
//! realizations) and writes them to disk; EXPERIMENTS.md summarises the resulting
//! [`ProfileComparison`]s.

use crate::clustering::{average_clustering_by_degree, global_clustering, ClusteringPoint};
use crate::degree::{degree_distribution, degree_distribution_distance, DegreePoint};
use crate::hops::exact_hop_plot;
use crate::spectral::{network_values, scree_plot, SpectralOptions};
use kronpriv_graph::{Graph, MatchingStatistics};
use kronpriv_json::impl_json_struct;
use rand::Rng;

/// Options controlling which parts of a profile are computed and at what resolution.
#[derive(Debug, Clone, Copy)]
pub struct ProfileOptions {
    /// Number of singular values for the scree plot.
    pub scree_values: usize,
    /// Number of leading network-value components to keep (0 = all).
    pub network_values: usize,
    /// Skip the hop plot (the all-sources BFS is the most expensive part for large graphs).
    pub skip_hop_plot: bool,
}

impl_json_struct!(ProfileOptions { scree_values, network_values, skip_hop_plot });

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions { scree_values: 50, network_values: 1000, skip_hop_plot: false }
    }
}

/// The five statistic families of Figures 1–4 for one graph, plus the scalar summary counts.
#[derive(Debug, Clone)]
pub struct GraphProfile {
    /// A label for plots and reports ("Original", "KronMom", "Private", ...).
    pub label: String,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// The four matching statistics `(E, H, T, Δ)`.
    pub matching: MatchingStatistics,
    /// Degree distribution (count per positive degree).
    pub degree_distribution: Vec<DegreePoint>,
    /// Hop plot: reachable ordered pairs within `h` hops (empty if skipped).
    pub hop_plot: Vec<u64>,
    /// Scree plot: leading singular values, decreasing.
    pub scree: Vec<f64>,
    /// Network values: leading principal-eigenvector components, decreasing.
    pub network_values: Vec<f64>,
    /// Average clustering coefficient per degree.
    pub clustering_by_degree: Vec<ClusteringPoint>,
    /// Global average clustering coefficient.
    pub global_clustering: f64,
}

impl_json_struct!(GraphProfile {
    label,
    nodes,
    edges,
    matching,
    degree_distribution,
    hop_plot,
    scree,
    network_values,
    clustering_by_degree,
    global_clustering,
});

impl GraphProfile {
    /// Computes the full profile of `g`.
    pub fn compute<R: Rng + ?Sized>(
        label: impl Into<String>,
        g: &Graph,
        options: &ProfileOptions,
        rng: &mut R,
    ) -> Self {
        let spectral = SpectralOptions {
            scree_values: options.scree_values,
            lanczos_steps: 0,
            network_values: options.network_values,
        };
        GraphProfile {
            label: label.into(),
            nodes: g.node_count(),
            edges: g.edge_count(),
            matching: MatchingStatistics::of_graph(g),
            degree_distribution: degree_distribution(g),
            hop_plot: if options.skip_hop_plot { Vec::new() } else { exact_hop_plot(g) },
            scree: scree_plot(g, &spectral, rng),
            network_values: network_values(g, &spectral, rng),
            clustering_by_degree: average_clustering_by_degree(g),
            global_clustering: global_clustering(g),
        }
    }

    /// The maximum hop count present in the hop plot (0 if skipped/empty).
    pub fn effective_diameter(&self) -> usize {
        self.hop_plot.len().saturating_sub(1)
    }
}

/// A quantitative comparison of a synthetic graph's profile against a reference (original)
/// profile — the numbers EXPERIMENTS.md reports per figure.
#[derive(Debug, Clone)]
pub struct ProfileComparison {
    /// Label of the reference profile.
    pub reference: String,
    /// Label of the candidate profile.
    pub candidate: String,
    /// Relative error of the edge count.
    pub edge_count_relative_error: f64,
    /// Relative error of the triangle count.
    pub triangle_count_relative_error: f64,
    /// Kolmogorov–Smirnov distance between the degree CCDFs.
    pub degree_distribution_distance: f64,
    /// Relative error of the largest singular value.
    pub leading_singular_value_relative_error: f64,
    /// Absolute difference of the effective diameters (hop-plot lengths).
    pub diameter_difference: usize,
    /// Absolute difference of the global clustering coefficients.
    pub clustering_difference: f64,
}

impl_json_struct!(ProfileComparison {
    reference,
    candidate,
    edge_count_relative_error,
    triangle_count_relative_error,
    degree_distribution_distance,
    leading_singular_value_relative_error,
    diameter_difference,
    clustering_difference,
});

impl ProfileComparison {
    /// Compares `candidate` against `reference`. Both graphs are needed (for the degree-CCDF
    /// distance); the profiles supply everything else.
    pub fn between(
        reference: &GraphProfile,
        reference_graph: &Graph,
        candidate: &GraphProfile,
        candidate_graph: &Graph,
    ) -> Self {
        let rel = |est: f64, truth: f64| (est - truth).abs() / truth.abs().max(1.0);
        ProfileComparison {
            reference: reference.label.clone(),
            candidate: candidate.label.clone(),
            edge_count_relative_error: rel(candidate.edges as f64, reference.edges as f64),
            triangle_count_relative_error: rel(
                candidate.matching.triangles,
                reference.matching.triangles,
            ),
            degree_distribution_distance: degree_distribution_distance(
                reference_graph,
                candidate_graph,
            ),
            leading_singular_value_relative_error: rel(
                candidate.scree.first().copied().unwrap_or(0.0),
                reference.scree.first().copied().unwrap_or(0.0),
            ),
            diameter_difference: reference
                .effective_diameter()
                .abs_diff(candidate.effective_diameter()),
            clustering_difference: (reference.global_clustering - candidate.global_clustering)
                .abs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_graph::generators::{erdos_renyi_gnp, preferential_attachment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn profile_of_a_small_graph_is_complete() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let mut rng = StdRng::seed_from_u64(1);
        let p = GraphProfile::compute("test", &g, &ProfileOptions::default(), &mut rng);
        assert_eq!(p.nodes, 5);
        assert_eq!(p.edges, 5);
        assert_eq!(p.matching.triangles, 1.0);
        assert!(!p.degree_distribution.is_empty());
        assert!(!p.hop_plot.is_empty());
        assert!(!p.scree.is_empty());
        assert!(!p.network_values.is_empty());
        assert!(p.global_clustering > 0.0);
        assert_eq!(p.effective_diameter(), 3);
    }

    #[test]
    fn hop_plot_can_be_skipped() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2)]);
        let mut rng = StdRng::seed_from_u64(2);
        let options = ProfileOptions { skip_hop_plot: true, ..Default::default() };
        let p = GraphProfile::compute("no-hops", &g, &options, &mut rng);
        assert!(p.hop_plot.is_empty());
        assert_eq!(p.effective_diameter(), 0);
    }

    #[test]
    fn profile_serialises_to_json_and_back() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(3);
        let p = GraphProfile::compute("roundtrip", &g, &ProfileOptions::default(), &mut rng);
        let json = kronpriv_json::to_string(&p);
        let back: GraphProfile = kronpriv_json::from_str(&json).unwrap();
        assert_eq!(back.label, "roundtrip");
        assert_eq!(back.edges, p.edges);
        assert_eq!(back.hop_plot, p.hop_plot);
    }

    #[test]
    fn comparison_of_identical_graphs_is_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = preferential_attachment(120, 2, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(5);
        let p = GraphProfile::compute("a", &g, &ProfileOptions::default(), &mut rng2);
        let q = GraphProfile::compute("b", &g, &ProfileOptions::default(), &mut rng2);
        let cmp = ProfileComparison::between(&p, &g, &q, &g);
        assert_eq!(cmp.edge_count_relative_error, 0.0);
        assert_eq!(cmp.degree_distribution_distance, 0.0);
        assert_eq!(cmp.diameter_difference, 0);
        assert!(cmp.leading_singular_value_relative_error < 1e-6);
    }

    #[test]
    fn comparison_detects_structural_differences() {
        let mut rng = StdRng::seed_from_u64(6);
        let heavy = preferential_attachment(200, 3, &mut rng);
        let uniform =
            erdos_renyi_gnp(200, heavy.edge_count() as f64 / (200.0 * 199.0 / 2.0), &mut rng);
        let mut rng2 = StdRng::seed_from_u64(7);
        let p = GraphProfile::compute("pa", &heavy, &ProfileOptions::default(), &mut rng2);
        let q = GraphProfile::compute("er", &uniform, &ProfileOptions::default(), &mut rng2);
        let cmp = ProfileComparison::between(&p, &heavy, &q, &uniform);
        // Same edge budget, very different degree shape and spectrum.
        assert!(cmp.edge_count_relative_error < 0.15);
        assert!(cmp.degree_distribution_distance > 0.1);
        assert!(cmp.leading_singular_value_relative_error > 0.1);
    }

    #[test]
    fn comparison_serialises() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(8);
        let p = GraphProfile::compute("x", &g, &ProfileOptions::default(), &mut rng);
        let cmp = ProfileComparison::between(&p, &g, &p, &g);
        let json = kronpriv_json::to_string(&cmp);
        assert!(json.contains("degree_distribution_distance"));
    }
}
