//! Spectral statistics: the scree plot (Figures 1–4(c)) and the network-value plot
//! (Figures 1–4(d)).
//!
//! The scree plot shows the singular values of the adjacency matrix against their rank; for a
//! symmetric adjacency matrix the singular values are the magnitudes of the eigenvalues, which
//! Lanczos recovers. The network values are the components of the principal eigenvector sorted
//! in decreasing order of magnitude — Leskovec et al. interpret the component of node `i` as its
//! "network value".

use kronpriv_graph::Graph;
use kronpriv_json::impl_json_struct;
use kronpriv_linalg::{
    lanczos_eigenvalues, principal_eigenpair, CsrMatrix, LanczosOptions, PowerIterationOptions,
};
use rand::Rng;

/// Options for the spectral statistics.
#[derive(Debug, Clone, Copy)]
pub struct SpectralOptions {
    /// How many leading singular values to compute for the scree plot.
    pub scree_values: usize,
    /// Lanczos subspace size (0 = choose automatically from `scree_values`).
    pub lanczos_steps: usize,
    /// How many of the largest network-value components to return (0 = all nodes).
    pub network_values: usize,
}

impl_json_struct!(SpectralOptions { scree_values, lanczos_steps, network_values });

impl Default for SpectralOptions {
    fn default() -> Self {
        SpectralOptions { scree_values: 50, lanczos_steps: 0, network_values: 0 }
    }
}

fn adjacency(g: &Graph) -> CsrMatrix {
    CsrMatrix::symmetric_adjacency(g.node_count(), g.edges())
}

/// The scree plot: the `options.scree_values` largest singular values of the adjacency matrix,
/// in decreasing order.
pub fn scree_plot<R: Rng + ?Sized>(g: &Graph, options: &SpectralOptions, rng: &mut R) -> Vec<f64> {
    if g.node_count() == 0 || g.edge_count() == 0 {
        return Vec::new();
    }
    let k = options.scree_values.min(g.node_count());
    let steps = if options.lanczos_steps > 0 { options.lanczos_steps } else { 2 * k + 20 };
    let mut values = lanczos_eigenvalues(&adjacency(g), k, &LanczosOptions { steps }, rng)
        .into_iter()
        .map(f64::abs)
        .collect::<Vec<_>>();
    values.sort_by(|a, b| b.total_cmp(a));
    values
}

/// The network values: components (absolute values) of the principal eigenvector of the
/// adjacency matrix, sorted in decreasing order. If `options.network_values > 0` only that many
/// leading components are returned.
pub fn network_values<R: Rng + ?Sized>(
    g: &Graph,
    options: &SpectralOptions,
    rng: &mut R,
) -> Vec<f64> {
    if g.node_count() == 0 || g.edge_count() == 0 {
        return Vec::new();
    }
    let pair = match principal_eigenpair(&adjacency(g), &PowerIterationOptions::default(), rng) {
        Some(p) => p,
        None => return Vec::new(),
    };
    let mut components: Vec<f64> = pair.vector.iter().map(|x| x.abs()).collect();
    components.sort_by(|a, b| b.total_cmp(a));
    if options.network_values > 0 {
        components.truncate(options.network_values);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use kronpriv_graph::generators::preferential_attachment;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn complete_graph(n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        Graph::from_edges(n, edges)
    }

    #[test]
    fn scree_plot_of_complete_graph() {
        // K_n: eigenvalues n-1 (once) and -1 (n-1 times); singular values n-1, then 1s. A
        // single-vector Lanczos run only resolves *distinct* eigenvalues, so the returned list
        // may be shorter than requested on such degenerate spectra (real networks have
        // essentially distinct leading singular values, so this does not affect the figures).
        let mut rng = StdRng::seed_from_u64(1);
        let values = scree_plot(
            &complete_graph(8),
            &SpectralOptions { scree_values: 4, ..Default::default() },
            &mut rng,
        );
        assert!(values.len() >= 2 && values.len() <= 4, "{values:?}");
        assert!((values[0] - 7.0).abs() < 1e-6);
        for v in &values[1..] {
            assert!((v - 1.0).abs() < 1e-5, "{values:?}");
        }
    }

    #[test]
    fn scree_plot_is_sorted_decreasing() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = preferential_attachment(300, 3, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(3);
        let values =
            scree_plot(&g, &SpectralOptions { scree_values: 20, ..Default::default() }, &mut rng2);
        assert_eq!(values.len(), 20);
        assert!(values.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        assert!(values[0] > 0.0);
    }

    #[test]
    fn scree_plot_of_star_matches_sqrt_leaves() {
        let leaves = 25u32;
        let g = Graph::from_edges(26, (1..=leaves).map(|v| (0, v)));
        let mut rng = StdRng::seed_from_u64(4);
        let values =
            scree_plot(&g, &SpectralOptions { scree_values: 3, ..Default::default() }, &mut rng);
        assert!((values[0] - 5.0).abs() < 1e-6);
        assert!((values[1] - 5.0).abs() < 1e-6);
        assert!(values[2] < 1e-6);
    }

    #[test]
    fn empty_graph_has_empty_spectra() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(scree_plot(&Graph::empty(5), &SpectralOptions::default(), &mut rng).is_empty());
        assert!(network_values(&Graph::empty(5), &SpectralOptions::default(), &mut rng).is_empty());
    }

    #[test]
    fn network_values_of_star_have_one_dominant_component() {
        let leaves = 16u32;
        let g = Graph::from_edges(17, (1..=leaves).map(|v| (0, v)));
        let mut rng = StdRng::seed_from_u64(6);
        let values = network_values(&g, &SpectralOptions::default(), &mut rng);
        assert_eq!(values.len(), 17);
        // Hub component 1/sqrt(2), each leaf 1/sqrt(2*16) = 0.1768.
        assert!((values[0] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-5);
        assert!((values[1] - 0.176_776_7).abs() < 1e-4);
        // Sorted decreasing, unit norm.
        assert!(values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        let norm: f64 = values.iter().map(|v| v * v).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn network_values_truncation_is_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = preferential_attachment(100, 2, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(8);
        let values = network_values(
            &g,
            &SpectralOptions { network_values: 10, ..Default::default() },
            &mut rng2,
        );
        assert_eq!(values.len(), 10);
    }

    #[test]
    fn heavy_tailed_graph_has_skewed_network_values() {
        // For a preferential-attachment graph the hub components dominate: the largest
        // network value should far exceed the median one (this is what makes the log-log
        // network-value plot of the paper interesting).
        let mut rng = StdRng::seed_from_u64(9);
        let g = preferential_attachment(400, 2, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(10);
        let values = network_values(&g, &SpectralOptions::default(), &mut rng2);
        let median = values[values.len() / 2];
        assert!(values[0] > 5.0 * median.max(1e-12), "{} vs {}", values[0], median);
    }
}
