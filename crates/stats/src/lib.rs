//! `kronpriv-stats` — the graph statistics plotted in the paper's evaluation (Figures 1–4).
//!
//! Section 4.2 compares the original networks against synthetic Kronecker graphs generated from
//! the KronFit, KronMom and Private estimates using five statistic families:
//!
//! 1. the **degree distribution** ([`degree`]),
//! 2. the **hop plot** — reachable pairs of nodes within `h` hops ([`hops`]),
//! 3. the **scree plot** — singular values of the adjacency matrix versus rank ([`spectral`]),
//! 4. the **network value** — the components of the principal eigenvector versus rank
//!    ([`spectral`]),
//! 5. the **average clustering coefficient** as a function of node degree ([`clustering`]).
//!
//! [`profile::GraphProfile`] bundles all five into one serialisable record so the figure
//! harness can compute them once per graph and write them out for plotting, and
//! [`profile::ProfileComparison`] quantifies how closely two profiles agree (the "shape"
//! comparison used in EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustering;
pub mod degree;
pub mod hops;
pub mod profile;
pub mod spectral;

pub use clustering::{
    average_clustering_by_degree, clustering_coefficients, clustering_coefficients_par,
    global_clustering,
};
pub use degree::{degree_distribution, degree_histogram, DegreePoint};
pub use hops::{
    approximate_hop_plot, approximate_hop_plot_par, exact_hop_plot, exact_hop_plot_par,
    HopPlotOptions,
};
pub use profile::{GraphProfile, ProfileComparison, ProfileOptions};
pub use spectral::{network_values, scree_plot, SpectralOptions};
