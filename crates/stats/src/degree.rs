//! Degree distributions (Figures 1–4(b)).
//!
//! The paper plots the count of nodes per degree value on log–log axes. The helpers here return
//! the raw histogram (one point per distinct degree) plus the complementary cumulative form,
//! which is the more robust statistic for comparing heavy-tailed distributions.

use kronpriv_graph::Graph;
use kronpriv_json::impl_json_struct;
use std::collections::BTreeMap;

/// One point of a degree distribution: `count` nodes have degree `degree`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreePoint {
    /// The degree value.
    pub degree: usize,
    /// Number of nodes with exactly this degree.
    pub count: usize,
}

impl_json_struct!(DegreePoint { degree, count });

/// The degree histogram of `g`: one [`DegreePoint`] per distinct degree, sorted by degree.
pub fn degree_histogram(g: &Graph) -> Vec<DegreePoint> {
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    for d in g.degrees() {
        *counts.entry(d).or_insert(0) += 1;
    }
    counts.into_iter().map(|(degree, count)| DegreePoint { degree, count }).collect()
}

/// The degree distribution restricted to positive degrees (what the paper's log–log plots show —
/// zero-degree nodes cannot appear on a log axis).
pub fn degree_distribution(g: &Graph) -> Vec<DegreePoint> {
    degree_histogram(g).into_iter().filter(|p| p.degree > 0).collect()
}

/// Complementary cumulative degree distribution: for each distinct degree `d`, the fraction of
/// nodes with degree `≥ d`. Returns `(degree, fraction)` pairs sorted by degree.
pub fn degree_ccdf(g: &Graph) -> Vec<(usize, f64)> {
    let histogram = degree_histogram(g);
    let n: usize = histogram.iter().map(|p| p.count).sum();
    if n == 0 {
        return Vec::new();
    }
    let mut remaining = n;
    let mut out = Vec::with_capacity(histogram.len());
    for p in &histogram {
        out.push((p.degree, remaining as f64 / n as f64));
        remaining -= p.count;
    }
    out
}

/// Kolmogorov–Smirnov-style distance between the degree CCDFs of two graphs: the maximum
/// absolute difference of the two CCDF step functions over all degree values. Used to quantify
/// how closely a synthetic graph's degree distribution tracks the original's.
pub fn degree_distribution_distance(a: &Graph, b: &Graph) -> f64 {
    let ca = degree_ccdf(a);
    let cb = degree_ccdf(b);
    let eval = |c: &[(usize, f64)], d: usize| -> f64 {
        // CCDF at degree d: fraction of nodes with degree >= d (step function, right-continuous
        // between listed degrees).
        c.iter().rev().find(|&&(deg, _)| deg <= d).map_or_else(
            || c.first().map_or(0.0, |&(_, f)| f),
            |&(deg, f)| {
                if deg == d {
                    f
                } else {
                    c.iter().find(|&&(dg, _)| dg > d).map_or(0.0, |&(_, g)| g)
                }
            },
        )
    };
    let degrees: Vec<usize> =
        ca.iter().map(|&(d, _)| d).chain(cb.iter().map(|&(d, _)| d)).collect();
    degrees.into_iter().map(|d| (eval(&ca, d) - eval(&cb, d)).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(leaves: usize) -> Graph {
        Graph::from_edges(leaves + 1, (1..=leaves as u32).map(|v| (0, v)))
    }

    #[test]
    fn histogram_of_a_star() {
        let h = degree_histogram(&star(5));
        assert_eq!(
            h,
            vec![DegreePoint { degree: 1, count: 5 }, DegreePoint { degree: 5, count: 1 }]
        );
    }

    #[test]
    fn histogram_counts_sum_to_node_count() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (3, 4)]);
        let total: usize = degree_histogram(&g).iter().map(|p| p.count).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn distribution_drops_isolated_nodes() {
        let g = Graph::from_edges(4, vec![(0, 1)]);
        let d = degree_distribution(&g);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0], DegreePoint { degree: 1, count: 2 });
    }

    #[test]
    fn histogram_of_empty_graph() {
        let h = degree_histogram(&Graph::empty(3));
        assert_eq!(h, vec![DegreePoint { degree: 0, count: 3 }]);
        assert!(degree_distribution(&Graph::empty(3)).is_empty());
    }

    #[test]
    fn ccdf_starts_at_one_and_decreases() {
        let g = star(7);
        let ccdf = degree_ccdf(&g);
        assert_eq!(ccdf.first().unwrap().1, 1.0);
        assert!(ccdf.windows(2).all(|w| w[0].1 >= w[1].1));
        // Highest degree (7) is held by exactly one of 8 nodes.
        assert!((ccdf.last().unwrap().1 - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn ccdf_of_regular_graph_is_flat_then_drops() {
        // Cycle: every node has degree 2.
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let ccdf = degree_ccdf(&g);
        assert_eq!(ccdf, vec![(2, 1.0)]);
    }

    #[test]
    fn distance_between_identical_graphs_is_zero() {
        let g = star(6);
        assert_eq!(degree_distribution_distance(&g, &g), 0.0);
    }

    #[test]
    fn distance_is_symmetric_and_detects_differences() {
        let a = star(6);
        let b = Graph::from_edges(7, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let d1 = degree_distribution_distance(&a, &b);
        let d2 = degree_distribution_distance(&b, &a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.3, "star vs path should differ substantially, got {d1}");
        assert!(d1 <= 1.0);
    }

    #[test]
    fn distance_between_similar_graphs_is_small() {
        let a = star(50);
        let b = star(52);
        assert!(degree_distribution_distance(&a, &b) < 0.05);
    }
}
