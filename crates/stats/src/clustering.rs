//! Clustering coefficients (Figures 1–4(e)): the average local clustering coefficient as a
//! function of node degree.
//!
//! The local clustering coefficient of node `i` with degree `d_i ≥ 2` is
//! `c_i = 2·Δ_i / (d_i (d_i − 1))`, the fraction of its neighbour pairs that are themselves
//! connected; nodes of degree < 2 have coefficient 0 by convention. The paper plots the average
//! of `c_i` over all nodes of each degree, on log–log axes.

use kronpriv_graph::counts::per_node_triangles_par;
use kronpriv_graph::Graph;
use kronpriv_json::impl_json_struct;
use kronpriv_par::Executor;
use std::collections::BTreeMap;

/// One point of the clustering-by-degree curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringPoint {
    /// Node degree.
    pub degree: usize,
    /// Average local clustering coefficient over nodes of this degree.
    pub average_clustering: f64,
    /// Number of nodes of this degree.
    pub count: usize,
}

impl_json_struct!(ClusteringPoint { degree, average_clustering, count });

/// Local clustering coefficient of every node.
pub fn clustering_coefficients(g: &Graph) -> Vec<f64> {
    clustering_coefficients_par(g, &Executor::sequential())
}

/// [`clustering_coefficients`] with the per-node triangle counts computed on `exec`'s worker
/// pool (see `per_node_triangles_par`); the coefficient of each node is then a pure
/// per-node function, so the result is identical for any thread count.
pub fn clustering_coefficients_par(g: &Graph, exec: &Executor) -> Vec<f64> {
    let triangles = per_node_triangles_par(g, exec);
    g.degrees()
        .iter()
        .zip(&triangles)
        .map(|(&d, &t)| if d < 2 { 0.0 } else { 2.0 * t as f64 / (d as f64 * (d as f64 - 1.0)) })
        .collect()
}

/// The average clustering coefficient per degree, restricted to degrees ≥ 2 (degree-0/1 nodes
/// have no defined clustering and cannot appear on the paper's log–log axes).
pub fn average_clustering_by_degree(g: &Graph) -> Vec<ClusteringPoint> {
    let coefficients = clustering_coefficients(g);
    let mut sums: BTreeMap<usize, (f64, usize)> = BTreeMap::new();
    for (node, &d) in g.degrees().iter().enumerate() {
        if d >= 2 {
            let entry = sums.entry(d).or_insert((0.0, 0));
            entry.0 += coefficients[node];
            entry.1 += 1;
        }
    }
    sums.into_iter()
        .map(|(degree, (sum, count))| ClusteringPoint {
            degree,
            average_clustering: sum / count as f64,
            count,
        })
        .collect()
}

/// The global (average) clustering coefficient: the mean of the local coefficients over all
/// nodes, the scalar the paper quotes when comparing how well the SKG model captures clustering.
pub fn global_clustering(g: &Graph) -> f64 {
    let c = clustering_coefficients(g);
    if c.is_empty() {
        0.0
    } else {
        c.iter().sum::<f64>() / c.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_graph(n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        Graph::from_edges(n, edges)
    }

    #[test]
    fn complete_graph_has_clustering_one() {
        let g = complete_graph(6);
        assert!(clustering_coefficients(&g).iter().all(|&c| (c - 1.0).abs() < 1e-12));
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_clustering_zero() {
        let g = Graph::from_edges(6, (1..6u32).map(|v| (0, v)));
        assert!(clustering_coefficients(&g).iter().all(|&c| c == 0.0));
        assert_eq!(global_clustering(&g), 0.0);
    }

    #[test]
    fn triangle_with_tail_has_mixed_coefficients() {
        // Triangle 0-1-2 plus edge 2-3: nodes 0,1 have c=1; node 2 has degree 3 and one
        // triangle: c = 2*1/(3*2) = 1/3; node 3 has degree 1: c=0.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = clustering_coefficients(&g);
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert!((c[1] - 1.0).abs() < 1e-12);
        assert!((c[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c[3], 0.0);
        assert!((global_clustering(&g) - (1.0 + 1.0 + 1.0 / 3.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn average_by_degree_groups_nodes() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        let curve = average_clustering_by_degree(&g);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].degree, 2);
        assert_eq!(curve[0].count, 2);
        assert!((curve[0].average_clustering - 1.0).abs() < 1e-12);
        assert_eq!(curve[1].degree, 3);
        assert!((curve[1].average_clustering - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degree_one_nodes_are_excluded_from_the_curve() {
        let g = Graph::from_edges(3, vec![(0, 1)]);
        assert!(average_clustering_by_degree(&g).is_empty());
    }

    #[test]
    fn empty_graph_has_zero_global_clustering() {
        assert_eq!(global_clustering(&Graph::empty(0)), 0.0);
        assert_eq!(global_clustering(&Graph::empty(4)), 0.0);
    }

    #[test]
    fn coefficients_are_between_zero_and_one() {
        let g = Graph::from_edges(
            8,
            vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (4, 5), (5, 6), (6, 4), (6, 7)],
        );
        for c in clustering_coefficients(&g) {
            assert!((0.0..=1.0).contains(&c));
        }
    }
}
